//! Block and block-DAG data structures.

use clickinc_ir::{CapabilityClass, IrProgram};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a block within a [`BlockDag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A block: an ordered group of IR instructions placed as a unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Block id (index in the DAG's block vector).
    pub id: BlockId,
    /// Indices of the contained instructions in the original program order.
    pub instrs: Vec<usize>,
    /// Capability classes required by the contained instructions.
    pub classes: BTreeSet<CapabilityClass>,
    /// Step number: the topological level of the block, stamped into the INC
    /// header at synthesis time (paper §6 "Refine Runtime Data Plane").
    pub step: usize,
    /// Whether the block contains instructions operating on stateful objects
    /// and therefore can never be replicated across devices.
    pub stateful: bool,
}

impl Block {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the block is empty (never true for blocks built by this crate).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The dominant capability class used for "same type" merging decisions:
    /// the most specialised class in the block (stateful > tables > arithmetic).
    pub fn dominant_class(&self) -> Option<CapabilityClass> {
        self.classes.iter().max().copied()
    }
}

/// The DAG of blocks.
#[derive(Debug, Clone, Default)]
pub struct BlockDag {
    blocks: Vec<Block>,
    /// Directed edges `from -> to` over block indices.
    edges: Vec<(usize, usize)>,
}

impl BlockDag {
    /// Build a DAG from blocks and edges (callers: the `build` module and tests).
    pub fn new(blocks: Vec<Block>, edges: Vec<(usize, usize)>) -> BlockDag {
        let mut edges = edges;
        edges.sort_unstable();
        edges.dedup();
        edges.retain(|(a, b)| a != b);
        BlockDag { blocks, edges }
    }

    /// The blocks, indexed by `BlockId.0`.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the DAG has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The dependency edges between blocks.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Direct predecessors of a block.
    pub fn predecessors(&self, block: usize) -> Vec<usize> {
        self.edges.iter().filter(|(_, b)| *b == block).map(|(a, _)| *a).collect()
    }

    /// Direct successors of a block.
    pub fn successors(&self, block: usize) -> Vec<usize> {
        self.edges.iter().filter(|(a, _)| *a == block).map(|(_, b)| *b).collect()
    }

    /// In-degree of every block.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.blocks.len()];
        for (_, b) in &self.edges {
            deg[*b] += 1;
        }
        deg
    }

    /// Kahn topological order; `None` if the graph has a cycle.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut deg = self.in_degrees();
        let mut queue: Vec<usize> = (0..self.blocks.len()).filter(|b| deg[*b] == 0).collect();
        let mut order = Vec::with_capacity(self.blocks.len());
        while let Some(b) = queue.pop() {
            order.push(b);
            for succ in self.successors(b) {
                deg[succ] -= 1;
                if deg[succ] == 0 {
                    queue.push(succ);
                }
            }
        }
        if order.len() == self.blocks.len() {
            Some(order)
        } else {
            None
        }
    }

    /// Whether block `a` can reach block `b` through dependency edges.
    pub fn reaches(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        let mut stack = vec![a];
        let mut seen = vec![false; self.blocks.len()];
        while let Some(x) = stack.pop() {
            if x == b {
                return true;
            }
            if seen[x] {
                continue;
            }
            seen[x] = true;
            stack.extend(self.successors(x));
        }
        false
    }

    /// Topological levels (the step numbers): level of a block = 1 + max level
    /// of its predecessors, leaves at level 0.
    pub fn levels(&self) -> Vec<usize> {
        let order = self.topological_order().unwrap_or_default();
        let mut level = vec![0usize; self.blocks.len()];
        for &b in &order {
            for pred in self.predecessors(b) {
                level[b] = level[b].max(level[pred] + 1);
            }
        }
        level
    }

    /// Total number of instructions across all blocks.
    pub fn total_instructions(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// The blocks in ascending step order (ties broken by id), which is the
    /// order placement walks them along a path.
    pub fn blocks_by_step(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.blocks.len()).collect();
        idx.sort_by_key(|&i| (self.blocks[i].step, i));
        idx
    }

    /// Partition-legality check of Appendix B.1: no two distinct blocks may
    /// reach each other in both directions.
    pub fn is_partition_legal(&self) -> bool {
        for a in 0..self.blocks.len() {
            for b in (a + 1)..self.blocks.len() {
                if self.reaches(a, b) && self.reaches(b, a) {
                    return false;
                }
            }
        }
        true
    }

    /// Human-readable dump used by examples and tests.
    pub fn dump(&self, program: &IrProgram) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "block DAG: {} blocks, {} edges, {} instructions\n",
            self.len(),
            self.edges.len(),
            self.total_instructions()
        ));
        for block in &self.blocks {
            let classes: Vec<String> = block.classes.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!(
                "  {} step={} [{}] instrs={:?}\n",
                block.id,
                block.step,
                classes.join(","),
                block.instrs
            ));
        }
        let _ = program;
        for (a, b) in &self.edges {
            out.push_str(&format!("  b{a} -> b{b}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(id: usize, instrs: Vec<usize>) -> Block {
        Block { id: BlockId(id), instrs, classes: BTreeSet::new(), step: 0, stateful: false }
    }

    fn diamond() -> BlockDag {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        BlockDag::new(
            vec![block(0, vec![0]), block(1, vec![1]), block(2, vec![2]), block(3, vec![3])],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        )
    }

    #[test]
    fn topological_order_and_levels() {
        let dag = diamond();
        let order = dag.topological_order().unwrap();
        assert_eq!(order.len(), 4);
        let pos = |b: usize| order.iter().position(|x| *x == b).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        let levels = dag.levels();
        assert_eq!(levels, vec![0, 1, 1, 2]);
    }

    #[test]
    fn reachability() {
        let dag = diamond();
        assert!(dag.reaches(0, 3));
        assert!(!dag.reaches(3, 0));
        assert!(!dag.reaches(1, 2));
        assert!(dag.reaches(2, 2));
    }

    #[test]
    fn cycle_is_detected() {
        let dag = BlockDag::new(vec![block(0, vec![0]), block(1, vec![1])], vec![(0, 1), (1, 0)]);
        assert!(dag.topological_order().is_none());
        assert!(!dag.is_partition_legal());
    }

    #[test]
    fn predecessors_successors_and_degrees() {
        let dag = diamond();
        assert_eq!(dag.predecessors(3), vec![1, 2]);
        assert_eq!(dag.successors(0), vec![1, 2]);
        assert_eq!(dag.in_degrees(), vec![0, 1, 1, 2]);
        assert_eq!(dag.total_instructions(), 4);
        assert!(dag.is_partition_legal());
    }

    #[test]
    fn new_dedups_and_removes_self_edges() {
        let dag =
            BlockDag::new(vec![block(0, vec![0]), block(1, vec![1])], vec![(0, 1), (0, 1), (1, 1)]);
        assert_eq!(dag.edges(), &[(0, 1)]);
    }

    #[test]
    fn blocks_by_step_sorts_by_level() {
        let mut dag = diamond();
        let levels = dag.levels();
        for (i, l) in levels.iter().enumerate() {
            dag.blocks[i].step = *l;
        }
        assert_eq!(dag.blocks_by_step(), vec![0, 1, 2, 3]);
    }
}
