//! A proper Zipf sampler over a precomputed CDF.
//!
//! Key popularity follows `P(rank) ∝ 1/(rank+1)^skew`.  The cumulative
//! distribution is computed once at construction, so drawing a sample is one
//! uniform variate plus a binary search — O(log n) instead of the O(n) linear
//! scan the scenario loop used to do per request.  Both the scenario driver
//! and the runtime workload generators share this sampler, so their key
//! streams are directly comparable for a fixed seed.

use rand::prelude::*;
use rand::rngs::StdRng;

/// Zipf-distributed sampler over ranks `0..n` with a precomputed CDF.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n` ranks with the given skew exponent
    /// (`skew = 0.0` is uniform).  `n` must be at least 1.
    pub fn new(n: usize, skew: f64) -> ZipfSampler {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(skew);
            cdf.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        for c in &mut cdf {
            *c /= total;
        }
        // guard against floating-point round-off leaving the tail below 1.0
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is degenerate (never: `new` clamps `n >= 1`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one rank.  Consumes exactly one uniform variate from `rng`, so a
    /// fixed seed yields a fixed key stream.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let z = ZipfSampler::new(1000, 1.1);
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let xs: Vec<usize> = (0..100).map(|_| z.sample(&mut a)).collect();
        let ys: Vec<usize> = (0..100).map(|_| z.sample(&mut b)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn skew_concentrates_mass_on_low_ranks() {
        let z = ZipfSampler::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let hot = (0..10_000).filter(|_| z.sample(&mut rng) < 64).count();
        assert!(hot > 5_000, "top-64 keys should dominate a skewed stream, got {hot}");

        let uniform = ZipfSampler::new(1000, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let hot = (0..10_000).filter(|_| uniform.sample(&mut rng) < 64).count();
        assert!(hot < 1_500, "uniform stream should not concentrate, got {hot}");
    }

    #[test]
    fn samples_stay_in_range_even_for_tiny_universes() {
        let z = ZipfSampler::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        let z = ZipfSampler::new(3, 0.9);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn matches_popularity_ordering() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[1] > counts[20]);
    }
}
