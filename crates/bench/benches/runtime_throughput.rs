//! runtime_throughput — packets/sec through the sharded traffic engine.
//!
//! Eight co-resident MLAgg tenants share one ToR device.  With one shard,
//! every packet walks all eight tenants' guarded instruction streams on a
//! single worker; with N shards the tenants (and their state) are
//! partitioned, so each worker scans only its own residents — the
//! architectural win of tenant sharding, on top of thread parallelism on
//! multi-core hosts.  Results are written to `BENCH_runtime.json` so the
//! repo's performance trajectory accumulates across PRs.

use clickinc::TenantHop;
use clickinc_device::DeviceModel;
use clickinc_frontend::compile_source;
use clickinc_lang::templates::{mlagg_template, MlAggParams};
use clickinc_runtime::workload::{MixedWorkload, MlAggWorkload, MlAggWorkloadConfig, Workload};
use clickinc_runtime::{EngineConfig, TrafficEngine};
use clickinc_synthesis::isolate_user_program;
use serde::Serialize;
use std::time::Instant;

const TENANTS: usize = 8;
const ROUNDS: usize = 1500;
const WORKERS: usize = 4;
const DIMS: u32 = 16;

#[derive(Serialize)]
struct ShardResult {
    shards: usize,
    elapsed_ms: f64,
    packets_per_sec: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    tenants: usize,
    packets: usize,
    results: Vec<ShardResult>,
    speedup_best_vs_one_shard: f64,
}

fn tenant_hops(name: &str, id: i64) -> Vec<TenantHop> {
    let t = mlagg_template(
        name,
        MlAggParams {
            dims: DIMS,
            num_workers: WORKERS as u32,
            num_aggregators: 4096,
            ..Default::default()
        },
    );
    let ir = compile_source(name, &t.source).expect("template compiles");
    vec![TenantHop {
        device: "tor0".to_string(),
        model: DeviceModel::tofino(),
        snippets: vec![isolate_user_program(&ir, name, id)],
    }]
}

fn run_once(shards: usize) -> (f64, usize) {
    let engine = TrafficEngine::new(EngineConfig { shards, batch_size: 256 });
    let handle = engine.handle();
    let mut parts: Vec<Box<dyn Workload>> = Vec::new();
    for i in 0..TENANTS {
        let name = format!("tenant{i}");
        let id = i as i64 + 1;
        handle.add_tenant(&name, tenant_hops(&name, id));
        parts.push(Box::new(MlAggWorkload::new(MlAggWorkloadConfig {
            tenant: name,
            user_id: id,
            workers: WORKERS,
            rounds: ROUNDS,
            dims: DIMS as usize,
            sparsity: 0.5,
            block_size: 8,
            rate_pps: 100_000_000.0,
            seed: 42 + i as u64,
        })));
    }
    let mut mixed = MixedWorkload::new(parts);

    let start = Instant::now();
    let sent = handle.run_workload(&mut mixed, usize::MAX, 256);
    handle.flush();
    let elapsed = start.elapsed().as_secs_f64();
    let outcome = engine.finish();
    let completed: u64 = outcome.telemetry.tenants.values().map(|t| t.completed).sum();
    assert_eq!(completed as usize, sent, "every packet completes");
    (elapsed, sent)
}

fn main() {
    println!("== runtime_throughput: {TENANTS} co-resident MLAgg tenants, 1 vs N shards ==");
    println!("{:>8} {:>12} {:>16}", "shards", "elapsed", "packets/sec");
    let mut results = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        // best of two runs to shave scheduler noise
        let (mut elapsed, mut packets) = run_once(shards);
        let (e2, p2) = run_once(shards);
        if e2 < elapsed {
            elapsed = e2;
            packets = p2;
        }
        let pps = packets as f64 / elapsed.max(1e-9);
        println!("{shards:>8} {:>10.1}ms {pps:>16.0}", elapsed * 1e3);
        results.push(ShardResult { shards, elapsed_ms: elapsed * 1e3, packets_per_sec: pps });
    }

    let one = results[0].packets_per_sec;
    let best = results.iter().map(|r| r.packets_per_sec).fold(0.0f64, f64::max);
    let speedup = best / one.max(1e-9);
    println!(
        "best N-shard throughput is {speedup:.2}x the 1-shard baseline ({})",
        if speedup > 1.0 { "sharding wins" } else { "REGRESSION" }
    );

    let report = BenchReport {
        bench: "runtime_throughput".to_string(),
        tenants: TENANTS,
        packets: TENANTS * ROUNDS * WORKERS,
        results,
        speedup_best_vs_one_shard: speedup,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    // write at the workspace root regardless of the bench's cwd
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    std::fs::write(path, &json).expect("BENCH_runtime.json written");
    println!("wrote BENCH_runtime.json");
}
