//! Offline stand-in for `serde_json` (see `vendor/README.md`): a small JSON
//! reader/writer over the `serde::Value` tree.

use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    T::deserialize_value(&value).map_err(|e| Error(e.to_string()))
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.serialize_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.serialize_value(), Some(2), 0, &mut out);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 character
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| Error(format!("bad number at offset {start}")))
    }
}

fn write_value(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            // f64 Display is the shortest round-trip representation
            out.push_str(&format!("{n}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            write_seq(items.iter(), b"[]", indent, level, out, |item, out, lvl| {
                write_value(item, indent, lvl, out)
            })
        }
        Value::Obj(map) => write_seq(map.iter(), b"{}", indent, level, out, |(k, v), out, lvl| {
            write_string(k, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(v, indent, lvl, out);
        }),
    }
}

fn write_seq<I: ExactSizeIterator>(
    items: I,
    brackets: &[u8; 2],
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    mut write_item: impl FnMut(I::Item, &mut String, usize),
) {
    out.push(brackets[0] as char);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(item, out, level + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(brackets[1] as char);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}
