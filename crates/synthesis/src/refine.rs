//! Runtime data-plane refinement (paper §6 "Refine Runtime Data Plane").
//!
//! Two refinements make distributed execution transparent to the user:
//!
//! 1. **Step numbers** — every block gets a step number; the packet carries a
//!    `step` field that devices compare against their own blocks' steps, so that
//!    replicated blocks along a path execute exactly once and a packet that
//!    already passed a step skips it (which also provides the transient-failure
//!    bypass described in the paper);
//! 2. **Param field** — temporaries defined on one device and read on a
//!    downstream device are carried in the packet's `Param` field; this module
//!    computes which variables must be carried over each boundary and how many
//!    bits the field needs.

use clickinc_blockdag::BlockDag;
use clickinc_ir::IrProgram;
use clickinc_placement::PlacementPlan;
use std::collections::{BTreeMap, BTreeSet};

/// Step numbers assigned to the blocks of one placed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StepAssignment {
    /// Step of every block (by block index).
    pub step_of_block: BTreeMap<usize, usize>,
    /// For every device (by assignment index in the plan): the steps it hosts.
    pub steps_of_device: Vec<Vec<usize>>,
    /// Highest step number in use.
    pub max_step: usize,
}

/// Assign step numbers to the blocks of a placement plan.
///
/// The step of a block is its position in the global block order; all replicas
/// of the block (the same block placed on several EC members or appearing on
/// several branches) share the step, which is exactly what lets the runtime
/// "match the packet step field with its own block's step".
pub fn assign_steps(dag: &BlockDag, plan: &PlacementPlan) -> StepAssignment {
    let order = dag.blocks_by_step();
    let mut step_of_block = BTreeMap::new();
    for (step, block) in order.iter().enumerate() {
        step_of_block.insert(*block, step);
    }
    let mut steps_of_device = Vec::with_capacity(plan.assignments.len());
    let mut max_step = 0;
    for assignment in &plan.assignments {
        let mut steps: Vec<usize> =
            assignment.blocks.iter().filter_map(|b| step_of_block.get(&b.0).copied()).collect();
        steps.sort_unstable();
        if let Some(&m) = steps.last() {
            max_step = max_step.max(m);
        }
        steps_of_device.push(steps);
    }
    StepAssignment { step_of_block, steps_of_device, max_step }
}

/// The variables that must be carried in the `Param` field across each device
/// boundary of the plan, and the total field width in bits (32 bits per
/// temporary, matching the frontend's SSA temporaries).
pub fn param_field_bits(
    program: &IrProgram,
    dag: &BlockDag,
    plan: &PlacementPlan,
) -> (BTreeMap<String, Vec<String>>, u32) {
    let sets = program.read_write_sets();
    let order = dag.blocks_by_step();
    // which position in the order does each block occupy
    let pos_of: BTreeMap<usize, usize> = order.iter().enumerate().map(|(p, b)| (*b, p)).collect();

    let mut per_boundary: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut all_carried: BTreeSet<String> = BTreeSet::new();

    for assignment in &plan.assignments {
        if assignment.is_empty() {
            continue;
        }
        let here: BTreeSet<usize> = assignment.blocks.iter().map(|b| b.0).collect();
        let here_end =
            assignment.blocks.iter().filter_map(|b| pos_of.get(&b.0)).max().copied().unwrap_or(0);
        // variables defined here and read by any later block not on this device
        let mut carried: BTreeSet<String> = BTreeSet::new();
        for &block in &here {
            for &instr in &dag.blocks()[block].instrs {
                if let Some(def) = &sets[instr].writes_var {
                    for (later_pos, later_block) in order.iter().enumerate().skip(here_end + 1) {
                        if here.contains(later_block) {
                            continue;
                        }
                        let _ = later_pos;
                        let reads_it = dag.blocks()[*later_block]
                            .instrs
                            .iter()
                            .any(|&i| sets[i].reads_vars.contains(def));
                        if reads_it {
                            carried.insert(def.clone());
                        }
                    }
                }
            }
        }
        if !carried.is_empty() {
            all_carried.extend(carried.iter().cloned());
            per_boundary.insert(assignment.device.clone(), carried.into_iter().collect());
        }
    }
    let bits = all_carried.len() as u32 * 32;
    (per_boundary, bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_blockdag::{build_block_dag, BlockConfig};
    use clickinc_device::DeviceKind;
    use clickinc_frontend::compile_source;
    use clickinc_lang::templates::{kvs_template, mlagg_template, KvsParams, MlAggParams};
    use clickinc_placement::{place, PlacementConfig, PlacementNetwork, ResourceLedger};
    use clickinc_topology::{reduce_for_traffic, Topology};

    fn plan_on_chain(source: &str, name: &str, n: usize) -> (IrProgram, BlockDag, PlacementPlan) {
        let ir = compile_source(name, source).unwrap();
        let dag = build_block_dag(&ir, &BlockConfig::default());
        let topo = Topology::chain(n, DeviceKind::Tofino);
        let servers = topo.servers();
        let reduced = reduce_for_traffic(&topo, &[servers[0]], servers[1], &[]);
        let net = PlacementNetwork::from_reduced(&topo, &reduced, &ResourceLedger::new());
        let plan = place(&ir, &dag, &net, &PlacementConfig::default()).unwrap();
        (ir, dag, plan)
    }

    #[test]
    fn steps_cover_every_block_exactly_once_in_order() {
        let t = kvs_template("kvs", KvsParams::default());
        let (_, dag, plan) = plan_on_chain(&t.source, "kvs", 3);
        let steps = assign_steps(&dag, &plan);
        assert_eq!(steps.step_of_block.len(), dag.len());
        // steps are 0..n-1 with no gaps
        let mut values: Vec<usize> = steps.step_of_block.values().copied().collect();
        values.sort_unstable();
        assert_eq!(values, (0..dag.len()).collect::<Vec<_>>());
        assert_eq!(steps.max_step, dag.len() - 1);
        // per-device steps are contiguous ranges in traffic order
        let nonempty: Vec<&Vec<usize>> =
            steps.steps_of_device.iter().filter(|s| !s.is_empty()).collect();
        for window in nonempty.windows(2) {
            let end_prev = *window[0].last().unwrap();
            let start_next = *window[1].first().unwrap();
            assert!(start_next > end_prev, "later devices host later steps");
        }
    }

    #[test]
    fn param_field_covers_cross_device_temporaries() {
        let t = mlagg_template("mlagg", MlAggParams { dims: 8, ..Default::default() });
        let (ir, dag, plan) = plan_on_chain(&t.source, "mlagg", 2);
        let (per_boundary, bits) = param_field_bits(&ir, &dag, &plan);
        // if the plan splits the program across devices, some temporaries cross
        if plan.devices_used().len() > 1 {
            assert_eq!(
                bits as usize,
                per_boundary.values().flatten().collect::<BTreeSet<_>>().len() * 32
            );
        } else {
            assert_eq!(bits, per_boundary.values().flatten().count() as u32 * 32);
        }
    }

    #[test]
    fn single_device_plans_need_no_param_field() {
        let t = kvs_template("kvs", KvsParams { cache_depth: 100, ..Default::default() });
        let (ir, dag, plan) = plan_on_chain(&t.source, "kvs", 1);
        let (per_boundary, bits) = param_field_bits(&ir, &dag, &plan);
        assert!(per_boundary.is_empty(), "{per_boundary:?}");
        assert_eq!(bits, 0);
    }
}
