//! Typed reconfiguration actions and the observations that justify them.

use crate::tenant::ShardingMode;
use std::fmt;

/// The congestion evidence behind an [`AdaptAction`], measured over one
/// control-loop epoch (the delta between two telemetry snapshots).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Saturation {
    /// Packets the tenant offered this epoch (admitted + shed).
    pub offered: u64,
    /// Packets shed at ingress this epoch.
    pub shed: u64,
    /// Backpressure wait cycles this epoch (sheds' counterpart under
    /// [`OverloadPolicy::Backpressure`](crate::OverloadPolicy::Backpressure)).
    pub backpressure_waits: u64,
    /// The tenant's queue-depth high-water mark (lifetime max, not a delta).
    pub queue_depth_hwm: u64,
    /// The per-shard queue capacity the high-water mark is measured against.
    pub queue_capacity: u64,
    /// Packets lost to injected device faults this epoch — non-zero means
    /// the saturation is a *device failure*, not ingress congestion, and the
    /// only remedy is a replan away from the failed device.
    pub fault_lost: u64,
}

impl Saturation {
    /// Congestion events (sheds + backpressure waits) per offered packet.
    pub fn congestion_ratio(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.shed + self.backpressure_waits) as f64 / self.offered as f64
    }

    /// How close the observed high-water mark came to the queue bound.
    pub fn hwm_ratio(&self) -> f64 {
        if self.queue_capacity == 0 {
            return 0.0;
        }
        self.queue_depth_hwm as f64 / self.queue_capacity as f64
    }
}

impl fmt::Display for Saturation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "offered={} shed={} waits={} hwm={}/{}",
            self.offered,
            self.shed,
            self.backpressure_waits,
            self.queue_depth_hwm,
            self.queue_capacity
        )?;
        if self.fault_lost > 0 {
            write!(f, " fault_lost={}", self.fault_lost)?;
        }
        Ok(())
    }
}

/// One typed reconfiguration the control loop decided on.  `Reshard` and
/// `ResizeBudget` are applied directly on the engine; `Replan` is routed up
/// to the service layer so the verifier and admission chain gate it.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptAction {
    /// Live-reshard the tenant to `to` (quiesce, extract, re-merge, re-seed)
    /// — spread a saturated flow-shardable tenant across every shard, or
    /// consolidate an idle one back onto its home shard.
    Reshard {
        /// The tenant to reshard.
        user: String,
        /// The target sharding mode (always within the tenant's registered
        /// eligibility).
        to: ShardingMode,
        /// The epoch observation that triggered the move.
        why: Saturation,
    },
    /// Resize the tenant's ingress credit budget to its weighted fair share
    /// of the engine's aggregate queue capacity.
    ResizeBudget {
        /// The tenant whose budget changes.
        user: String,
        /// The new budget (max in-flight packets across shards).
        budget: u64,
        /// The epoch observation that triggered the rebalance.
        why: Saturation,
    },
    /// The tenant stayed saturated for `replan_epochs` despite resharding
    /// and budget resizing: ask the service to re-place it through the full
    /// plan/commit path.
    Replan {
        /// The tenant to re-place.
        user: String,
        /// The persistent saturation observation.
        why: Saturation,
    },
}

impl AdaptAction {
    /// The tenant this action targets.
    pub fn user(&self) -> &str {
        match self {
            AdaptAction::Reshard { user, .. }
            | AdaptAction::ResizeBudget { user, .. }
            | AdaptAction::Replan { user, .. } => user,
        }
    }
}

impl fmt::Display for AdaptAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptAction::Reshard { user, to, why } => {
                write!(f, "reshard {user} -> {} ({why})", to.label())
            }
            AdaptAction::ResizeBudget { user, budget, why } => {
                write!(f, "budget {user} -> {budget} ({why})")
            }
            AdaptAction::Replan { user, why } => write!(f, "replan {user} ({why})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_ratios() {
        let s = Saturation {
            offered: 100,
            shed: 30,
            backpressure_waits: 10,
            queue_depth_hwm: 90,
            queue_capacity: 100,
            fault_lost: 0,
        };
        assert!((s.congestion_ratio() - 0.4).abs() < 1e-9);
        assert!((s.hwm_ratio() - 0.9).abs() < 1e-9);
        assert!(!s.to_string().contains("fault_lost"));
        let faulted = Saturation { fault_lost: 7, ..s };
        assert!(faulted.to_string().contains("fault_lost=7"));
        assert_eq!(Saturation::default().congestion_ratio(), 0.0);
        assert_eq!(Saturation::default().hwm_ratio(), 0.0);
    }

    #[test]
    fn actions_render_and_name_their_tenant() {
        let why = Saturation { offered: 10, ..Default::default() };
        let a = AdaptAction::Reshard {
            user: "hot".into(),
            to: ShardingMode::ByFlow { key_fields: vec!["key".into()] },
            why: why.clone(),
        };
        assert_eq!(a.user(), "hot");
        assert!(a.to_string().contains("by_flow:key"));
        let b = AdaptAction::ResizeBudget { user: "bg".into(), budget: 64, why: why.clone() };
        assert!(b.to_string().contains("budget bg -> 64"));
        let c = AdaptAction::Replan { user: "hot".into(), why };
        assert!(c.to_string().starts_with("replan hot"));
    }
}
