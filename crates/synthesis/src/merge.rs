//! Header-parse-tree and program merging (paper Fig. 10, Algorithm 4).

use crate::base::BaseProgram;
use clickinc_ir::{InstrId, IrProgram};
use std::collections::BTreeMap;

/// A header parse tree: states (header names) with parent → child transitions.
/// The base program parses `ethernet → ipv4 → udp`; each user program adds its
/// application header under the transport layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParseTree {
    /// Parent state of each state (`None` for the root).
    parents: BTreeMap<String, Option<String>>,
    /// Owners annotated on each state (empty = operator).
    owners: BTreeMap<String, Vec<String>>,
}

impl ParseTree {
    /// The operator's standard `ethernet/ipv4/udp` parse tree.
    pub fn standard() -> ParseTree {
        let mut t = ParseTree::default();
        t.add_state("ethernet", None, None);
        t.add_state("ipv4", Some("ethernet"), None);
        t.add_state("udp", Some("ipv4"), None);
        t
    }

    /// Add a state; no-op if it already exists (the owner annotation is added).
    pub fn add_state(&mut self, name: &str, parent: Option<&str>, owner: Option<&str>) {
        self.parents.entry(name.to_string()).or_insert_with(|| parent.map(str::to_string));
        let owners = self.owners.entry(name.to_string()).or_default();
        if let Some(o) = owner {
            if !owners.contains(&o.to_string()) {
                owners.push(o.to_string());
            }
        }
    }

    /// All states.
    pub fn states(&self) -> Vec<&str> {
        self.parents.keys().map(String::as_str).collect()
    }

    /// The owners of a state.
    pub fn owners_of(&self, state: &str) -> &[String] {
        self.owners.get(state).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Whether the tree has no states.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Remove every state owned solely by `user`; shared states only lose the
    /// annotation (the incremental-removal path).
    pub fn remove_user(&mut self, user: &str) {
        let mut to_remove = Vec::new();
        for (state, owners) in &mut self.owners {
            owners.retain(|o| o != user);
            if owners.is_empty() && self.parents.get(state).map(|p| p.is_some()).unwrap_or(false) {
                // only user-added states (non-root chain) that now have no owner
                // and were not part of the standard stack get removed
                if !matches!(state.as_str(), "ethernet" | "ipv4" | "udp") {
                    to_remove.push(state.clone());
                }
            }
        }
        for state in to_remove {
            self.parents.remove(&state);
            self.owners.remove(&state);
        }
    }
}

/// Merge a user program's parse needs into the running parse tree: one state
/// per application header group, hung under UDP.
pub fn merge_parse_trees(tree: &mut ParseTree, user_program: &IrProgram, user: &str) {
    let state = format!("inc_{user}");
    tree.add_state(&state, Some("udp"), Some(user));
    // every application header field becomes part of the user's header state
    for field in &user_program.headers {
        tree.add_state(&format!("{state}.{}", field.name), Some(&state), Some(user));
    }
}

/// Merge the base program with the user snippets assigned to one device
/// (Fig. 10(b)): `base.head` first, then the user snippets (as early as their
/// dependencies allow — here: in the given order), then `base.tail`.
///
/// The returned program is the device's executable image in IR form; backends
/// translate it to the device language.
pub fn merge_programs(base: &BaseProgram, user_snippets: &[IrProgram]) -> IrProgram {
    let mut merged = IrProgram::new("device_image");
    let mut next_id: u32 = 0;
    let mut push_all = |merged: &mut IrProgram, src: &IrProgram| {
        for obj in &src.objects {
            if merged.object(&obj.name).is_none() {
                merged.objects.push(obj.clone());
            }
        }
        for hdr in &src.headers {
            if !merged.headers.iter().any(|h| h.name == hdr.name) {
                merged.headers.push(hdr.clone());
            }
        }
        for instr in &src.instructions {
            let mut instr = instr.clone();
            instr.id = InstrId(next_id);
            next_id += 1;
            merged.instructions.push(instr);
        }
    };
    push_all(&mut merged, &base.head);
    for snippet in user_snippets {
        push_all(&mut merged, snippet);
    }
    push_all(&mut merged, &base.tail);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::base_program;
    use crate::isolation::isolate_user_program;
    use clickinc_frontend::compile_source;
    use clickinc_lang::templates::{count_min_sketch, kvs_template, KvsParams};

    fn user_ir(name: &str, id: i64) -> IrProgram {
        let t = count_min_sketch(name, 3, 512);
        let ir = compile_source(name, &t.source).unwrap();
        isolate_user_program(&ir, name, id)
    }

    #[test]
    fn standard_parse_tree_and_user_merge() {
        let mut tree = ParseTree::standard();
        assert_eq!(tree.len(), 3);
        let user = user_ir("cms_0", 1);
        merge_parse_trees(&mut tree, &user, "cms_0");
        assert!(tree.len() > 3);
        assert!(tree.states().contains(&"inc_cms_0"));
        assert_eq!(tree.owners_of("inc_cms_0"), &["cms_0".to_string()]);
        // base states stay operator-owned
        assert!(tree.owners_of("ipv4").is_empty());
    }

    #[test]
    fn removing_a_user_strips_only_its_states() {
        let mut tree = ParseTree::standard();
        let a = user_ir("a", 1);
        let b = user_ir("b", 2);
        merge_parse_trees(&mut tree, &a, "a");
        merge_parse_trees(&mut tree, &b, "b");
        let with_both = tree.len();
        tree.remove_user("a");
        assert!(tree.len() < with_both);
        assert!(tree.states().contains(&"inc_b"));
        assert!(!tree.states().contains(&"inc_a"));
        // the standard stack survives even repeated removals
        tree.remove_user("b");
        assert_eq!(tree.len(), 3);
        assert!(!tree.is_empty());
    }

    #[test]
    fn merged_image_keeps_base_head_first_and_tail_last() {
        let base = base_program();
        let user = user_ir("cms_0", 1);
        let image = merge_programs(&base, std::slice::from_ref(&user));
        assert!(image.validate().is_ok(), "{}", image.dump());
        assert_eq!(image.len(), base.len() + user.len());
        // head validation comes before any user instruction, tail forward after
        let first_user = image
            .instructions
            .iter()
            .position(|i| !i.is_base())
            .expect("user instructions present");
        let last_user = image.instructions.iter().rposition(|i| !i.is_base()).unwrap();
        assert!(first_user >= base.head.len());
        assert!(last_user < image.len() - base.tail.len());
        // instruction ids are renumbered consecutively
        for (idx, instr) in image.instructions.iter().enumerate() {
            assert_eq!(instr.id.0 as usize, idx);
        }
    }

    #[test]
    fn merging_two_users_keeps_their_objects_disjoint() {
        let base = base_program();
        let a = user_ir("user_a", 1);
        let b = user_ir("user_b", 2);
        let image = merge_programs(&base, &[a.clone(), b.clone()]);
        assert!(image.validate().is_ok());
        assert_eq!(
            image.objects.len(),
            base.tail.objects.len() + a.objects.len() + b.objects.len()
        );
        let owners = image.owners();
        assert!(owners.contains("user_a") && owners.contains("user_b"));
    }

    #[test]
    fn kvs_user_snippet_merges_with_the_base() {
        let t = kvs_template("kvs_0", KvsParams::default());
        let ir = compile_source("kvs_0", &t.source).unwrap();
        let isolated = isolate_user_program(&ir, "kvs_0", 5);
        let image = merge_programs(&base_program(), std::slice::from_ref(&isolated));
        assert!(image.validate().is_ok(), "{}", image.dump());
        assert!(image.object("kvs_0_cache").is_some());
    }
}
