//! The placement objective (paper Eq. 1) and the adaptive weights.

use clickinc_blockdag::BlockDag;
use clickinc_ir::IrProgram;
use std::collections::BTreeSet;

/// The weights ω_t, ω_r, ω_p balancing traffic served, resource consumption and
/// cross-device communication in Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    /// Weight of the served-traffic term (the paper fixes it at 1/2).
    pub traffic: f64,
    /// Weight of the resource-consumption term.
    pub resource: f64,
    /// Weight of the cross-device communication term.
    pub comm: f64,
}

impl Weights {
    /// The fixed-weight configuration used as the baseline in Table 5:
    /// ω_t = 1/2 and the other half split evenly.
    pub fn fixed() -> Weights {
        Weights { traffic: 0.5, resource: 0.25, comm: 0.25 }
    }

    /// The adaptive weights of §5.4: ω_t = 1/2, ω_r = 1 − 2^(r−1),
    /// ω_p = 1/2 − ω_r, where `r` is the ratio of remaining resources.
    /// With plentiful resources (r → 1) the communication term dominates; as
    /// resources deplete (r → 0) the resource term takes over.
    pub fn adaptive(remaining_ratio: f64) -> Weights {
        let r = remaining_ratio.clamp(0.0, 1.0);
        let resource = (1.0 - 2f64.powf(r - 1.0)).clamp(0.0, 0.5);
        Weights { traffic: 0.5, resource, comm: 0.5 - resource }
    }
}

impl Default for Weights {
    fn default() -> Self {
        Weights::adaptive(1.0)
    }
}

/// Cross-device communication cost of cutting the block sequence after the
/// first `j` blocks: the number of bits of SSA temporaries defined in blocks
/// `< j` and read by blocks `>= j`, which must be carried in the packet's
/// `Param` field across the device boundary (paper §6 "Refine Runtime Data
/// Plane").
///
/// Returns a vector `cut[j]` for `j in 0..=n_blocks`, normalized by the total
/// number of temporary bits so the h_p term of Eq. 1 stays in `[0, 1]` per cut.
pub fn cut_costs(program: &IrProgram, dag: &BlockDag, order: &[usize]) -> Vec<f64> {
    let sets = program.read_write_sets();
    let n = order.len();
    // variables defined by each block (by position in `order`)
    let mut defs: Vec<BTreeSet<&str>> = Vec::with_capacity(n);
    let mut uses: Vec<BTreeSet<&str>> = Vec::with_capacity(n);
    for &block_idx in order {
        let block = &dag.blocks()[block_idx];
        let mut d = BTreeSet::new();
        let mut u = BTreeSet::new();
        for &instr in &block.instrs {
            if let Some(w) = &sets[instr].writes_var {
                d.insert(w.as_str());
            }
            for r in &sets[instr].reads_vars {
                u.insert(r.as_str());
            }
        }
        defs.push(d);
        uses.push(u);
    }
    let total_vars: usize = defs.iter().map(|d| d.len()).sum::<usize>().max(1);
    let bits_per_var = 32.0;
    let total_bits = total_vars as f64 * bits_per_var;

    let mut cuts = vec![0.0; n + 1];
    for (j, cut) in cuts.iter_mut().enumerate().take(n).skip(1) {
        let mut live = BTreeSet::new();
        for d in defs.iter().take(j) {
            live.extend(d.iter().copied());
        }
        let mut crossing = 0usize;
        let mut counted = BTreeSet::new();
        for u in uses.iter().skip(j) {
            for var in u {
                if live.contains(var) && counted.insert(*var) {
                    crossing += 1;
                }
            }
        }
        *cut = crossing as f64 * bits_per_var / total_bits;
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_blockdag::{build_block_dag, BlockConfig};
    use clickinc_ir::{AluOp, Operand, ProgramBuilder};

    #[test]
    fn adaptive_weights_shift_with_resource_pressure() {
        let plentiful = Weights::adaptive(1.0);
        assert!(plentiful.resource.abs() < 1e-9, "with everything free ω_r ≈ 0");
        assert!((plentiful.comm - 0.5).abs() < 1e-9);
        let scarce = Weights::adaptive(0.0);
        assert!((scarce.resource - 0.5).abs() < 1e-9, "with nothing left ω_r ≈ 1/2");
        assert!(scarce.comm.abs() < 1e-9);
        let mid = Weights::adaptive(0.5);
        assert!(mid.resource > 0.0 && mid.resource < 0.5);
        assert!((mid.resource + mid.comm - 0.5).abs() < 1e-9);
        // ω_t is always 1/2
        assert_eq!(plentiful.traffic, 0.5);
        assert_eq!(scarce.traffic, 0.5);
        // out-of-range ratios are clamped
        assert_eq!(Weights::adaptive(2.0), Weights::adaptive(1.0));
        assert_eq!(Weights::adaptive(-1.0), Weights::adaptive(0.0));
    }

    #[test]
    fn fixed_weights_sum_to_one() {
        let w = Weights::fixed();
        assert!((w.traffic + w.resource + w.comm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cut_costs_reflect_live_variables() {
        // v0 = hdr.a + 1 ; v1 = v0 + 2 ; v2 = v1 + 3  (a 3-block chain when
        // block merging is disabled)
        let mut b = ProgramBuilder::new("chain");
        b.alu("v0", AluOp::Add, Operand::hdr("a"), Operand::int(1));
        b.alu("v1", AluOp::Add, Operand::var("v0"), Operand::int(2));
        b.alu("v2", AluOp::Add, Operand::var("v1"), Operand::int(3));
        let program = b.build().expect("test program is well-formed");
        let dag =
            build_block_dag(&program, &BlockConfig { max_block_instrs: 1, enable_merging: false });
        let order = dag.blocks_by_step();
        let cuts = cut_costs(&program, &dag, &order);
        assert_eq!(cuts.len(), dag.len() + 1);
        // cutting in the middle always crosses exactly one live variable
        assert!(cuts[1] > 0.0);
        assert!(cuts[2] > 0.0);
        // no cut cost at the extremes (everything on one side)
        assert_eq!(cuts[0], 0.0);
        assert_eq!(cuts[dag.len()], 0.0);
    }

    #[test]
    fn independent_blocks_have_zero_cut_cost() {
        let mut b = ProgramBuilder::new("indep");
        b.alu("v0", AluOp::Add, Operand::hdr("a"), Operand::int(1));
        b.alu("v1", AluOp::Add, Operand::hdr("b"), Operand::int(2));
        let program = b.build().expect("test program is well-formed");
        let dag =
            build_block_dag(&program, &BlockConfig { max_block_instrs: 1, enable_merging: false });
        let order = dag.blocks_by_step();
        let cuts = cut_costs(&program, &dag, &order);
        assert!(cuts.iter().all(|c| *c == 0.0));
    }
}
