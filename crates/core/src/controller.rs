//! The ClickINC controller: compile → place → synthesize → deploy, with
//! dynamic (incremental) add/remove and multi-tenant resource accounting.
//!
//! Deployment is transactional and split in two phases (paper §3.2 as a
//! service): [`Controller::plan`] is a pure dry-run — it compiles, isolates
//! and places a request and predicts the post-commit resource ratio without
//! touching the ledger or the data planes — and [`Controller::commit`]
//! applies a plan atomically.  Every fallible check in `commit` runs before
//! the first mutation, so a rejected commit leaves the ledger, the active
//! user set and every plane's store bit-identical to before the call.

use crate::error::{ClickIncError, ControllerError};
use crate::reconfigure::{ReconfigureEvent, ReconfigureHook, TenantHop};
use crate::request::ServiceRequest;
use crate::sharding::sharding_mode_for;
use clickinc_backend::DeviceProgram;
use clickinc_blockdag::{build_block_dag, BlockConfig, BlockDag};
use clickinc_emulator::DevicePlane;
use clickinc_frontend::{CompileOptions, Frontend};
use clickinc_ir::analysis::{DeviceTarget, PlacedSnippet};
use clickinc_ir::{
    DiagnosticSet, Fnv, IrProgram, Optimizer, PassContext, PassManager, ResourceVector,
};
use clickinc_placement::{
    place_with_cache, PlacementConfig, PlacementNetwork, PlacementPlan, ResourceLedger, SolveCache,
    SolveCacheStats, Weights,
};
use clickinc_runtime::EngineHandle;
use clickinc_synthesis::incremental::DeviceImages;
use clickinc_synthesis::{
    add_user_program, assign_steps, base_program, isolate_user_program, remove_user_program,
    DeploymentDelta, StepAssignment,
};
use clickinc_topology::{reduce_for_traffic, NodeHealth, NodeId, Topology};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// Everything produced by one successful deployment.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The user id.
    pub user: String,
    /// The originating request — kept so a re-placement
    /// ([`crate::ClickIncService::replace_tenant`]) can re-plan the tenant
    /// through the full verification and admission chain.
    pub request: ServiceRequest,
    /// Numeric user id matched by the isolation guard (`meta.inc_user`);
    /// traffic must carry this id in its INC header to reach the program.
    pub numeric_id: i64,
    /// The isolated IR program.
    pub program: IrProgram,
    /// The block DAG used for placement.
    pub dag: BlockDag,
    /// The placement plan.
    pub plan: PlacementPlan,
    /// Step numbers assigned to the blocks.
    pub steps: StepAssignment,
    /// What the deployment touched (devices / co-resident programs / pods).
    pub delta: DeploymentDelta,
    /// Generated device-language programs, one per physical device touched.
    pub device_programs: BTreeMap<NodeId, DeviceProgram>,
    /// The IR snippets installed on each device's data plane, in install
    /// order — the material a serving runtime needs to mirror this deployment
    /// onto its own sharded planes.
    pub snippets: BTreeMap<NodeId, Vec<IrProgram>>,
    /// End-to-end compile + place + synthesize latency.
    pub elapsed: Duration,
}

/// A fully solved deployment that has **not** touched the ledger or the data
/// planes: the output of [`Controller::plan`] (a pure dry-run), consumed by
/// [`Controller::commit`].
///
/// The plan records the controller epoch it was solved against; committing
/// after any other commit or removal returns [`ClickIncError::StalePlan`]
/// instead of installing a placement that no longer reflects reality.
#[derive(Debug, Clone)]
pub struct DeploymentPlan {
    request: ServiceRequest,
    numeric_id: i64,
    program: IrProgram,
    dag: BlockDag,
    plan: PlacementPlan,
    predicted_remaining_ratio: f64,
    epoch: u64,
    /// Physical device names the plan occupies (deduped, sorted) — the
    /// topology node names behind the EC labels of
    /// [`devices`](DeploymentPlan::devices), so provider policy (a
    /// [`DeviceDenylist`](crate::DeviceDenylist) seeded with failed devices)
    /// can veto plans by the same names a failure reports.
    physical_devices: Vec<String>,
    /// Everything the static verifier pipeline reported while solving.  A
    /// plan only exists if the set carries no error-severity finding —
    /// [`PlanContext::solve`] turns those into [`ClickIncError::Verification`]
    /// — so what rides here is warnings and classification infos.
    diagnostics: DiagnosticSet,
    /// Wall-clock cost of the solve itself (compile + isolate + place), a
    /// `Duration` rather than a start `Instant` so a plan served from the
    /// cache does not smuggle quote-to-commit idle time into
    /// [`Deployment::elapsed`].
    solved_in: Duration,
    /// Ledger version stamps of every physical device the solve *considered*
    /// (all members of every candidate EC node, not just the devices the plan
    /// uses) — if they all still hold, the residual capacities the solve saw
    /// are bit-identical today.
    ledger_stamps: Vec<(NodeId, u64)>,
    /// [`Topology::health_version`] at solve time: equal values guarantee the
    /// reduced topology the solve routed over is unchanged.
    health_version: u64,
    /// Bits of the network-wide remaining ratio the adaptive weights were
    /// derived from (the ratio is global, so it can move even when every
    /// candidate device's ledger held still).
    weights_ratio_bits: u64,
}

impl DeploymentPlan {
    /// The user the plan deploys.
    pub fn user(&self) -> &str {
        &self.request.user
    }

    /// The originating request.
    pub fn request(&self) -> &ServiceRequest {
        &self.request
    }

    /// Numeric id the isolation guard will match on once committed.
    pub fn numeric_id(&self) -> i64 {
        self.numeric_id
    }

    /// The isolated IR program the plan would install.
    pub fn program(&self) -> &IrProgram {
        &self.program
    }

    /// The block DAG used for placement.
    pub fn dag(&self) -> &BlockDag {
        &self.dag
    }

    /// The solved placement (devices, per-device snippets, gain, solve time).
    pub fn placement(&self) -> &PlacementPlan {
        &self.plan
    }

    /// The verifier findings for this plan: warnings and classification
    /// infos only, since error-severity findings abort the solve before a
    /// plan exists.  `diagnostics().to_json()` is the CI export format; CI's
    /// deny-warnings mode additionally refuses plans where
    /// [`DiagnosticSet::has_warnings`] holds.
    pub fn diagnostics(&self) -> &DiagnosticSet {
        &self.diagnostics
    }

    /// Display names of the devices the plan would occupy.
    pub fn devices(&self) -> Vec<String> {
        self.plan.devices_used().into_iter().map(str::to_string).collect()
    }

    /// Physical topology node names the plan occupies (deduped, sorted).
    /// Unlike [`devices`](DeploymentPlan::devices) — which reports the
    /// placement's display labels — these are the names [`Topology`] and the
    /// failure paths ([`Controller::fail_device`]) speak.
    pub fn physical_devices(&self) -> &[String] {
        &self.physical_devices
    }

    /// Whether the plan occupies the named physical device.  The device list
    /// is sorted, so this is a binary search — the structural-invalidation
    /// probe the plan cache runs for every cached plan on every ledger move.
    pub fn touches_physical(&self, device: &str) -> bool {
        self.physical_devices.binary_search_by(|d| d.as_str().cmp(device)).is_ok()
    }

    /// Ledger version stamps of every physical device the solve considered
    /// (candidate devices — a superset of the occupied ones).  All stamps
    /// still holding is the warm re-pin precondition
    /// [`Controller::revalidate`] checks against the live ledger.
    pub fn ledger_stamps(&self) -> &[(NodeId, u64)] {
        &self.ledger_stamps
    }

    /// Total resource demand across every physical device the plan touches.
    pub fn resource_demand(&self) -> ResourceVector {
        let mut total = ResourceVector::default();
        for assignment in self.plan.assignments.iter().filter(|a| !a.is_empty()) {
            for _ in &assignment.members {
                total += assignment.demand;
            }
        }
        total
    }

    /// Network-wide remaining resource ratio *if* this plan commits.
    pub fn predicted_remaining_ratio(&self) -> f64 {
        self.predicted_remaining_ratio
    }

    /// Wall-clock cost of the solve that produced this plan (compile +
    /// isolate + place).  For the placement stage alone, read
    /// `placement().solve_time` — the runtime bench gates the warm-start
    /// speedup on that, keeping the frontend's compile cost out of the
    /// quotient.
    pub fn solved_in(&self) -> Duration {
        self.solved_in
    }

    /// The controller epoch this plan was solved against.  The plan commits
    /// only while [`Controller::epoch`] still returns this value; any other
    /// commit or removal in between makes it [`ClickIncError::StalePlan`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A deterministic digest of the whole solved plan: the originating
    /// request ([`ServiceRequest::fingerprint`]), the epoch and numeric id it
    /// is pinned to, the solved placement
    /// ([`PlacementPlan::fingerprint`](clickinc_placement::PlacementPlan::fingerprint))
    /// and the predicted ratio.  Two planner runs that solved the same
    /// request against the same controller state fingerprint equal — the
    /// bit-identity the parallel-planning tests assert.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.request.fingerprint());
        h.write_u64(self.epoch);
        h.write_u64(self.numeric_id as u64);
        h.write_u64(self.plan.fingerprint());
        h.write_u64(self.predicted_remaining_ratio.to_bits());
        h.finish()
    }

    /// The serializable inspection view of the plan: who, where, at what
    /// cost, and what would remain.  Dump it with `serde_json` to audit a
    /// dry-run before committing (see `examples/multi_tenant_incremental`).
    pub fn summary(&self) -> PlanSummary {
        PlanSummary {
            user: self.request.user.clone(),
            numeric_id: self.numeric_id,
            devices: self.devices(),
            demand: self
                .resource_demand()
                .nonzero()
                .map(|(r, v)| (r.name().to_string(), v))
                .collect(),
            predicted_remaining_ratio: self.predicted_remaining_ratio,
            epoch: self.epoch,
            fingerprint: format!("{:016x}", self.fingerprint()),
        }
    }
}

/// The serializable summary of a [`DeploymentPlan`] — what a provider logs
/// or shows a tenant before committing.  Produced by
/// [`DeploymentPlan::summary`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PlanSummary {
    /// The user the plan deploys.
    pub user: String,
    /// Numeric id the isolation guard will match on once committed.
    pub numeric_id: i64,
    /// Display names of the devices the plan would occupy.
    pub devices: Vec<String>,
    /// Non-zero resource demand, keyed by resource short name.
    pub demand: BTreeMap<String, f64>,
    /// Network-wide remaining resource ratio *if* this plan commits.
    pub predicted_remaining_ratio: f64,
    /// Controller epoch the plan was solved against.
    pub epoch: u64,
    /// [`DeploymentPlan::fingerprint`] as a hex string (JSON numbers cannot
    /// carry 64 bits losslessly).
    pub fingerprint: String,
}

/// The ClickINC controller (paper Fig. 2): owns the topology, the per-device
/// resource ledger, the running device images, and the emulated data planes.
pub struct Controller {
    topology: Topology,
    ledger: ResourceLedger,
    images: DeviceImages,
    planes: BTreeMap<NodeId, DevicePlane>,
    deployments: BTreeMap<String, Deployment>,
    next_user_id: i64,
    /// Bumped on every commit and removal; plans solved against an older
    /// epoch are rejected at commit time.
    epoch: u64,
    frontend: Frontend,
    block_config: BlockConfig,
    use_adaptive_weights: bool,
    hooks: Vec<ReconfigureHook>,
    /// Cross-solve segment memo shared by every plan this controller runs:
    /// keys carry the exact bits of their inputs, so entries survive epoch
    /// moves and warm solves stay bit-identical to cold ones.
    solve_cache: SolveCache,
    /// Whether solves consult the segment memo at all.  On by default;
    /// turned off only to price the unmemoized baseline in the churn bench
    /// (the memo is exact, so the flag never changes a solve's result).
    use_solve_memo: bool,
}

impl Controller {
    /// Create a controller managing the given topology.
    pub fn new(topology: Topology) -> Controller {
        let mut planes = BTreeMap::new();
        for node in topology.nodes() {
            if node.tier.is_network_device() && node.kind != clickinc_device::DeviceKind::Server {
                planes.insert(node.id, DevicePlane::new(&node.name, node.kind.model()));
            }
        }
        Controller {
            topology,
            ledger: ResourceLedger::new(),
            images: DeviceImages::default(),
            planes,
            deployments: BTreeMap::new(),
            next_user_id: 1,
            epoch: 0,
            frontend: Frontend::new(),
            block_config: BlockConfig::default(),
            use_adaptive_weights: true,
            hooks: Vec::new(),
            solve_cache: SolveCache::new(),
            use_solve_memo: true,
        }
    }

    /// Hit/miss/occupancy counters of the cross-solve segment memo.
    pub fn solve_cache_stats(&self) -> SolveCacheStats {
        self.solve_cache.stats()
    }

    /// Drop every memoized segment allocation (the hit/miss counters
    /// survive).  The benches use this to price a genuinely cold solve; it
    /// never changes what a solve returns, only how fast it returns it.
    pub fn clear_solve_cache(&self) {
        self.solve_cache.clear();
    }

    /// Enable or disable the segment memo for future solves.  Off prices
    /// the fully unmemoized dynamic program (the churn bench's cold
    /// baseline); the memo is exact, so flipping the flag never changes a
    /// solve's result — only its latency.
    pub fn set_solve_memo(&mut self, enabled: bool) {
        self.use_solve_memo = enabled;
    }

    /// Register a live-reconfiguration hook, called after every successful
    /// [`deploy`](Controller::deploy) and [`remove`](Controller::remove) with
    /// the corresponding [`ReconfigureEvent`].  Hooks run in registration
    /// order; a serving runtime uses this to mirror tenant changes onto its
    /// sharded data planes while traffic keeps flowing.
    pub fn add_reconfigure_hook(&mut self, hook: ReconfigureHook) {
        self.hooks.push(hook);
    }

    /// Mirror every future deploy/remove onto a running traffic engine.
    ///
    /// This is the low-level hook wiring for ablation experiments that drive
    /// the controller directly; [`crate::ClickIncService`] performs the same
    /// mirroring (plus all-or-nothing batch semantics) automatically.
    /// Tenants already deployed before this call are *not* replayed — attach
    /// first, then deploy, so the engine sees every tenant exactly once.
    pub fn attach_engine(&mut self, handle: EngineHandle) {
        self.add_reconfigure_hook(Box::new(move |event| match event {
            ReconfigureEvent::TenantAdded { user, hops, mode, .. } => {
                handle.add_tenant_sharded(user, hops.clone(), mode.clone());
            }
            ReconfigureEvent::TenantRemoved { user } => {
                handle.remove_tenant(user);
            }
            ReconfigureEvent::TenantResharded { user, mode } => {
                handle.reshard_tenant(user, mode.clone());
            }
        }));
    }

    /// Publish that a live tenant's traffic partitioning changed (the
    /// adaptive runtime applied a reshard on the serving engine).  Fires the
    /// reconfiguration hooks with [`ReconfigureEvent::TenantResharded`] so
    /// every attached engine mirrors the move; a no-op for unknown users.
    pub fn notify_resharded(&mut self, user: &str, mode: crate::reconfigure::ShardingMode) {
        if self.deployments.contains_key(user) {
            self.fire(ReconfigureEvent::TenantResharded { user: user.to_string(), mode });
        }
    }

    fn fire(&mut self, event: ReconfigureEvent) {
        // take the hooks out so they may re-enter accessors on `self`
        let mut hooks = std::mem::take(&mut self.hooks);
        for hook in &mut hooks {
            hook(&event);
        }
        self.hooks = hooks;
    }

    /// The programmable hops of a user's deployment in traffic order, with
    /// the installed snippets — what a serving runtime replays onto its own
    /// planes.  Empty if the user has no deployment.
    pub fn tenant_hops(&self, user: &str) -> Vec<TenantHop> {
        let Some(deployment) = self.deployments.get(user) else {
            return Vec::new();
        };
        // order-preserving dedup: the set guards membership, the vec keeps
        // traffic order (assignments are already path-ordered)
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        let mut order: Vec<NodeId> = Vec::new();
        for assignment in deployment.plan.assignments.iter().filter(|a| !a.is_empty()) {
            for member in &assignment.members {
                if seen.insert(*member) {
                    order.push(*member);
                }
            }
        }
        order
            .into_iter()
            .map(|id| {
                let node = self.topology.node(id);
                TenantHop {
                    device: node.name.clone(),
                    model: node.kind.model(),
                    snippets: deployment.snippets.get(&id).cloned().unwrap_or_default(),
                }
            })
            .collect()
    }

    /// Use fixed instead of adaptive objective weights (the Table 5 ablation).
    pub fn with_fixed_weights(mut self) -> Controller {
        self.use_adaptive_weights = false;
        self
    }

    /// The managed topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Ids of the users with an active deployment.
    pub fn active_users(&self) -> Vec<&str> {
        self.deployments.keys().map(String::as_str).collect()
    }

    /// The numeric id the isolation guard of a user's program matches on.
    pub fn numeric_id_of(&self, user: &str) -> Option<i64> {
        self.deployments.get(user).map(|d| d.numeric_id)
    }

    /// The deployment record of an active user program.
    pub fn deployment(&self, user: &str) -> Option<&Deployment> {
        self.deployments.get(user)
    }

    /// The emulated data plane of one device (to drive traffic through it).
    pub fn plane(&self, node: NodeId) -> Option<&DevicePlane> {
        self.planes.get(&node)
    }

    /// Mutable access to a device plane (e.g. for control-plane table setup or
    /// to run traffic).
    pub fn plane_mut(&mut self, node: NodeId) -> Option<&mut DevicePlane> {
        self.planes.get_mut(&node)
    }

    /// Fraction of network-wide resources still free.
    pub fn remaining_resource_ratio(&self) -> f64 {
        self.ledger.remaining_ratio(&self.topology)
    }

    /// The controller's state epoch: bumped on every commit and removal.
    /// A [`DeploymentPlan`] is only committable at the epoch it was solved
    /// against.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Fingerprints of every emulated plane's object store, keyed by device
    /// name — the observable data-plane state.  Rollback tests compare these
    /// before and after a failed transaction.
    pub fn plane_fingerprints(&self) -> BTreeMap<String, u64> {
        self.planes
            .iter()
            .map(|(id, plane)| (self.topology.node(*id).name.clone(), plane.store().fingerprint()))
            .collect()
    }

    /// Compile a request's source without deploying it (step ii of the
    /// workflow); exposed for the productivity experiments.
    pub fn compile(&self, request: &ServiceRequest) -> Result<IrProgram, ControllerError> {
        let ir = self.frontend.compile_source(
            &request.user,
            &request.source,
            &CompileOptions::default(),
        )?;
        Ok(ir)
    }

    /// Solve a request without deploying it: compile, isolate and place as a
    /// pure dry-run.  Reports the devices the program would occupy, the
    /// resource demand, and the predicted post-commit remaining ratio — and
    /// touches neither the ledger nor any data plane.  Feed the result to
    /// [`Controller::commit`] to make it real.
    ///
    /// Equivalent to `self.plan_context().solve(request)`; grab the
    /// [`PlanContext`] directly to run many solves concurrently.
    pub fn plan(&self, request: &ServiceRequest) -> Result<DeploymentPlan, ControllerError> {
        self.plan_context().solve(request)
    }

    /// Expert variant of [`plan`](Controller::plan): place an
    /// **already-isolated** IR program verbatim, skipping compile and
    /// isolation renaming (see [`PlanContext::solve_isolated`]).  The static
    /// verifier pipeline still runs — it is the only gate on this path, and
    /// a program that reads or writes outside its tenant's namespace is
    /// refused as [`ClickIncError::Verification`] before a plan exists.
    pub fn plan_isolated(
        &self,
        request: &ServiceRequest,
        program: IrProgram,
    ) -> Result<DeploymentPlan, ControllerError> {
        self.plan_context().solve_isolated(request, program)
    }

    /// [`plan_isolated`](Controller::plan_isolated) followed by
    /// [`commit`](Controller::commit).
    pub fn deploy_isolated(
        &mut self,
        request: &ServiceRequest,
        program: IrProgram,
    ) -> Result<&Deployment, ControllerError> {
        let planned = self.plan_isolated(request, program)?;
        self.commit(planned)
    }

    /// The `Sync` snapshot-view of everything [`plan`](Controller::plan)
    /// reads.  Planning is pure, so any number of threads may solve against
    /// one context concurrently — the service's `Planner` fans its batch
    /// solves out exactly this way.  The borrow pins the controller: no
    /// commit or removal can slide under a live context.
    pub fn plan_context(&self) -> PlanContext<'_> {
        PlanContext {
            topology: &self.topology,
            ledger: &self.ledger,
            deployments: &self.deployments,
            frontend: &self.frontend,
            block_config: &self.block_config,
            use_adaptive_weights: self.use_adaptive_weights,
            next_user_id: self.next_user_id,
            epoch: self.epoch,
            solve_cache: &self.solve_cache,
            use_solve_memo: self.use_solve_memo,
        }
    }

    /// Warm re-pin: promote a plan solved at an older epoch to the current
    /// one **iff** re-solving its request today would provably reproduce it
    /// bit-for-bit.  The preconditions mirror everything a solve reads:
    ///
    /// * the user is still absent and would receive the same numeric id
    ///   (the isolation guard is baked into the solved program);
    /// * no node's health changed ([`Topology::health_version`]), so the
    ///   reduced topology is identical;
    /// * every candidate device's ledger stamp still holds, so the residual
    ///   capacities the DP saw are identical;
    /// * under adaptive weights, the global remaining ratio's bits are
    ///   unchanged (it feeds the objective and can move on far-away commits).
    ///
    /// On success the returned plan carries the current epoch and a freshly
    /// recomputed post-commit ratio — exactly what a cold re-solve would
    /// produce, at the cost of a few integer compares.  `None` means the
    /// caller must re-solve (which the segment memo still accelerates).
    pub fn revalidate(&self, plan: &DeploymentPlan) -> Option<DeploymentPlan> {
        if self.deployments.contains_key(&plan.request.user) {
            return None;
        }
        if plan.numeric_id != self.next_user_id {
            return None;
        }
        if plan.health_version != self.topology.health_version() {
            return None;
        }
        if plan.ledger_stamps.iter().any(|(node, v)| self.ledger.version_of(*node) != *v) {
            return None;
        }
        if self.use_adaptive_weights
            && self.ledger.remaining_ratio(&self.topology).to_bits() != plan.weights_ratio_bits
        {
            return None;
        }
        let mut repinned = plan.clone();
        repinned.epoch = self.epoch;
        // the global post-commit ratio may have drifted on devices outside
        // the candidate set; recompute it the way a cold solve would
        let mut preview = self.ledger.clone();
        for assignment in repinned.plan.assignments.iter().filter(|a| !a.is_empty()) {
            for member in &assignment.members {
                preview.consume(*member, assignment.demand);
            }
        }
        repinned.predicted_remaining_ratio = preview.remaining_ratio(&self.topology);
        repinned.weights_ratio_bits = self.ledger.remaining_ratio(&self.topology).to_bits();
        Some(repinned)
    }

    /// Commit a [`DeploymentPlan`]: book the ledger resources, synthesize
    /// with the base program, install the snippets on the data planes, and
    /// fire the reconfiguration hooks.
    ///
    /// Atomicity: every fallible check (stale epoch, duplicate user) runs
    /// *before* the first mutation, so an `Err` return leaves the ledger,
    /// the active-user set and every plane bit-identical to before the call.
    pub fn commit(&mut self, planned: DeploymentPlan) -> Result<&Deployment, ControllerError> {
        if planned.epoch != self.epoch {
            return Err(ClickIncError::StalePlan {
                user: planned.request.user,
                planned_epoch: planned.epoch,
                current_epoch: self.epoch,
            });
        }
        if self.deployments.contains_key(&planned.request.user) {
            return Err(ClickIncError::DuplicateUser(planned.request.user));
        }
        // a DeploymentPlan can only be built by PlanContext::solve, which
        // already refuses error-severity diagnostics; this re-check keeps the
        // invariant local so no future construction path can bypass the gate
        if planned.diagnostics.has_errors() {
            return Err(ClickIncError::Verification {
                user: planned.request.user,
                diagnostics: planned.diagnostics,
            });
        }
        debug_assert_eq!(planned.numeric_id, self.next_user_id, "epoch pins the numeric id");
        let commit_started = Instant::now();
        let DeploymentPlan { request, numeric_id, program: isolated, dag, plan, solved_in, .. } =
            planned;

        // ---- no fallible step below this line: the commit is atomic ----

        // book resources
        for assignment in plan.assignments.iter().filter(|a| !a.is_empty()) {
            for member in &assignment.members {
                self.ledger.consume(*member, assignment.demand);
            }
        }

        // synthesize with the base program and install on the data planes
        let base = base_program();
        let pod_of: BTreeMap<NodeId, Option<usize>> =
            self.topology.nodes().iter().map(|n| (n.id, n.pod)).collect();
        let delta = add_user_program(&mut self.images, &base, &isolated, &plan, &pod_of);
        let steps = assign_steps(&dag, &plan);
        let mut device_programs = BTreeMap::new();
        let mut installed: BTreeMap<NodeId, Vec<IrProgram>> = BTreeMap::new();
        for assignment in plan.assignments.iter().filter(|a| !a.is_empty()) {
            let snippet = slice_snippet(&request.user, &isolated, &assignment.instrs);
            for member in &assignment.members {
                if let Some(plane) = self.planes.get_mut(member) {
                    plane.install(snippet.clone());
                }
                installed.entry(*member).or_default().push(snippet.clone());
                if let Some(image) = self.images.images.get(member) {
                    let kind = self.topology.node(*member).kind;
                    device_programs.insert(*member, clickinc_backend::generate(kind, image));
                }
            }
        }

        self.next_user_id += 1;
        self.epoch += 1;
        let deployment = Deployment {
            user: request.user.clone(),
            request: request.clone(),
            numeric_id,
            program: isolated,
            dag,
            plan,
            steps,
            delta,
            device_programs,
            snippets: installed,
            // solve cost + synthesis/install cost: pure pipeline latency,
            // with no quote-to-commit idle time even for cached plans
            elapsed: solved_in + commit_started.elapsed(),
        };
        self.deployments.insert(request.user.clone(), deployment);
        let hops = self.tenant_hops(&request.user);
        let mode = sharding_mode_for(&hops);
        self.fire(ReconfigureEvent::TenantAdded {
            user: request.user.clone(),
            numeric_id,
            hops,
            mode,
        });
        Ok(self.deployments.get(&request.user).expect("just inserted"))
    }

    /// Deploy a program in one step: [`plan`](Controller::plan) followed by
    /// [`commit`](Controller::commit).
    pub fn deploy(&mut self, request: ServiceRequest) -> Result<&Deployment, ControllerError> {
        let planned = self.plan(&request)?;
        self.commit(planned)
    }

    /// Remove a previously deployed program (lazy removal + resource release).
    pub fn remove(&mut self, user: &str) -> Result<DeploymentDelta, ControllerError> {
        let deployment = self
            .deployments
            .remove(user)
            .ok_or_else(|| ClickIncError::UnknownUser(user.to_string()))?;
        for assignment in deployment.plan.assignments.iter().filter(|a| !a.is_empty()) {
            for member in &assignment.members {
                self.ledger.release(*member, assignment.demand);
            }
        }
        // quiesce the emulated planes too: drop the tenant's snippets and
        // exclusively-owned state so a later re-deploy starts clean
        for device in deployment.snippets.keys() {
            if let Some(plane) = self.planes.get_mut(device) {
                plane.uninstall(user);
            }
        }
        let pod_of: BTreeMap<NodeId, Option<usize>> =
            self.topology.nodes().iter().map(|n| (n.id, n.pod)).collect();
        let delta = remove_user_program(&mut self.images, user, &pod_of);
        self.epoch += 1;
        self.fire(ReconfigureEvent::TenantRemoved { user: user.to_string() });
        Ok(delta)
    }

    /// Fail a device: mark it [`NodeHealth::Down`] in the topology — every
    /// placement solved from now on routes around it — and quiesce every
    /// tenant whose placement occupies it through the normal
    /// [`remove`](Controller::remove) path, so their ledger bookings are
    /// released, their snippets uninstalled, the epoch bumped and the
    /// reconfiguration hooks fired exactly as for a voluntary removal.
    ///
    /// Returns the displaced tenants' original requests (in user order) so
    /// the caller can re-place them against the degraded topology; the
    /// service-level [`fail_device`](crate::ClickIncService::fail_device)
    /// drives that re-placement through the full plan → verify → admission →
    /// commit chain.  Unknown devices are [`ClickIncError::UnknownHost`];
    /// failing an already-down device is idempotent.
    pub fn fail_device(&mut self, device: &str) -> Result<Vec<ServiceRequest>, ControllerError> {
        let id = self
            .topology
            .find(device)
            .ok_or_else(|| ClickIncError::UnknownHost(device.to_string()))?;
        let health_before = self.topology.health_version();
        self.topology.set_node_health(id, NodeHealth::Down);
        if self.topology.health_version() != health_before {
            // plans solved before the failure could still route through the
            // dead device (commit checks the epoch, not health) — a health
            // transition must therefore move the epoch even when no tenant
            // is displaced
            self.epoch += 1;
        }
        let affected: Vec<String> = self
            .deployments
            .keys()
            .filter(|user| self.devices_of(user).contains(&id))
            .cloned()
            .collect();
        let mut displaced = Vec::new();
        for user in affected {
            let request = self.deployments[&user].request.clone();
            self.remove(&user)?;
            displaced.push(request);
        }
        Ok(displaced)
    }

    /// Restore a failed device to [`NodeHealth::Up`]: placements may use it
    /// again.  The caller re-places tenants parked by the failure
    /// ([`crate::ClickIncService::restore_device`] does so automatically).
    pub fn restore_device(&mut self, device: &str) -> Result<(), ControllerError> {
        let id = self
            .topology
            .find(device)
            .ok_or_else(|| ClickIncError::UnknownHost(device.to_string()))?;
        let health_before = self.topology.health_version();
        self.topology.set_node_health(id, NodeHealth::Up);
        if self.topology.health_version() != health_before {
            // plans solved against the degraded topology routed around this
            // device; restoring it changes the solve inputs, so they must
            // not commit unexamined
            self.epoch += 1;
        }
        Ok(())
    }

    /// Names of the devices currently marked [`NodeHealth::Down`].
    pub fn down_devices(&self) -> Vec<String> {
        self.topology.down_nodes()
    }

    /// The physical devices hosting a user's snippets (for scenario wiring).
    pub fn devices_of(&self, user: &str) -> Vec<NodeId> {
        self.deployments
            .get(user)
            .map(|d| {
                d.plan
                    .assignments
                    .iter()
                    .filter(|a| !a.is_empty())
                    .flat_map(|a| a.members.iter().copied())
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// A `Sync` view of everything [`Controller::plan`] reads — topology,
/// ledger, active deployments, the compiler frontend, and the epoch pins —
/// detached from the controller's non-`Sync` machinery (the reconfiguration
/// hooks).  Obtained from [`Controller::plan_context`]; the borrow keeps the
/// controller locked in place, so every concurrent [`solve`](PlanContext::solve)
/// sees one frozen state and produces plans pinned to one epoch.
#[derive(Clone, Copy)]
pub struct PlanContext<'a> {
    topology: &'a Topology,
    ledger: &'a ResourceLedger,
    deployments: &'a BTreeMap<String, Deployment>,
    frontend: &'a Frontend,
    block_config: &'a BlockConfig,
    use_adaptive_weights: bool,
    next_user_id: i64,
    epoch: u64,
    solve_cache: &'a SolveCache,
    use_solve_memo: bool,
}

impl PlanContext<'_> {
    /// The controller epoch every plan solved by this context is pinned to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Compile, isolate and place `request` as a pure dry-run — the body of
    /// [`Controller::plan`], safe to call from any number of threads at once.
    pub fn solve(&self, request: &ServiceRequest) -> Result<DeploymentPlan, ControllerError> {
        let started = Instant::now();
        request.validate()?;
        if self.deployments.contains_key(&request.user) {
            return Err(ClickIncError::DuplicateUser(request.user.clone()));
        }
        // compile + isolate
        let ir = self.frontend.compile_source(
            &request.user,
            &request.source,
            &CompileOptions::default(),
        )?;
        let isolated = isolate_user_program(&ir, &request.user, self.next_user_id);
        self.solve_prepared(request, isolated, started)
    }

    /// Expert path: place an **already-isolated** IR program verbatim,
    /// skipping the compile and isolation-renaming steps of
    /// [`solve`](PlanContext::solve) (the request's `source` is ignored).
    /// Nothing here re-establishes the namespace discipline the normal path
    /// guarantees — the verifier pipeline is the only thing standing between
    /// a mis-isolated program and the planes, which is exactly why it runs
    /// on this path too and refuses error-severity findings as
    /// [`ClickIncError::Verification`].
    pub fn solve_isolated(
        &self,
        request: &ServiceRequest,
        program: IrProgram,
    ) -> Result<DeploymentPlan, ControllerError> {
        let started = Instant::now();
        request.validate()?;
        if self.deployments.contains_key(&request.user) {
            return Err(ClickIncError::DuplicateUser(request.user.clone()));
        }
        self.solve_prepared(request, program, started)
    }

    /// Everything after compile + isolate: endpoint resolution, block DAG,
    /// placement, static verification, and the ledger preview.
    fn solve_prepared(
        &self,
        request: &ServiceRequest,
        isolated: IrProgram,
        started: Instant,
    ) -> Result<DeploymentPlan, ControllerError> {
        // resolve endpoints
        let sources: Result<Vec<NodeId>, ControllerError> = request
            .sources
            .iter()
            .map(|s| self.topology.find(s).ok_or_else(|| ClickIncError::UnknownHost(s.clone())))
            .collect();
        let sources = sources?;
        let dst = self
            .topology
            .find(&request.destination)
            .ok_or_else(|| ClickIncError::UnknownHost(request.destination.clone()))?;

        // the numeric id this plan will own if committed at the current epoch
        let numeric_id = self.next_user_id;

        // install-time optimization over the whole isolated program, before
        // placement slices it: constant folding, dead-value elimination, and
        // hoisting the per-instruction isolation guard into the program
        // precondition (an O(1) skip for co-resident tenants' traffic).  The
        // optimizer re-verifies its own output and returns the original
        // program on any regression, so this can only narrow, never widen,
        // what the verifier below accepts.  Both execution tiers run the
        // optimized IR, keeping their telemetry bit-identical.
        let mut opt_diags = DiagnosticSet::new();
        let isolated = Optimizer::with_default_passes().optimize(
            &request.user,
            true,
            &isolated,
            &mut opt_diags,
        );

        // block DAG + reduced topology + placement (memo-accelerated: the
        // segment feasibility questions repeat across tenants and epochs)
        let dag = build_block_dag(&isolated, self.block_config);
        let reduced = reduce_for_traffic(self.topology, &sources, dst, &request.traffic_weights);
        let net = PlacementNetwork::from_reduced(self.topology, &reduced, self.ledger);
        let solve_ratio = self.ledger.remaining_ratio(self.topology);
        let weights = if self.use_adaptive_weights {
            Weights::adaptive(solve_ratio)
        } else {
            Weights::fixed()
        };
        let plan = place_with_cache(
            &isolated,
            &dag,
            &net,
            &PlacementConfig { weights, enable_pruning: true },
            if self.use_solve_memo { Some(self.solve_cache) } else { None },
        )?;

        // ledger stamps over every candidate device, so a later warm re-pin
        // can prove the residual capacities this solve saw are still current
        let candidate_nodes: BTreeSet<NodeId> =
            net.all_devices().flat_map(|d| d.members.iter().copied()).collect();
        let ledger_stamps: Vec<(NodeId, u64)> =
            candidate_nodes.into_iter().map(|n| (n, self.ledger.version_of(n))).collect();

        // static verification: the whole pass pipeline runs over the
        // isolated program and its per-device slices here, before a plan
        // even exists — so no deploy path (plan/commit/deploy, the service
        // facade, the batch planner) can mutate a ledger or a plane with an
        // unverified program.  Error-severity findings abort the solve; the
        // rest ride on the plan for inspection and CI export.
        let mut placements = Vec::new();
        for assignment in plan.assignments.iter().filter(|a| !a.is_empty()) {
            let snippet = slice_snippet(&request.user, &isolated, &assignment.instrs);
            for member in &assignment.members {
                let node = self.topology.node(*member);
                let model = node.kind.model();
                placements.push(PlacedSnippet {
                    device: node.name.clone(),
                    target: DeviceTarget {
                        device: node.name.clone(),
                        kind: node.kind.to_string(),
                        supported: model.supported_classes().clone(),
                        storage_capacity_bits: model.storage_capacity_bits(),
                    },
                    program: snippet.clone(),
                });
            }
        }
        let mut diagnostics = PassManager::with_default_passes().run(&PassContext {
            tenant: request.user.clone(),
            isolated: true,
            programs: std::slice::from_ref(&isolated),
            placements: &placements,
        });
        diagnostics.merge(opt_diags);
        if diagnostics.has_errors() {
            return Err(ClickIncError::Verification { user: request.user.clone(), diagnostics });
        }

        // predict the post-commit ratio on a scratch copy of the ledger
        let mut preview = self.ledger.clone();
        for assignment in plan.assignments.iter().filter(|a| !a.is_empty()) {
            for member in &assignment.members {
                preview.consume(*member, assignment.demand);
            }
        }
        let predicted_remaining_ratio = preview.remaining_ratio(self.topology);

        let physical: BTreeSet<String> = placements.iter().map(|p| p.device.clone()).collect();
        Ok(DeploymentPlan {
            request: request.clone(),
            numeric_id,
            program: isolated,
            dag,
            plan,
            predicted_remaining_ratio,
            epoch: self.epoch,
            physical_devices: physical.into_iter().collect(),
            diagnostics,
            solved_in: started.elapsed(),
            ledger_stamps,
            health_version: self.topology.health_version(),
            weights_ratio_bits: solve_ratio.to_bits(),
        })
    }
}

/// The per-device slice of an isolated program: an assignment's instructions
/// plus exactly the headers and objects they reference.  Shared by
/// [`PlanContext::solve`] (which verifies every slice against its device
/// model) and [`Controller::commit`] (which installs the same slices on the
/// planes), so the program the verifier approved is the program that runs.
fn slice_snippet(user: &str, isolated: &IrProgram, instrs: &[usize]) -> IrProgram {
    let mut snippet = IrProgram::new(user.to_string());
    snippet.headers = isolated.headers.clone();
    // the hoisted isolation guard must travel with every slice — without it
    // a slice would run on co-resident tenants' packets
    snippet.precondition = isolated.precondition.clone();
    snippet.objects = isolated
        .objects
        .iter()
        .filter(|o| {
            instrs.iter().any(|&i| isolated.instructions[i].object() == Some(o.name.as_str()))
        })
        .cloned()
        .collect();
    snippet.instructions = instrs.iter().map(|&i| isolated.instructions[i].clone()).collect();
    snippet
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_lang::templates::{
        count_min_sketch, dqacc_template, kvs_template, mlagg_template, DqAccParams, KvsParams,
        MlAggParams,
    };

    fn controller() -> Controller {
        Controller::new(Topology::emulation_topology_all_tofino())
    }

    #[test]
    fn deploy_compiles_places_and_installs() {
        let mut c = controller();
        let t = kvs_template("kvs0", KvsParams { cache_depth: 2000, ..Default::default() });
        let request = ServiceRequest::from_template(t, &["pod0a", "pod1a"], "pod2b");
        let ratio_before = c.remaining_resource_ratio();
        let deployment = c.deploy(request).expect("kvs deploys");
        assert_eq!(deployment.user, "kvs0");
        assert!(!deployment.plan.devices_used().is_empty());
        assert!(!deployment.device_programs.is_empty());
        assert!(deployment.delta.device_count() > 0);
        assert!(deployment.elapsed < Duration::from_secs(30));
        let devices = c.devices_of("kvs0");
        assert!(!devices.is_empty());
        // the snippets are installed on the emulated planes
        assert!(devices.iter().any(|d| c.plane(*d).map(|p| p.has_program()).unwrap_or(false)));
        // resources were booked
        assert!(c.remaining_resource_ratio() <= ratio_before);
        assert_eq!(c.active_users(), vec!["kvs0"]);
    }

    #[test]
    fn duplicate_users_and_unknown_hosts_are_rejected() {
        let mut c = controller();
        let t = count_min_sketch("cms0", 3, 512);
        c.deploy(ServiceRequest::from_template(t.clone(), &["pod0a"], "pod2b")).unwrap();
        let dup = c.deploy(ServiceRequest::from_template(t, &["pod0a"], "pod2b"));
        assert!(matches!(dup.unwrap_err(), ControllerError::DuplicateUser(_)));
        let bad = c.deploy(ServiceRequest::new("x", "forward()\n", &["nowhere"], "pod2b"));
        assert!(matches!(bad.unwrap_err(), ControllerError::UnknownHost(_)));
        let bad_dst = c.deploy(ServiceRequest::new("y", "forward()\n", &["pod0a"], "mars"));
        assert!(matches!(bad_dst.unwrap_err(), ControllerError::UnknownHost(_)));
    }

    #[test]
    fn compile_errors_are_reported() {
        let mut c = controller();
        let r = ServiceRequest::new("bad", "x = undefined_thing(1)\n", &["pod0a"], "pod2b");
        assert!(matches!(c.deploy(r).unwrap_err(), ControllerError::Compile(_)));
    }

    #[test]
    fn multiple_tenants_coexist_and_release_resources_on_removal() {
        let mut c = controller();
        c.deploy(ServiceRequest::from_template(
            kvs_template("kvs0", KvsParams { cache_depth: 2000, ..Default::default() }),
            &["pod0a", "pod1a"],
            "pod2b",
        ))
        .unwrap();
        let after_first = c.remaining_resource_ratio();
        c.deploy(ServiceRequest::from_template(
            dqacc_template("dq0", DqAccParams { depth: 2000, ways: 4 }),
            &["pod0b"],
            "pod2b",
        ))
        .unwrap();
        c.deploy(ServiceRequest::from_template(
            mlagg_template(
                "agg0",
                MlAggParams { dims: 8, num_aggregators: 1024, ..Default::default() },
            ),
            &["pod1a", "pod1b"],
            "pod2a",
        ))
        .unwrap();
        assert_eq!(c.active_users().len(), 3);
        let after_three = c.remaining_resource_ratio();
        assert!(after_three <= after_first);

        let dq_devices = c.devices_of("dq0");
        let delta = c.remove("dq0").expect("removal succeeds");
        assert!(delta.device_count() > 0);
        assert_eq!(c.active_users().len(), 2);
        assert!(c.remaining_resource_ratio() >= after_three);
        assert!(matches!(c.remove("dq0").unwrap_err(), ControllerError::UnknownUser(_)));
        // the emulated planes dropped the tenant's snippets and state…
        for device in &dq_devices {
            if let Some(plane) = c.plane(*device) {
                assert!(!plane.installed_programs().contains(&"dq0"), "snippets quiesced");
                assert!(
                    plane.store().table_names().iter().all(|n| !n.starts_with("dq0_")),
                    "tenant tables dropped"
                );
            }
        }
        // …so the same user id can deploy again from a clean slate
        c.deploy(ServiceRequest::from_template(
            dqacc_template("dq0", DqAccParams { depth: 2000, ways: 4 }),
            &["pod0b"],
            "pod2b",
        ))
        .expect("re-deploy after removal succeeds");
        assert_eq!(c.active_users().len(), 3);
    }

    #[test]
    fn failed_devices_quiesce_their_tenants_and_release_resources() {
        let mut c = controller();
        let t = kvs_template("kvs0", KvsParams { cache_depth: 1000, ..Default::default() });
        c.deploy(ServiceRequest::from_template(t, &["pod0a"], "pod2b")).unwrap();
        let device = c.topology().node(*c.devices_of("kvs0").first().unwrap()).name.clone();
        let displaced = c.fail_device(&device).expect("known device");
        assert_eq!(displaced.len(), 1, "the placed tenant was displaced");
        assert_eq!(displaced[0].user, "kvs0");
        assert!(c.active_users().is_empty());
        assert_eq!(c.remaining_resource_ratio(), 1.0, "bookings released");
        assert_eq!(c.down_devices(), vec![device.clone()]);
        // a re-solve against the degraded topology avoids the failed device
        if let Ok(plan) = c.plan(&displaced[0]) {
            assert!(
                !plan.physical_devices().contains(&device),
                "replan avoids the down device: {:?}",
                plan.physical_devices()
            );
        }
        c.restore_device(&device).expect("restores");
        assert!(c.down_devices().is_empty());
        assert!(matches!(c.fail_device("mars").unwrap_err(), ControllerError::UnknownHost(_)));
        assert!(matches!(c.restore_device("mars").unwrap_err(), ControllerError::UnknownHost(_)));
    }

    #[test]
    fn deployed_mlagg_actually_aggregates_on_the_emulated_plane() {
        use clickinc_emulator::packet::gradient_packet;
        use clickinc_emulator::PacketAction;
        let mut c = controller();
        let dims = 4usize;
        let workers = 2usize;
        c.deploy(ServiceRequest::from_template(
            mlagg_template(
                "agg0",
                MlAggParams {
                    dims: dims as u32,
                    num_workers: workers as u32,
                    num_aggregators: 256,
                    ..Default::default()
                },
            ),
            &["pod0a", "pod1a"],
            "pod2b",
        ))
        .unwrap();
        // find a device that hosts the aggregation state
        let devices = c.devices_of("agg0");
        let user_id = 1; // first deployment gets numeric id 1
        let mut completed = false;
        'outer: for device in devices {
            // replay the workload against a clone of that plane
            let Some(plane) = c.plane(device) else { continue };
            if !plane.has_program() {
                continue;
            }
            let mut plane = plane.clone();
            for w in 0..workers {
                let mut pkt = gradient_packet("w", "ps", user_id, 1, w, dims, &[1, 2, 3, 4]);
                let outcome = plane.process(&mut pkt);
                if outcome.action == PacketAction::Back {
                    assert_eq!(pkt.inc.get("data_0"), clickinc_ir::Value::Int(2));
                    completed = true;
                    break 'outer;
                }
            }
        }
        assert!(completed, "some device on the path completed the aggregation");
    }

    #[test]
    fn reconfigure_hooks_see_adds_and_removals_with_hops() {
        use std::sync::{Arc, Mutex};
        let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&log);
        let mut c = controller();
        c.add_reconfigure_hook(Box::new(move |event| {
            let line = match event {
                ReconfigureEvent::TenantAdded { user, numeric_id, hops, .. } => {
                    assert!(!hops.is_empty(), "a deployment always has hops");
                    assert!(
                        hops.iter().any(|h| !h.snippets.is_empty()),
                        "at least one hop carries snippets"
                    );
                    format!("+{user}:{numeric_id}")
                }
                ReconfigureEvent::TenantRemoved { user } => format!("-{user}"),
                ReconfigureEvent::TenantResharded { user, mode } => {
                    format!("~{user}:{}", mode.label())
                }
            };
            sink.lock().unwrap().push(line);
        }));
        let t = kvs_template("kvs0", KvsParams { cache_depth: 1000, ..Default::default() });
        c.deploy(ServiceRequest::from_template(t, &["pod0a"], "pod2b")).unwrap();
        c.remove("kvs0").unwrap();
        assert_eq!(*log.lock().unwrap(), vec!["+kvs0:1".to_string(), "-kvs0".to_string()]);
    }

    #[test]
    fn tenant_hops_mirror_the_installed_planes() {
        let mut c = controller();
        let t = kvs_template("kvs0", KvsParams { cache_depth: 1000, ..Default::default() });
        c.deploy(ServiceRequest::from_template(t, &["pod0a", "pod1a"], "pod2b")).unwrap();
        let hops = c.tenant_hops("kvs0");
        assert!(!hops.is_empty());
        let with_snippets: Vec<_> = hops.iter().filter(|h| !h.snippets.is_empty()).collect();
        assert!(!with_snippets.is_empty());
        for hop in &with_snippets {
            for snippet in &hop.snippets {
                assert_eq!(snippet.name, "kvs0");
            }
        }
        assert!(c.tenant_hops("missing").is_empty());
    }

    #[test]
    fn plan_context_is_sync_and_solves_exactly_like_plan() {
        fn assert_sync<T: Sync>(_: &T) {}
        let c = controller();
        let ctx = c.plan_context();
        assert_sync(&ctx); // the planner shares one context across threads
        let t = kvs_template("kvs0", KvsParams { cache_depth: 1000, ..Default::default() });
        let request = ServiceRequest::from_template(t, &["pod0a"], "pod2b");
        let via_controller = c.plan(&request).expect("plans");
        let via_context = ctx.solve(&request).expect("solves");
        assert_eq!(via_controller.fingerprint(), via_context.fingerprint());
        assert_eq!(via_context.epoch(), c.epoch());
        // the summary reports the same facts the plan accessors expose
        let summary = via_context.summary();
        assert_eq!(summary.user, "kvs0");
        assert_eq!(summary.devices, via_context.devices());
        assert!(!summary.demand.is_empty());
        assert_eq!(summary.predicted_remaining_ratio, via_context.predicted_remaining_ratio());
    }

    #[test]
    fn doc_example_compiles() {
        // mirrors the crate-level doc example
        let topo = Topology::emulation_topology_all_tofino();
        let mut controller = Controller::new(topo);
        let request = ServiceRequest::from_template(
            count_min_sketch("cms_demo", 3, 1024),
            &["pod0a"],
            "pod2b",
        );
        let deployment = controller.deploy(request).expect("cms deploys");
        assert!(!deployment.plan.devices_used().is_empty());
    }
}
