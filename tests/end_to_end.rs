//! Workspace-wide integration tests: the full ClickINC pipeline from source
//! text to packets executing on the emulated data plane, across crates.

use clickinc::topology::Topology;
use clickinc::{Controller, ServiceRequest};
use clickinc_emulator::packet::{gradient_packet, kvs_request};
use clickinc_emulator::PacketAction;
use clickinc_ir::Value;
use clickinc_lang::templates::{
    dqacc_template, kvs_template, mlagg_sparse_user, mlagg_template, DqAccParams, KvsParams,
    MlAggParams,
};

#[test]
fn full_pipeline_for_all_three_applications_on_the_emulation_topology() {
    let mut controller = Controller::new(Topology::emulation_topology_all_tofino());
    let requests = vec![
        ServiceRequest::from_template(
            kvs_template("kvs_0", KvsParams { cache_depth: 2000, ..Default::default() }),
            &["pod0a", "pod1a"],
            "pod2b",
        ),
        ServiceRequest::from_template(
            mlagg_template(
                "mlagg_0",
                MlAggParams { dims: 8, num_aggregators: 1024, ..Default::default() },
            ),
            &["pod0b", "pod1b"],
            "pod2a",
        ),
        ServiceRequest::from_template(
            dqacc_template("dqacc_0", DqAccParams { depth: 2000, ways: 4 }),
            &["pod1a"],
            "pod2b",
        ),
    ];
    for request in requests {
        let user = request.user.clone();
        let d = controller.deploy(request).unwrap_or_else(|e| panic!("{user}: {e}"));
        assert!(d.plan.traffic_served >= 1.0);
        assert!(!d.device_programs.is_empty());
        // the generated device program mentions the isolated (renamed) objects
        let any_source = d.device_programs.values().next().unwrap();
        assert!(any_source.lines_of_code() > 30);
    }
    assert_eq!(controller.active_users().len(), 3);

    // the three tenants' state is isolated: no object name appears in two programs
    let mut all_objects = std::collections::BTreeSet::new();
    for user in ["kvs_0", "mlagg_0", "dqacc_0"] {
        for obj in &controller.deployment(user).unwrap().program.objects {
            assert!(all_objects.insert(obj.name.clone()), "object {} shared", obj.name);
        }
    }
}

#[test]
fn deployed_kvs_serves_cache_hits_from_the_network() {
    let mut controller = Controller::new(Topology::emulation_topology_all_tofino());
    let d = controller
        .deploy(ServiceRequest::from_template(
            kvs_template("kvs_0", KvsParams { cache_depth: 1024, ..Default::default() }),
            &["pod0a"],
            "pod2b",
        ))
        .unwrap();
    let user_numeric = d.numeric_id;
    let devices: Vec<_> = d
        .plan
        .assignments
        .iter()
        .filter(|a| !a.is_empty())
        .flat_map(|a| a.members.iter().copied())
        .collect();
    // populate the (isolated) cache on the hosting device and issue a request
    let mut served = false;
    for device in devices {
        let Some(plane) = controller.plane_mut(device) else { continue };
        if !plane.store().contains("kvs_0_cache") {
            continue;
        }
        plane.store_mut().table_write("kvs_0_cache", &[Value::Int(5)], vec![Value::Int(5005)]);
        let mut pkt = kvs_request("pod0a", "pod2b", user_numeric, 5);
        let outcome = plane.process(&mut pkt);
        assert_eq!(outcome.action, PacketAction::Back);
        assert_eq!(pkt.inc.get("vals"), Value::Int(5005));
        served = true;
        break;
    }
    assert!(served, "some device hosted the kvs_0 cache and answered the request");
}

#[test]
fn sparse_mlagg_user_program_deploys_and_aggregates_end_to_end() {
    let mut controller = Controller::new(Topology::emulation_topology());
    let dims = 8u32;
    let workers = 2u32;
    let template = mlagg_sparse_user(
        "sparse_0",
        MlAggParams { dims, num_workers: workers, num_aggregators: 512, ..Default::default() },
        dims / 4,
        4,
    );
    let d = controller
        .deploy(ServiceRequest::from_template(template, &["pod0a", "pod1a"], "pod2b"))
        .unwrap();
    assert!(!d.plan.devices_used().is_empty());

    // drive the workload through the devices hosting the aggregation state, in
    // path order, and check the released aggregate
    let devices = controller.devices_of("sparse_0");
    let mut completed = false;
    for device in devices {
        let Some(plane) = controller.plane(device) else { continue };
        let mut plane = plane.clone();
        let mut sums = vec![0i64; dims as usize];
        for w in 0..workers {
            let values: Vec<i64> =
                (0..dims as i64).map(|x| if x < 4 { 0 } else { x + 1 }).collect();
            for (i, v) in values.iter().enumerate() {
                sums[i] += v;
            }
            let mut pkt = gradient_packet("w", "ps", 1, 9, w as usize, dims as usize, &values);
            let outcome = plane.process(&mut pkt);
            if outcome.action == PacketAction::Back {
                for (i, expected) in sums.iter().enumerate() {
                    let got = pkt.inc.get(&format!("data_{i}")).as_int().unwrap_or(0);
                    assert_eq!(got, *expected, "dimension {i}");
                }
                completed = true;
            }
        }
        if completed {
            break;
        }
    }
    assert!(completed, "the deployed sparse MLAgg completed an aggregation round");
}
