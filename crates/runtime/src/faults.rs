//! Deterministic fault injection on the workload's virtual clock.
//!
//! A [`FaultPlan`] is a schedule of [`FaultEvent`]s — device kills, flaky
//! devices that drop a fraction of their traffic, degraded links, restores —
//! stamped in virtual nanoseconds, the same clock the workload generators
//! stamp packets with.  Because the clock is virtual, a plan is perfectly
//! reproducible: the same seed yields the same schedule, and the engine
//! applies each event at the same point in the packet stream on every run
//! regardless of thread timing.
//!
//! The [`FaultInjector`] is the cursor the engine drives: feed it the
//! virtual time of each generated packet and it hands back the events that
//! have come due, in schedule order.  What an event *does* is split between
//! two layers: the shards apply the [`DeviceHealth`] transition (dropping,
//! degrading or fault-losing traffic at the device), and the controller's
//! failover path ([`Controller::fail_device`]) re-places the tenants that
//! lost a device.
//!
//! [`Controller::fail_device`]: ../../clickinc/struct.Controller.html#method.fail_device

use rand::prelude::*;
use std::fmt;

/// Operational health of a device plane, as applied by the shard workers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DeviceHealth {
    /// Serving normally (the default).
    #[default]
    Up,
    /// Dead: every packet reaching the device is lost to the fault
    /// (counted as `fault_lost_packets`, never as an in-network drop).
    Down,
    /// Drops each packet with probability `drop_prob` (deterministic hash,
    /// not wall-clock randomness), serving the rest.
    Flaky {
        /// Probability in `[0, 1]` that a packet traversing the device is
        /// lost to the fault.
        drop_prob: f64,
    },
    /// The device's egress link is degraded: per-packet device latency is
    /// scaled by `factor` (≥ 1.0), inflating tail latency without loss.
    Degraded {
        /// Latency multiplication factor.
        factor: f64,
    },
}

impl DeviceHealth {
    /// Whether traffic still reaches the device at all.
    pub fn is_serving(&self) -> bool {
        !matches!(self, DeviceHealth::Down)
    }
}

impl fmt::Display for DeviceHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceHealth::Up => write!(f, "up"),
            DeviceHealth::Down => write!(f, "down"),
            DeviceHealth::Flaky { drop_prob } => write!(f, "flaky(p={drop_prob:.2})"),
            DeviceHealth::Degraded { factor } => write!(f, "degraded(x{factor:.2})"),
        }
    }
}

/// What happens to a device at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The device dies; traffic through it is lost until restore.
    DeviceDown,
    /// The device starts dropping a fraction of its traffic.
    DeviceFlaky {
        /// Per-packet loss probability in `[0, 1]`.
        drop_prob: f64,
    },
    /// The device's link degrades, scaling its per-packet latency.
    LinkDegraded {
        /// Latency multiplication factor (≥ 1.0).
        factor: f64,
    },
    /// The device returns to full health.
    DeviceRestored,
}

impl FaultKind {
    /// The [`DeviceHealth`] the shards should apply for this event.
    pub fn health(&self) -> DeviceHealth {
        match *self {
            FaultKind::DeviceDown => DeviceHealth::Down,
            FaultKind::DeviceFlaky { drop_prob } => {
                DeviceHealth::Flaky { drop_prob: drop_prob.clamp(0.0, 1.0) }
            }
            FaultKind::LinkDegraded { factor } => {
                DeviceHealth::Degraded { factor: factor.max(1.0) }
            }
            FaultKind::DeviceRestored => DeviceHealth::Up,
        }
    }

    /// Whether the event takes the device out of service entirely (the
    /// controller must re-place tenants routed through it).
    pub fn is_outage(&self) -> bool {
        matches!(self, FaultKind::DeviceDown)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::DeviceDown => write!(f, "down"),
            FaultKind::DeviceFlaky { drop_prob } => write!(f, "flaky(p={drop_prob:.2})"),
            FaultKind::LinkDegraded { factor } => write!(f, "link-degraded(x{factor:.2})"),
            FaultKind::DeviceRestored => write!(f, "restored"),
        }
    }
}

/// One scheduled fault: *what* happens to *which* device *when* on the
/// virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Virtual time at which the event fires.
    pub at_vtime_ns: u64,
    /// Physical device name (e.g. `Agg0`), matching the topology and the
    /// shard planes.
    pub device: String,
    /// What happens.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ns {} {}", self.at_vtime_ns, self.device, self.kind)
    }
}

/// A deterministic fault schedule, sorted by virtual time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injecting it is a no-op).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Append an event; the plan re-sorts by time (stable, so same-instant
    /// events keep insertion order).
    pub fn at(mut self, at_vtime_ns: u64, device: impl Into<String>, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent { at_vtime_ns, device: device.into(), kind });
        self.events.sort_by_key(|e| e.at_vtime_ns);
        self
    }

    /// A seeded random schedule over `devices` within `[0, horizon_ns)`:
    /// `faults` events, each a kill / flaky / degraded episode on a random
    /// device; kills are paired with a restore later in the horizon.  Same
    /// seed, devices and horizon → byte-identical plan.
    pub fn random(seed: u64, devices: &[String], horizon_ns: u64, faults: usize) -> FaultPlan {
        let mut plan = FaultPlan::new();
        if devices.is_empty() || horizon_ns == 0 {
            return plan;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..faults {
            let device = devices[rng.gen_range(0..devices.len())].clone();
            let at = rng.gen_range(0..horizon_ns.max(1));
            let kind = match rng.gen_range(0..3u32) {
                0 => FaultKind::DeviceDown,
                1 => FaultKind::DeviceFlaky { drop_prob: rng.gen_range(0.05..0.95) },
                _ => FaultKind::LinkDegraded { factor: rng.gen_range(1.5..8.0) },
            };
            let outage = kind.is_outage();
            plan = plan.at(at, device.clone(), kind);
            if outage && at + 1 < horizon_ns {
                let restore_at = rng.gen_range(at + 1..horizon_ns);
                plan = plan.at(restore_at, device, FaultKind::DeviceRestored);
            }
        }
        plan
    }

    /// The schedule, in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Every device the plan ever takes fully down.
    pub fn outage_devices(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.events.iter().filter(|e| e.kind.is_outage()).map(|e| e.device.clone()).collect();
        names.sort();
        names.dedup();
        names
    }
}

/// Cursor over a [`FaultPlan`]: the engine advances it with the virtual
/// time of each generated packet and applies whatever comes due.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    cursor: usize,
}

impl FaultInjector {
    /// Wrap a plan; the cursor starts before the first event.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan, cursor: 0 }
    }

    /// Events whose scheduled time is `<= now_vtime_ns` and not yet
    /// delivered, in schedule order.  Monotonic: feeding an earlier time
    /// after a later one returns nothing rather than replaying.
    pub fn due(&mut self, now_vtime_ns: u64) -> Vec<FaultEvent> {
        let events = self.plan.events();
        let start = self.cursor;
        while self.cursor < events.len() && events[self.cursor].at_vtime_ns <= now_vtime_ns {
            self.cursor += 1;
        }
        events[start..self.cursor].to_vec()
    }

    /// Events not yet delivered.
    pub fn pending(&self) -> &[FaultEvent] {
        &self.plan.events()[self.cursor..]
    }

    /// Whether every scheduled event has been delivered.
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.plan.events().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_by_time_and_builder_chains() {
        let plan = FaultPlan::new()
            .at(500, "Agg1", FaultKind::DeviceRestored)
            .at(100, "Agg1", FaultKind::DeviceDown)
            .at(300, "ToR0", FaultKind::DeviceFlaky { drop_prob: 0.5 });
        let times: Vec<u64> = plan.events().iter().map(|e| e.at_vtime_ns).collect();
        assert_eq!(times, vec![100, 300, 500]);
        assert_eq!(plan.outage_devices(), vec!["Agg1".to_string()]);
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let devices = vec!["Agg0".to_string(), "Agg1".to_string(), "Core0".to_string()];
        let a = FaultPlan::random(17, &devices, 1_000_000, 4);
        let b = FaultPlan::random(17, &devices, 1_000_000, 4);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultPlan::random(18, &devices, 1_000_000, 4);
        assert_ne!(a, c, "a different seed yields a different schedule");
        // every kill inside the horizon is paired with a later restore
        for event in a.events().iter().filter(|e| e.kind.is_outage()) {
            assert!(a.events().iter().any(|r| r.device == event.device
                && r.kind == FaultKind::DeviceRestored
                && r.at_vtime_ns > event.at_vtime_ns));
        }
    }

    #[test]
    fn injector_delivers_each_event_once_in_order() {
        let plan = FaultPlan::new()
            .at(100, "A", FaultKind::DeviceDown)
            .at(200, "B", FaultKind::LinkDegraded { factor: 2.0 })
            .at(200, "A", FaultKind::DeviceRestored);
        let mut injector = FaultInjector::new(plan);
        assert!(injector.due(99).is_empty());
        let first = injector.due(150);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].device, "A");
        // going backwards never replays
        assert!(injector.due(50).is_empty());
        let rest = injector.due(1_000);
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].device, "B");
        assert_eq!(rest[1].device, "A");
        assert!(injector.is_exhausted());
        assert!(injector.pending().is_empty());
    }

    #[test]
    fn fault_kinds_map_to_clamped_health() {
        assert_eq!(FaultKind::DeviceDown.health(), DeviceHealth::Down);
        assert_eq!(FaultKind::DeviceRestored.health(), DeviceHealth::Up);
        assert_eq!(
            FaultKind::DeviceFlaky { drop_prob: 1.7 }.health(),
            DeviceHealth::Flaky { drop_prob: 1.0 }
        );
        assert_eq!(
            FaultKind::LinkDegraded { factor: 0.2 }.health(),
            DeviceHealth::Degraded { factor: 1.0 }
        );
        assert!(DeviceHealth::Flaky { drop_prob: 0.3 }.is_serving());
        assert!(!DeviceHealth::Down.is_serving());
        assert_eq!(DeviceHealth::Down.to_string(), "down");
    }
}
