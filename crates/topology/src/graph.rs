//! The physical topology graph and its builders.

use clickinc_device::DeviceKind;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an undirected link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// Network tier of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tier {
    /// End host.
    Server,
    /// SmartNIC sitting between a server and its ToR.
    Nic,
    /// Top-of-rack switch.
    ToR,
    /// Aggregation switch.
    Agg,
    /// Core / spine switch.
    Core,
}

impl Tier {
    /// Numeric level used to check the up-down property of paths
    /// (server lowest, core highest).
    pub fn level(&self) -> i32 {
        match self {
            Tier::Server => 0,
            Tier::Nic => 1,
            Tier::ToR => 2,
            Tier::Agg => 3,
            Tier::Core => 4,
        }
    }

    /// Whether the tier hosts a programmable network device.
    pub fn is_network_device(&self) -> bool {
        !matches!(self, Tier::Server)
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tier::Server => "server",
            Tier::Nic => "nic",
            Tier::ToR => "tor",
            Tier::Agg => "agg",
            Tier::Core => "core",
        };
        write!(f, "{s}")
    }
}

/// A node of the topology.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Identifier (index into the topology's node vector).
    pub id: NodeId,
    /// Human-readable name, e.g. `ToR3`, `pod1a`, `Core0`.
    pub name: String,
    /// Tier.
    pub tier: Tier,
    /// Pod number for pod-local tiers (ToR / Agg / servers / NICs).
    pub pod: Option<usize>,
    /// Device family installed at this node.
    pub kind: DeviceKind,
    /// Optional bypass accelerator attached to the device (paper Fig. 11's
    /// "Bypass FPGA" on Agg4/Agg5).
    pub bypass: Option<DeviceKind>,
    /// Link capacity of the node's ports in Gbps.
    pub link_gbps: f64,
}

/// An undirected link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Capacity in Gbps.
    pub gbps: f64,
}

/// Operational health of a node, as the controller believes it.  Every node
/// starts [`NodeHealth::Up`]; the failover path marks devices `Down` so path
/// enumeration (and therefore placement) routes around them, and `Up` again
/// on restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeHealth {
    /// Serving normally (the default).
    #[default]
    Up,
    /// Failed: paths may not traverse this node.
    Down,
}

/// The data-center topology.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    adjacency: Vec<Vec<NodeId>>,
    /// Name → id lookup maintained by `add_node` (placement resolves
    /// endpoints by name in every solve, so `find` must not scan).
    name_index: BTreeMap<String, NodeId>,
    /// Sparse health overlay: only nodes that ever left `Up` appear here.
    health: BTreeMap<usize, NodeHealth>,
    /// Bumped on every effective health transition; two equal values bracket
    /// a window in which every node's health was provably unchanged (the
    /// planner's warm re-pin checks this instead of diffing the overlay).
    health_version: u64,
}

impl Topology {
    /// Create an empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Add a node and return its id.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        tier: Tier,
        pod: Option<usize>,
        kind: DeviceKind,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        let name = name.into();
        // first insertion wins, matching the old linear scan's first-match
        // semantics if a builder ever reuses a name
        self.name_index.entry(name.clone()).or_insert(id);
        self.nodes.push(Node { id, name, tier, pod, kind, bypass: None, link_gbps: 100.0 });
        self.adjacency.push(Vec::new());
        id
    }

    /// Attach a bypass accelerator to a node.
    pub fn attach_bypass(&mut self, node: NodeId, kind: DeviceKind) {
        self.nodes[node.0].bypass = Some(kind);
    }

    /// Add an undirected link.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) -> LinkId {
        self.add_link_with_capacity(a, b, 100.0)
    }

    /// Add an undirected link with an explicit capacity.
    pub fn add_link_with_capacity(&mut self, a: NodeId, b: NodeId, gbps: f64) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(Link { a, b, gbps });
        self.adjacency[a.0].push(b);
        self.adjacency[b.0].push(a);
        id
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutable access to a node (used by scenario builders to change device
    /// kinds, e.g. the "all Tofino" variant of Table 3).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Neighbors of a node.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.adjacency[id.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of all server nodes, in id order.
    pub fn servers(&self) -> Vec<NodeId> {
        self.nodes.iter().filter(|n| n.tier == Tier::Server).map(|n| n.id).collect()
    }

    /// Ids of all programmable network devices (everything except servers, and
    /// excluding non-programmable NIC placeholders).
    pub fn programmable_devices(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.tier.is_network_device() && n.kind != DeviceKind::Server)
            .map(|n| n.id)
            .collect()
    }

    /// Look a node up by name (indexed; hot in planner endpoint resolution).
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// A node's operational health (every node defaults to
    /// [`NodeHealth::Up`]).
    pub fn node_health(&self, id: NodeId) -> NodeHealth {
        self.health.get(&id.0).copied().unwrap_or_default()
    }

    /// Whether a node is currently serving.
    pub fn is_up(&self, id: NodeId) -> bool {
        self.node_health(id) == NodeHealth::Up
    }

    /// Mark a node's health.  Path enumeration skips `Down` nodes, so a
    /// subsequent placement solve routes around them.  Bumps
    /// [`health_version`](Self::health_version) only on an effective
    /// transition, so idempotent re-marks stay invisible to warm re-pins.
    pub fn set_node_health(&mut self, id: NodeId, health: NodeHealth) {
        let changed = match health {
            NodeHealth::Up => self.health.remove(&id.0).is_some(),
            NodeHealth::Down => self.health.insert(id.0, health).is_none(),
        };
        if changed {
            self.health_version += 1;
        }
    }

    /// Monotone counter of effective health transitions; equal values bracket
    /// a window in which no node's health changed.
    pub fn health_version(&self) -> u64 {
        self.health_version
    }

    /// Names of all nodes currently marked [`NodeHealth::Down`].
    pub fn down_nodes(&self) -> Vec<String> {
        self.health.keys().map(|idx| self.nodes[*idx].name.clone()).collect()
    }

    /// Distinct pods present in the topology.
    pub fn pods(&self) -> Vec<usize> {
        let set: BTreeSet<usize> = self.nodes.iter().filter_map(|n| n.pod).collect();
        set.into_iter().collect()
    }

    // ---- builders -------------------------------------------------------------

    /// A simple chain of `n` devices of the given kind between a client and a
    /// server — the setup of the Table 4 / Fig. 14 experiments ("a simple chain
    /// with four Tofino switches").
    pub fn chain(n: usize, kind: DeviceKind) -> Topology {
        let mut t = Topology::new();
        let client = t.add_node("client", Tier::Server, Some(0), DeviceKind::Server);
        let mut prev = client;
        for i in 0..n {
            let sw = t.add_node(format!("SW{i}"), Tier::ToR, Some(0), kind);
            t.add_link(prev, sw);
            prev = sw;
        }
        let server = t.add_node("server", Tier::Server, Some(1), DeviceKind::Server);
        t.add_link(prev, server);
        t
    }

    /// Device-equal k-ary fat-tree (paper Fig. 19): `k` pods, `k/2` ToR and
    /// `k/2` Agg switches per pod, `(k/2)²` core switches, `k/2` servers per
    /// ToR, all switches of the same `kind`.
    pub fn device_equal_fat_tree(k: usize, kind: DeviceKind) -> Topology {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be an even number >= 2");
        let half = k / 2;
        let mut t = Topology::new();
        // core switches
        let cores: Vec<NodeId> = (0..half * half)
            .map(|i| t.add_node(format!("Core{i}"), Tier::Core, None, kind))
            .collect();
        for pod in 0..k {
            let aggs: Vec<NodeId> = (0..half)
                .map(|i| t.add_node(format!("Agg{}", pod * half + i), Tier::Agg, Some(pod), kind))
                .collect();
            let tors: Vec<NodeId> = (0..half)
                .map(|i| t.add_node(format!("ToR{}", pod * half + i), Tier::ToR, Some(pod), kind))
                .collect();
            // agg <-> core: agg i connects to cores [i*half, (i+1)*half)
            for (i, agg) in aggs.iter().enumerate() {
                for j in 0..half {
                    t.add_link(*agg, cores[i * half + j]);
                }
            }
            // tor <-> agg: full bipartite within the pod
            for tor in &tors {
                for agg in &aggs {
                    t.add_link(*tor, *agg);
                }
            }
            // servers under each ToR
            for (i, tor) in tors.iter().enumerate() {
                for s in 0..half {
                    let srv = t.add_node(
                        format!("pod{pod}_s{}", i * half + s),
                        Tier::Server,
                        Some(pod),
                        DeviceKind::Server,
                    );
                    t.add_link(*tor, srv);
                }
            }
        }
        t
    }

    /// Spine-leaf fabric: every leaf connects to every spine; `servers_per_leaf`
    /// servers hang off each leaf.
    pub fn spine_leaf(
        spines: usize,
        leaves: usize,
        servers_per_leaf: usize,
        kind: DeviceKind,
    ) -> Topology {
        let mut t = Topology::new();
        let spine_ids: Vec<NodeId> =
            (0..spines).map(|i| t.add_node(format!("Spine{i}"), Tier::Core, None, kind)).collect();
        for l in 0..leaves {
            let leaf = t.add_node(format!("Leaf{l}"), Tier::ToR, Some(l), kind);
            for s in &spine_ids {
                t.add_link(leaf, *s);
            }
            for s in 0..servers_per_leaf {
                let srv =
                    t.add_node(format!("leaf{l}_s{s}"), Tier::Server, Some(l), DeviceKind::Server);
                t.add_link(leaf, srv);
            }
        }
        t
    }

    /// The heterogeneous emulation topology of the paper's Fig. 11: three pods,
    /// two ToR (Tofino) and two Agg (Trident4) switches per pod, four Tofino2
    /// core switches, one server group per ToR (named `pod{i}a` / `pod{i}b`),
    /// NFP smartNICs in front of the pod-0/pod-1 servers, FPGA smartNICs in
    /// front of the pod-1 `ToR2/ToR3` servers, and bypass FPGA accelerators on
    /// the pod-2 aggregation switches (Agg4/Agg5).
    pub fn emulation_topology() -> Topology {
        let mut t = Topology::new();
        let cores: Vec<NodeId> = (0..4)
            .map(|i| t.add_node(format!("Core{i}"), Tier::Core, None, DeviceKind::Tofino2))
            .collect();
        for pod in 0..3 {
            let aggs: Vec<NodeId> = (0..2)
                .map(|i| {
                    t.add_node(
                        format!("Agg{}", pod * 2 + i),
                        Tier::Agg,
                        Some(pod),
                        DeviceKind::Trident4,
                    )
                })
                .collect();
            let tors: Vec<NodeId> = (0..2)
                .map(|i| {
                    t.add_node(
                        format!("ToR{}", pod * 2 + i),
                        Tier::ToR,
                        Some(pod),
                        DeviceKind::Tofino,
                    )
                })
                .collect();
            for (i, agg) in aggs.iter().enumerate() {
                for j in 0..2 {
                    t.add_link(*agg, cores[i * 2 + j]);
                }
            }
            for tor in &tors {
                for agg in &aggs {
                    t.add_link(*tor, *agg);
                }
            }
            for (i, tor) in tors.iter().enumerate() {
                let suffix = if i == 0 { "a" } else { "b" };
                let server = t.add_node(
                    format!("pod{pod}{suffix}"),
                    Tier::Server,
                    Some(pod),
                    DeviceKind::Server,
                );
                // NIC placement per Fig. 11: NFP NICs in pods 0 and 1,
                // FPGA NICs in front of ToR2/ToR3 (pod 1).
                let nic_kind = match pod {
                    0 => Some(DeviceKind::NfpSmartNic),
                    1 => Some(DeviceKind::FpgaSmartNic),
                    _ => None,
                };
                match nic_kind {
                    Some(kind) => {
                        let nic =
                            t.add_node(format!("nic_pod{pod}{suffix}"), Tier::Nic, Some(pod), kind);
                        t.add_link(*tor, nic);
                        t.add_link(nic, server);
                    }
                    None => {
                        t.add_link(*tor, server);
                    }
                }
            }
            // bypass FPGA accelerators on the pod-2 aggregation switches
            if pod == 2 {
                for agg in &aggs {
                    t.attach_bypass(*agg, DeviceKind::FpgaAccelerator);
                }
            }
        }
        t
    }

    /// The Fig. 11 topology with every switch replaced by a Tofino, as used for
    /// the multi-user placement study of Table 3 ("all devices are assumed to
    /// be Tofino switches").
    pub fn emulation_topology_all_tofino() -> Topology {
        let mut t = Topology::emulation_topology();
        for id in 0..t.len() {
            let node = &mut t.nodes[id];
            if node.tier.is_network_device() && node.tier != Tier::Nic {
                node.kind = DeviceKind::Tofino;
                node.bypass = None;
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_topology_shape() {
        let t = Topology::chain(4, DeviceKind::Tofino);
        assert_eq!(t.servers().len(), 2);
        assert_eq!(t.programmable_devices().len(), 4);
        assert_eq!(t.links().len(), 5);
        assert!(t.find("SW0").is_some());
        assert!(t.find("SW4").is_none());
    }

    #[test]
    fn fat_tree_counts() {
        let k = 4;
        let t = Topology::device_equal_fat_tree(k, DeviceKind::Tofino);
        let half = k / 2;
        let n_core = half * half;
        let n_agg = k * half;
        let n_tor = k * half;
        let n_srv = k * half * half;
        assert_eq!(t.nodes().iter().filter(|n| n.tier == Tier::Core).count(), n_core);
        assert_eq!(t.nodes().iter().filter(|n| n.tier == Tier::Agg).count(), n_agg);
        assert_eq!(t.nodes().iter().filter(|n| n.tier == Tier::ToR).count(), n_tor);
        assert_eq!(t.servers().len(), n_srv);
        assert_eq!(t.pods(), vec![0, 1, 2, 3]);
        // every ToR has half aggs + half servers as neighbors
        let tor = t.find("ToR0").unwrap();
        assert_eq!(t.neighbors(tor).len(), k);
    }

    #[test]
    #[should_panic(expected = "even number")]
    fn odd_fat_tree_rejected() {
        Topology::device_equal_fat_tree(3, DeviceKind::Tofino);
    }

    #[test]
    fn spine_leaf_counts() {
        let t = Topology::spine_leaf(4, 6, 8, DeviceKind::Trident4);
        assert_eq!(t.nodes().iter().filter(|n| n.tier == Tier::Core).count(), 4);
        assert_eq!(t.nodes().iter().filter(|n| n.tier == Tier::ToR).count(), 6);
        assert_eq!(t.servers().len(), 48);
        // each leaf connects to all spines
        let leaf = t.find("Leaf0").unwrap();
        let spine_neighbors =
            t.neighbors(leaf).iter().filter(|n| t.node(**n).tier == Tier::Core).count();
        assert_eq!(spine_neighbors, 4);
    }

    #[test]
    fn emulation_topology_matches_fig11() {
        let t = Topology::emulation_topology();
        assert_eq!(t.pods(), vec![0, 1, 2]);
        assert_eq!(t.nodes().iter().filter(|n| n.tier == Tier::Core).count(), 4);
        assert_eq!(t.nodes().iter().filter(|n| n.tier == Tier::Agg).count(), 6);
        assert_eq!(t.nodes().iter().filter(|n| n.tier == Tier::ToR).count(), 6);
        assert_eq!(t.servers().len(), 6);
        // device heterogeneity
        assert_eq!(t.node(t.find("ToR0").unwrap()).kind, DeviceKind::Tofino);
        assert_eq!(t.node(t.find("Agg0").unwrap()).kind, DeviceKind::Trident4);
        assert_eq!(t.node(t.find("Core0").unwrap()).kind, DeviceKind::Tofino2);
        // NICs: NFP in pod0, FPGA in pod1, none in pod2
        assert_eq!(t.node(t.find("nic_pod0a").unwrap()).kind, DeviceKind::NfpSmartNic);
        assert_eq!(t.node(t.find("nic_pod1b").unwrap()).kind, DeviceKind::FpgaSmartNic);
        assert!(t.find("nic_pod2a").is_none());
        // bypass FPGAs on Agg4/Agg5
        assert_eq!(t.node(t.find("Agg4").unwrap()).bypass, Some(DeviceKind::FpgaAccelerator));
        assert_eq!(t.node(t.find("Agg5").unwrap()).bypass, Some(DeviceKind::FpgaAccelerator));
        assert_eq!(t.node(t.find("Agg0").unwrap()).bypass, None);
    }

    #[test]
    fn all_tofino_variant_flattens_switch_kinds() {
        let t = Topology::emulation_topology_all_tofino();
        for node in t.nodes() {
            if node.tier.is_network_device() && node.tier != Tier::Nic {
                assert_eq!(node.kind, DeviceKind::Tofino, "{} should be Tofino", node.name);
                assert!(node.bypass.is_none());
            }
        }
    }

    #[test]
    fn health_defaults_up_and_round_trips() {
        let mut t = Topology::emulation_topology();
        let agg = t.find("Agg0").unwrap();
        assert_eq!(t.node_health(agg), NodeHealth::Up);
        assert!(t.down_nodes().is_empty());
        t.set_node_health(agg, NodeHealth::Down);
        assert_eq!(t.node_health(agg), NodeHealth::Down);
        assert!(!t.is_up(agg));
        assert_eq!(t.down_nodes(), vec!["Agg0".to_string()]);
        t.set_node_health(agg, NodeHealth::Up);
        assert!(t.is_up(agg));
        assert!(t.down_nodes().is_empty());
    }

    #[test]
    fn find_index_matches_names_after_building() {
        let t = Topology::device_equal_fat_tree(4, DeviceKind::Tofino);
        for node in t.nodes() {
            assert_eq!(t.find(&node.name), Some(node.id), "{}", node.name);
        }
        assert_eq!(t.find("nope"), None);
    }

    #[test]
    fn tier_levels_are_ordered() {
        assert!(Tier::Server.level() < Tier::Nic.level());
        assert!(Tier::Nic.level() < Tier::ToR.level());
        assert!(Tier::ToR.level() < Tier::Agg.level());
        assert!(Tier::Agg.level() < Tier::Core.level());
        assert!(!Tier::Server.is_network_device());
        assert!(Tier::Nic.is_network_device());
        assert_eq!(Tier::Agg.to_string(), "agg");
    }
}
