//! The tenant-churn scenario: a provider's arrival queue sustained against
//! a live serving engine.
//!
//! A long sequence of tenants (1000 by default) arrives one at a time,
//! cycling through a small pool of program *shapes* (KVS, MLAgg, CMS with
//! varied parameters) under fresh tenant names — exactly the multi-tenant
//! regime the placement memo is built for: after the pool's first lap every
//! segment-allocation subproblem is answered from the cache, so the steady
//! state solves far faster than the opening arrivals.
//!
//! The service runs with a [`MaxTenants`] resident cap, so the scenario
//! continuously exercises the *reactive admission pipeline*: once the house
//! is full, arrivals are refused and parked in the retry queue
//! ([`ClickIncService::deploy_or_queue`]); after a few refusals a batch of
//! the oldest residents departs, and each removal's auto-drain admits the
//! highest-priority waiter into the freed slot.  Every direct admission's
//! end-to-end latency (plan + gate + commit + engine mirror) is recorded;
//! the report carries the p50/p99 and the solve-cache counters, and the
//! runtime bench gates the warm-over-cold speedup on top.
//!
//! Periodically, a freshly admitted KVS tenant also serves a burst of
//! requests through the sharded engine — churn is measured *while traffic
//! flows*, not against an idle control plane.

use clickinc::{ClickIncError, ClickIncService, MaxTenants, ServiceRequest};
use clickinc_ir::Value;
use clickinc_lang::templates::{
    count_min_sketch, kvs_template, mlagg_template, KvsParams, MlAggParams,
};
use clickinc_runtime::workload::{KvsWorkload, KvsWorkloadConfig};
use clickinc_runtime::EngineConfig;
use clickinc_topology::Topology;
use std::collections::{BTreeSet, VecDeque};
use std::time::Instant;

/// Sizing of the churn scenario.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Total tenant arrivals over the scenario's lifetime.
    pub tenants: usize,
    /// Resident cap: the admission policy's [`MaxTenants`] limit.  The
    /// population fills to the cap, hovers there, and churns through it for
    /// the rest of the run.
    pub resident_cap: usize,
    /// After this many consecutive refusals, a departure batch frees slots
    /// (and the auto-drain admits waiters into them).
    pub purge_after_rejections: usize,
    /// Oldest residents departing per purge.
    pub purge_batch: usize,
    /// Number of distinct program shapes the arrivals cycle through.
    /// Smaller pools mean more shape reuse and a hotter placement memo.
    pub shape_pool: usize,
    /// Arrival priorities cycle `0..priority_levels`; the retry queue
    /// drains the highest first.
    pub priority_levels: u8,
    /// Engine shard worker threads.
    pub shards: usize,
    /// Serve a KVS burst through the engine every this many admissions
    /// (0 disables serving; the scenario then measures the control plane
    /// alone).
    pub serve_every: usize,
    /// Requests per serving burst.
    pub burst_requests: usize,
    /// When set, the segment memo is disabled for the whole run — every
    /// solve pays the full dynamic program, like the pre-memo solver.  The
    /// runtime bench runs the scenario warm and cold and gates the
    /// quotient.
    pub cold_solves: bool,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            tenants: 1000,
            resident_cap: 10,
            purge_after_rejections: 3,
            purge_batch: 4,
            shape_pool: 6,
            priority_levels: 4,
            shards: 2,
            serve_every: 50,
            burst_requests: 512,
            cold_solves: false,
            seed: 23,
        }
    }
}

/// What a churn run leaves behind.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Tenant arrivals offered.
    pub arrivals: usize,
    /// Arrivals admitted on first contact.
    pub admitted_directly: usize,
    /// Arrivals refused by the resident cap, parked, and admitted later by
    /// a departure's queue drain.
    pub admitted_from_queue: usize,
    /// Departures (purge-batch removals of the oldest residents).
    pub departures: usize,
    /// Arrivals that failed outright (infeasible placement on the crowded
    /// network, …) — not admission refusals, so never queued.
    pub failed: usize,
    /// Requests still waiting in the retry queue when the run ended.
    pub left_queued: usize,
    /// Median direct-admission end-to-end latency (plan + gate + commit +
    /// engine mirror) in milliseconds.
    pub admit_p50_ms: f64,
    /// 99th-percentile direct-admission latency in milliseconds.
    pub admit_p99_ms: f64,
    /// Mean direct-admission latency in milliseconds.
    pub admit_mean_ms: f64,
    /// Segment-memo hits across the whole run.
    pub solve_cache_hits: u64,
    /// Segment-memo misses across the whole run.
    pub solve_cache_misses: u64,
    /// `hits / (hits + misses)` of the segment memo.
    pub solve_cache_hit_ratio: f64,
    /// Packets served by the periodic KVS bursts while the churn ran.
    pub packets_served: u64,
}

/// Nearest-rank percentile over an ascending-sorted sample.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// The arrival's request: shape `i % shape_pool`, fresh tenant name, cycling
/// priority.  Parameters vary *per shape slot* (not per tenant), so tenants
/// sharing a slot share a canonical program shape — the memo's unit of reuse.
fn churn_request(i: usize, config: &ChurnConfig) -> ServiceRequest {
    let slot = i % config.shape_pool.max(1);
    let user = format!("churn{i}");
    let builder = ServiceRequest::builder(&user);
    let builder = match slot % 3 {
        0 => builder
            .template(kvs_template(
                &user,
                KvsParams { cache_depth: 1000 + 500 * (slot as u32 / 3), ..Default::default() },
            ))
            .from_("pod0a"),
        1 => builder
            .template(mlagg_template(
                &user,
                MlAggParams {
                    dims: 16 + 8 * (slot as u32 / 3),
                    num_aggregators: 512,
                    ..Default::default()
                },
            ))
            .from_("pod1a"),
        _ => builder.template(count_min_sketch(&user, 3, 512 << (slot / 3))).from_("pod0b"),
    };
    builder
        .to("pod2b")
        .priority((i % config.priority_levels.max(1) as usize) as u8)
        .build()
        .expect("churn request is well-formed")
}

/// Run the churn scenario; see the [module docs](self).
pub fn run_churn_scenario(config: &ChurnConfig) -> Result<ChurnReport, ClickIncError> {
    let service = ClickIncService::with_config(
        Topology::emulation_topology_all_tofino(),
        EngineConfig { shards: config.shards.max(1), batch_size: 128, ..Default::default() },
    )?;
    service.set_admission_policy(MaxTenants { max_tenants: config.resident_cap });
    if config.cold_solves {
        service.controller().set_solve_memo(false);
    }

    // residents in arrival order (oldest first = next to depart)
    let mut residents: VecDeque<String> = VecDeque::new();
    let mut known_active: BTreeSet<String> = BTreeSet::new();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(config.tenants);
    let mut admitted_directly = 0usize;
    let mut admitted_from_queue = 0usize;
    let mut departures = 0usize;
    let mut failed = 0usize;
    let mut packets_served = 0u64;
    let mut admissions_since_burst = 0usize;
    let mut rejections_since_purge = 0usize;

    for i in 0..config.tenants {
        let request = churn_request(i, config);
        let started = Instant::now();
        match service.deploy_or_queue(request) {
            Ok(handle) => {
                latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
                admitted_directly += 1;
                known_active.insert(handle.user().to_string());
                residents.push_back(handle.user().to_string());
                admissions_since_burst += 1;
                if config.serve_every > 0
                    && admissions_since_burst >= config.serve_every
                    && (i % config.shape_pool.max(1)).is_multiple_of(3)
                {
                    admissions_since_burst = 0;
                    packets_served += serve_burst(&handle, config, i as u64);
                }
            }
            Err(ClickIncError::Rejected { .. }) => {
                // parked in the retry queue; a purge's departures drain it
                rejections_since_purge += 1;
                if rejections_since_purge >= config.purge_after_rejections.max(1) {
                    rejections_since_purge = 0;
                    for _ in 0..config.purge_batch.min(residents.len()).max(1) {
                        let Some(oldest) = residents.pop_front() else { break };
                        known_active.remove(&oldest);
                        service.remove(&oldest)?;
                        departures += 1;
                        // each removal's auto-drain may admit a waiter: fold
                        // the newly active users into the resident window
                        for user in service.active_users() {
                            if known_active.insert(user.clone()) {
                                residents.push_back(user);
                                admitted_from_queue += 1;
                            }
                        }
                    }
                }
            }
            Err(_) => failed += 1,
        }
    }

    let left_queued = service.retry_queue_len();
    let cache = service.controller().solve_cache_stats();
    service.finish();

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let mean = if latencies_ms.is_empty() {
        0.0
    } else {
        latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64
    };
    Ok(ChurnReport {
        arrivals: config.tenants,
        admitted_directly,
        admitted_from_queue,
        departures,
        failed,
        left_queued,
        admit_p50_ms: percentile(&latencies_ms, 50.0),
        admit_p99_ms: percentile(&latencies_ms, 99.0),
        admit_mean_ms: mean,
        solve_cache_hits: cache.hits,
        solve_cache_misses: cache.misses,
        solve_cache_hit_ratio: cache.hit_ratio(),
        packets_served,
    })
}

/// A short KVS burst through the engine on a freshly admitted tenant: the
/// churn is sustained *while serving*, not against an idle engine.
fn serve_burst(handle: &clickinc::TenantHandle, config: &ChurnConfig, seed_offset: u64) -> u64 {
    // pre-populate a few cache lines so some requests hit in-network
    for key in 0..16i64 {
        handle.populate_table(
            &format!("{}_cache", handle.user()),
            vec![Value::Int(key)],
            vec![Value::Int(key * 31 + 7)],
        );
    }
    let mut wl = KvsWorkload::new(KvsWorkloadConfig {
        tenant: handle.user().to_string(),
        user_id: handle.numeric_id(),
        keys: 256,
        skew: 1.1,
        requests: config.burst_requests,
        rate_pps: 10_000_000.0,
        seed: config.seed + seed_offset,
    });
    let report = handle.run_workload(&mut wl, usize::MAX, 128);
    report.admitted as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_sustains_arrivals_departures_and_the_retry_queue() {
        let report = run_churn_scenario(&ChurnConfig {
            tenants: 60,
            resident_cap: 6,
            shape_pool: 4,
            serve_every: 5,
            burst_requests: 64,
            ..Default::default()
        })
        .expect("churn scenario runs");
        assert_eq!(report.arrivals, 60);
        assert_eq!(report.failed, 0, "every churn request places on the emulation topology");
        assert!(report.departures > 0, "the purge policy forces departures");
        assert!(report.admitted_from_queue > 0, "the retry queue admits waiters after departures");
        assert_eq!(
            report.admitted_directly + report.admitted_from_queue + report.left_queued,
            60,
            "every arrival is admitted (directly or from the queue) or still waiting"
        );
        assert!(report.admit_p99_ms >= report.admit_p50_ms);
        assert!(report.solve_cache_hits > 0, "shape reuse must hit the memo");
        assert!(report.packets_served > 0, "the engine served traffic during the churn");
    }

    #[test]
    fn cold_churn_never_touches_the_memo() {
        let report = run_churn_scenario(&ChurnConfig {
            tenants: 10,
            resident_cap: 4,
            shape_pool: 4,
            serve_every: 0,
            cold_solves: true,
            ..Default::default()
        })
        .expect("cold churn runs");
        assert_eq!(report.arrivals, 10);
        assert_eq!(report.failed, 0);
        assert!(report.departures > 0);
        assert_eq!(report.solve_cache_hits, 0, "cold mode must bypass the memo entirely");
        assert_eq!(report.solve_cache_misses, 0, "cold mode must bypass the memo entirely");
    }
}
