//! Cross-crate property tests on placement invariants: whatever the program and
//! topology, a plan produced by the DP respects the constraint system and the
//! equivalence-class reduction does not change feasibility.

use clickinc_blockdag::{build_block_dag, BlockConfig};
use clickinc_device::DeviceKind;
use clickinc_frontend::compile_source;
use clickinc_lang::templates::{
    dqacc_template, kvs_template, mlagg_template, DqAccParams, KvsParams, MlAggParams,
};
use clickinc_placement::{place, PlacementConfig, PlacementNetwork, ResourceLedger};
use clickinc_topology::{reduce_for_traffic, Topology};
use proptest::prelude::*;

fn template_source(which: u8, size: u32) -> (String, String) {
    match which % 3 {
        0 => (
            "kvs".to_string(),
            kvs_template("kvs", KvsParams { cache_depth: 500 + size, ..Default::default() }).source,
        ),
        1 => (
            "mlagg".to_string(),
            mlagg_template(
                "mlagg",
                MlAggParams {
                    dims: 4 + (size % 12),
                    num_aggregators: 256 + size,
                    ..Default::default()
                },
            )
            .source,
        ),
        _ => (
            "dqacc".to_string(),
            dqacc_template("dqacc", DqAccParams { depth: 500 + size, ways: 2 + (size % 3) }).source,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any template, any parameterization, any chain length: if the DP returns a
    /// plan, the plan passes every structural check (coverage, capabilities,
    /// resources, block/instruction consistency).
    #[test]
    fn plans_always_satisfy_the_constraint_system(which in 0u8..3, size in 0u32..4000, devices in 1usize..5) {
        let (name, source) = template_source(which, size);
        let ir = compile_source(&name, &source).unwrap();
        let dag = build_block_dag(&ir, &BlockConfig::default());
        let topo = Topology::chain(devices, DeviceKind::Tofino);
        let servers = topo.servers();
        let reduced = reduce_for_traffic(&topo, &[servers[0]], servers[1], &[]);
        let net = PlacementNetwork::from_reduced(&topo, &reduced, &ResourceLedger::new());
        if let Ok(plan) = place(&ir, &dag, &net, &PlacementConfig::default()) {
            plan.assert_valid(&ir, &dag, &net);
            prop_assert!(plan.gain <= 0.5 + 1e-9);
            prop_assert!(plan.resource_cost >= 0.0);
        }
    }

    /// Feasibility on a fat-tree is monotone in device capability: if a program
    /// places on an all-Tofino fat-tree, it also places when every switch is the
    /// larger Tofino2.
    #[test]
    fn bigger_devices_never_hurt_feasibility(which in 0u8..3, size in 0u32..2000) {
        let (name, source) = template_source(which, size);
        let ir = compile_source(&name, &source).unwrap();
        let dag = build_block_dag(&ir, &BlockConfig::default());
        let mk_net = |kind: DeviceKind| {
            let topo = Topology::device_equal_fat_tree(4, kind);
            let s0 = topo.find("pod0_s0").unwrap();
            let dst = topo.find("pod2_s0").unwrap();
            let reduced = reduce_for_traffic(&topo, &[s0], dst, &[]);
            PlacementNetwork::from_reduced(&topo, &reduced, &ResourceLedger::new())
        };
        let small = place(&ir, &dag, &mk_net(DeviceKind::Tofino), &PlacementConfig::default());
        let big = place(&ir, &dag, &mk_net(DeviceKind::Tofino2), &PlacementConfig::default());
        if small.is_ok() {
            prop_assert!(big.is_ok(), "upgrade to Tofino2 must not break feasibility");
        }
    }
}
