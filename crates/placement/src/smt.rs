//! SMT-style exhaustive placement baseline (the comparator of Table 4 / Fig. 14).
//!
//! Prior work (Lyra) encodes placement as an SMT problem over per-instruction
//! device/stage assignment variables and hands it to Z3.  The defining property
//! for the paper's comparison is not Z3 itself but the *search structure*: the
//! solver explores the full assignment space, whose size is
//! `O((M·S)^N)` for `M` devices, `S` stages and `N` instructions, instead of
//! exploiting the sequential-path structure the way the DP does.  This module
//! reproduces that behaviour with a chronological backtracking search over
//! block-to-device assignments combined with exhaustive per-device stage
//! allocation, under the identical constraint set (capabilities, per-stage
//! resources, dependency monotonicity along the chain).  Its runtime grows
//! exponentially with the device count (Fig. 14c) while its solution quality
//! matches the DP (Table 4), exactly the two properties the evaluation relies
//! on.
//!
//! The search only supports single-path networks (a chain), mirroring the
//! paper's observation that "the SMT solver is unable to handle a multi-path
//! topology in an acceptable time".

use crate::intra::allocate_stages;
use crate::network::{PlacementDevice, PlacementNetwork};
use crate::objective::{cut_costs, Weights};
use crate::plan::{Assignment, PlacementError, PlacementPlan};
use clickinc_blockdag::{BlockDag, BlockId};
use clickinc_ir::IrProgram;
use std::time::{Duration, Instant};

/// Configuration of the exhaustive search.
#[derive(Debug, Clone)]
pub struct SmtConfig {
    /// Objective weights (set equal to the DP's for a fair comparison).
    pub weights: Weights,
    /// Hard wall-clock limit; the best plan found so far is returned when it
    /// expires (mirrors giving Z3 a timeout).
    pub time_limit: Duration,
    /// Whether to search for the optimum under Eq. 1 or stop at the first
    /// feasible assignment (the paper's "SMT without the optimization goal").
    pub optimize: bool,
}

impl Default for SmtConfig {
    fn default() -> Self {
        SmtConfig {
            weights: Weights::default(),
            time_limit: Duration::from_secs(120),
            optimize: true,
        }
    }
}

/// Statistics of one exhaustive solve.
#[derive(Debug, Clone, Default)]
pub struct SmtStats {
    /// Number of partial assignments explored.
    pub nodes_explored: u64,
    /// Whether the search space was fully exhausted (false when the time limit
    /// fired first).
    pub exhausted: bool,
}

/// Solve placement with the exhaustive baseline; returns the plan and search
/// statistics.
pub fn place_smt(
    program: &IrProgram,
    dag: &BlockDag,
    net: &PlacementNetwork,
    config: &SmtConfig,
) -> Result<(PlacementPlan, SmtStats), PlacementError> {
    let start = Instant::now();
    if program.is_empty() || dag.is_empty() {
        return Err(PlacementError::EmptyProgram);
    }
    if net.is_empty() {
        return Err(PlacementError::EmptyNetwork);
    }
    let leaves = net.client_leaves();
    if leaves.len() > 1 {
        return Err(PlacementError::UnsupportedNetwork(
            "the SMT-style baseline only handles single-path (chain) networks".into(),
        ));
    }
    let leaf = *leaves.first().unwrap_or(&net.client_root);
    let devices: Vec<PlacementDevice> = net.path_through(leaf).into_iter().cloned().collect();

    let order = dag.blocks_by_step();
    let n = order.len();
    let cuts = cut_costs(program, dag, &order);
    let cap_norm = net.total_available().total().max(1.0);

    let mut search = Search {
        program,
        dag,
        devices: &devices,
        order: &order,
        cuts: &cuts,
        cap_norm,
        config,
        start,
        stats: SmtStats::default(),
        best: None,
        assignment: vec![0usize; n],
    };
    search.explore(0, 0);
    let stats = search.stats.clone();
    let best = search.best.take().ok_or(PlacementError::NoFeasiblePlacement)?;

    // materialize the plan from the best device assignment found
    let mut assignments = Vec::new();
    let mut resource_cost = 0.0;
    let mut comm_cost = 0.0;
    for (dev_idx, device) in devices.iter().enumerate() {
        let blocks_here: Vec<usize> = (0..n).filter(|b| best.assignment[*b] == dev_idx).collect();
        let (blocks, instrs, alloc) = if blocks_here.is_empty() {
            (Vec::new(), Vec::new(), crate::intra::StageAllocation::empty())
        } else {
            let blocks: Vec<BlockId> =
                blocks_here.iter().map(|&p| dag.blocks()[order[p]].id).collect();
            let mut instrs: Vec<usize> =
                blocks_here.iter().flat_map(|&p| dag.blocks()[order[p]].instrs.clone()).collect();
            instrs.sort_unstable();
            let alloc = allocate_stages(device, program, &instrs)
                .expect("feasible assignments re-allocate successfully");
            (blocks, instrs, alloc)
        };
        resource_cost += alloc.demand.scaled(device.replication() as f64).total() / cap_norm;
        let step_lo = blocks_here.first().copied().unwrap_or(0);
        let step_hi = blocks_here.last().map(|b| b + 1).unwrap_or(step_lo);
        if let Some(&last) = blocks_here.last() {
            if last + 1 < n {
                comm_cost += cuts[last + 1];
            }
        }
        assignments.push(Assignment {
            device: device.name.clone(),
            members: device.members.clone(),
            kind: device.kind,
            blocks,
            instrs,
            stage_of: alloc.stage_of.clone(),
            stages_used: alloc.stages_used,
            demand: alloc.demand,
            step_range: (step_lo, step_hi),
        });
    }
    let weights = config.weights;
    let gain = weights.traffic - weights.resource * resource_cost - weights.comm * comm_cost;
    Ok((
        PlacementPlan {
            program: program.name.clone(),
            assignments,
            gain,
            traffic_served: 1.0,
            resource_cost,
            comm_cost,
            weights,
            solve_time: start.elapsed(),
        },
        stats,
    ))
}

struct BestAssignment {
    assignment: Vec<usize>,
    gain: f64,
}

struct Search<'a> {
    program: &'a IrProgram,
    dag: &'a BlockDag,
    devices: &'a [PlacementDevice],
    order: &'a [usize],
    cuts: &'a [f64],
    cap_norm: f64,
    config: &'a SmtConfig,
    start: Instant,
    stats: SmtStats,
    best: Option<BestAssignment>,
    assignment: Vec<usize>,
}

impl<'a> Search<'a> {
    /// Assign block position `pos` to a device ≥ `min_device` (blocks must move
    /// monotonically along the chain) and recurse.
    fn explore(&mut self, pos: usize, min_device: usize) {
        if self.start.elapsed() > self.config.time_limit {
            return;
        }
        if pos == self.order.len() {
            self.stats.nodes_explored += 1;
            self.evaluate_complete();
            return;
        }
        for dev in min_device..self.devices.len() {
            self.stats.nodes_explored += 1;
            self.assignment[pos] = dev;
            // feasibility of the partial assignment on this device
            if self.device_feasible(dev, pos + 1) {
                self.explore(pos + 1, dev);
                if !self.config.optimize && self.best.is_some() {
                    return;
                }
            }
        }
        if min_device == 0 && pos == 0 {
            self.stats.exhausted = self.start.elapsed() <= self.config.time_limit;
        }
    }

    fn device_feasible(&self, dev: usize, upto: usize) -> bool {
        let instrs: Vec<usize> = (0..upto)
            .filter(|p| self.assignment[*p] == dev)
            .flat_map(|p| self.dag.blocks()[self.order[p]].instrs.clone())
            .collect();
        if instrs.is_empty() {
            return true;
        }
        allocate_stages(&self.devices[dev], self.program, &instrs).is_some()
    }

    fn evaluate_complete(&mut self) {
        // score the complete assignment with Eq. 1
        let n = self.order.len();
        let mut resource_cost = 0.0;
        let mut comm_cost = 0.0;
        for dev in 0..self.devices.len() {
            let instrs: Vec<usize> = (0..n)
                .filter(|p| self.assignment[*p] == dev)
                .flat_map(|p| self.dag.blocks()[self.order[p]].instrs.clone())
                .collect();
            if instrs.is_empty() {
                continue;
            }
            match allocate_stages(&self.devices[dev], self.program, &instrs) {
                Some(alloc) => {
                    resource_cost +=
                        alloc.demand.scaled(self.devices[dev].replication() as f64).total()
                            / self.cap_norm;
                }
                None => return,
            }
        }
        for p in 1..n {
            if self.assignment[p] != self.assignment[p - 1] {
                comm_cost += self.cuts[p];
            }
        }
        let w = self.config.weights;
        let gain = w.traffic - w.resource * resource_cost - w.comm * comm_cost;
        if self.best.as_ref().map(|b| gain > b.gain).unwrap_or(true) {
            self.best = Some(BestAssignment { assignment: self.assignment.clone(), gain });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{place, PlacementConfig};
    use crate::network::ResourceLedger;
    use clickinc_blockdag::{build_block_dag, BlockConfig};
    use clickinc_device::DeviceKind;
    use clickinc_frontend::compile_source;
    use clickinc_lang::templates::{dqacc_template, kvs_template, DqAccParams, KvsParams};
    use clickinc_topology::{reduce_for_traffic, Topology};

    fn chain_net(n: usize) -> PlacementNetwork {
        let topo = Topology::chain(n, DeviceKind::Tofino);
        let servers = topo.servers();
        let reduced = reduce_for_traffic(&topo, &[servers[0]], servers[1], &[]);
        PlacementNetwork::from_reduced(&topo, &reduced, &ResourceLedger::new())
    }

    #[test]
    fn smt_matches_dp_quality_on_a_small_chain() {
        let t = dqacc_template("dqacc", DqAccParams { depth: 1000, ways: 2 });
        let ir = compile_source("dqacc", &t.source).unwrap();
        let dag = build_block_dag(&ir, &BlockConfig::default());
        let net = chain_net(2);
        let dp = place(&ir, &dag, &net, &PlacementConfig::default()).unwrap();
        let (smt, stats) = place_smt(&ir, &dag, &net, &SmtConfig::default()).unwrap();
        assert!(stats.nodes_explored > 0);
        // same devices involved and comparable gains (the DP is never worse)
        assert!(dp.gain >= smt.gain - 1e-6, "dp {} vs smt {}", dp.gain, smt.gain);
        assert_eq!(dp.traffic_served, smt.traffic_served);
        smt.assert_valid(&ir, &dag, &net);
    }

    #[test]
    fn smt_explores_more_nodes_with_more_devices() {
        let t = dqacc_template("dqacc", DqAccParams { depth: 500, ways: 2 });
        let ir = compile_source("dqacc", &t.source).unwrap();
        let dag = build_block_dag(&ir, &BlockConfig::default());
        let (_, s2) = place_smt(&ir, &dag, &chain_net(2), &SmtConfig::default()).unwrap();
        let (_, s3) = place_smt(&ir, &dag, &chain_net(3), &SmtConfig::default()).unwrap();
        assert!(s3.nodes_explored > s2.nodes_explored);
    }

    #[test]
    fn smt_rejects_multipath_networks() {
        let t = kvs_template("kvs", KvsParams::default());
        let ir = compile_source("kvs", &t.source).unwrap();
        let dag = build_block_dag(&ir, &BlockConfig::default());
        let topo = Topology::device_equal_fat_tree(4, DeviceKind::Tofino);
        let s0 = topo.find("pod0_s0").unwrap();
        let s1 = topo.find("pod1_s0").unwrap();
        let dst = topo.find("pod2_s0").unwrap();
        let reduced = reduce_for_traffic(&topo, &[s0, s1], dst, &[]);
        let net = PlacementNetwork::from_reduced(&topo, &reduced, &ResourceLedger::new());
        assert!(matches!(
            place_smt(&ir, &dag, &net, &SmtConfig::default()),
            Err(PlacementError::UnsupportedNetwork(_))
        ));
    }

    #[test]
    fn first_feasible_mode_is_faster_but_not_better() {
        let t = kvs_template("kvs", KvsParams::default());
        let ir = compile_source("kvs", &t.source).unwrap();
        let dag = build_block_dag(&ir, &BlockConfig::default());
        let net = chain_net(3);
        let (opt, opt_stats) = place_smt(&ir, &dag, &net, &SmtConfig::default()).unwrap();
        let (first, first_stats) =
            place_smt(&ir, &dag, &net, &SmtConfig { optimize: false, ..Default::default() })
                .unwrap();
        assert!(first_stats.nodes_explored <= opt_stats.nodes_explored);
        assert!(opt.gain >= first.gain - 1e-9);
    }
}
