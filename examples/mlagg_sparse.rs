//! The headline application of the paper's evaluation (§7.2, Fig. 13): sparse
//! gradient aggregation deployed across heterogeneous devices, measured on the
//! emulated data plane for all five network configurations.
//!
//! Run with: `cargo run --example mlagg_sparse`

use clickinc_apps::{fig13_configurations, serve_fig13_workloads, ServingConfig};
use clickinc_emulator::run_aggregation_scenario;

fn main() {
    println!(
        "=== Sparse gradient aggregation (Fig. 7 program) across Fig. 13 configurations ===\n"
    );
    println!(
        "{:<20} {:>15} {:>18} {:>17}",
        "Configuration", "Goodput (Gbps)", "INC latency (ns)", "Server packets"
    );
    for mut case in fig13_configurations(4, 200, 32) {
        let report = run_aggregation_scenario(&mut case.setup, &case.workload);
        assert!(report.aggregation_correct, "aggregation results must be exact");
        println!(
            "{:<20} {:>15.1} {:>18.0} {:>17}",
            case.label, report.goodput_gbps, report.inc_latency_ns, report.packets_at_server
        );
    }
    println!("\nEvery configuration produced bit-exact aggregates; the goodput ordering");
    println!("matches the paper: offloading aggregation to a switch beats the DPDK and");
    println!("smartNIC-compression baselines, and combining a switch with worker-side");
    println!("smartNIC compression performs best.");

    // The default serving path: the same workloads placed by the real
    // controller through `ClickIncService` and served by the sharded engine.
    println!("\n=== Engine-served path (ClickIncService + TrafficEngine, 4 shards) ===\n");
    let report = serve_fig13_workloads(&ServingConfig::default()).expect("scenario serves");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>14} {:>10} {:>10}",
        "tenant", "packets", "hits", "drops", "goodput Gbps", "p50 ns", "p99 ns"
    );
    for stats in [&report.kvs, &report.mlagg] {
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>14.3} {:>10} {:>10}",
            stats.tenant,
            stats.packets,
            stats.hits,
            stats.drops,
            stats.goodput_gbps,
            stats.latency_p50_ns,
            stats.latency_p99_ns
        );
    }
    assert!(report.kvs.hit_ratio > 0.3, "hot keys answered in-network");
    assert!(report.mlagg.hits > 0, "aggregates completed in-network");
}
