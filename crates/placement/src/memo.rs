//! Cross-solve memoization of segment feasibility (the placement DP's hot
//! inner call).
//!
//! [`place`](crate::place) spends almost all of its time in `seg_eval`:
//! "can device `d` host blocks `[j..k)` of this program, and in which
//! stages?".  The answer is a pure function of
//!
//! * the **shape** of the program and its block DAG — instruction structure,
//!   capability classes, data dependencies, object geometries and the block
//!   partition, but *not* the tenant-specific names isolation stamps into
//!   them (two tenants instantiated from one template ask byte-identical
//!   segment questions under different names);
//! * the **device** — kind, bypass accelerator, and the exact residual
//!   capacity vector after netting the ledger;
//! * the segment bounds `(j, k)`.
//!
//! [`SolveCache`] memoizes that function across solves.  The key carries the
//! *exact* bits of every input (canonical [`shape_fingerprint`] of the
//! program + DAG, [`device_fingerprint`] over the residual-capacity vector),
//! so a hit returns precisely what recomputing would — warm-started solves
//! are bit-identical to cold ones by construction.  When a commit moves the
//! ledger of one device, only that device's fingerprint changes: re-solving
//! re-evaluates the segments of the moved device and answers every other
//! (program, device, j, k) subproblem from the cache — the incremental
//! re-solve the paper's incremental-synthesis idea asks for, applied to
//! placement.
//!
//! Objective terms (weights, capacity normalization) deliberately stay
//! *outside* the memo: they vary per solve and are cheap to recompute from
//! the memoized [`StageAllocation`].

use crate::intra::StageAllocation;
use crate::network::PlacementDevice;
use clickinc_blockdag::BlockDag;
use clickinc_ir::{Fnv, Guard, IrProgram, ObjectKind, OpCode, Operand, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shards of the memo map; keys are spread by their low bits so concurrent
/// `plan_all` workers rarely contend on one lock.
const SHARDS: usize = 16;
/// Per-shard entry cap.  A shard that fills up is cleared wholesale (the
/// entries are pure re-derivable facts, so dropping them only costs time).
const SHARD_CAPACITY: usize = 1 << 16;

/// Memo key: the exact inputs `seg_eval` consumes.  Two 64-bit digests of
/// the canonical program/DAG stream plus the device digest and the segment
/// bounds; 128 shape bits keep accidental collisions out of reach even with
/// millions of cached shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MemoKey {
    shape: u128,
    device: u64,
    j: u32,
    k: u32,
}

/// Counters of a [`SolveCache`], for observability and the bench export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveCacheStats {
    /// Segment evaluations answered from the memo.
    pub hits: u64,
    /// Segment evaluations that ran the stage allocator.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
}

impl SolveCacheStats {
    /// Hit ratio in `[0, 1]` (`0` before the first lookup).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The cross-solve segment memo; see the [module docs](self).  Shareable
/// across threads (`&SolveCache` is all a solve needs) and across epochs —
/// entries never go stale because their keys pin the exact residual
/// capacities they were computed against.
#[derive(Debug, Default)]
pub struct SolveCache {
    shards: Vec<Mutex<HashMap<MemoKey, Option<StageAllocation>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SolveCache {
    /// An empty memo.
    pub fn new() -> SolveCache {
        SolveCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &MemoKey) -> &Mutex<HashMap<MemoKey, Option<StageAllocation>>> {
        &self.shards[(key.shape as usize ^ key.device as usize) % SHARDS]
    }

    /// Answer `seg_eval`'s allocation question from the memo, or compute and
    /// remember it.  `compute` runs at most once per distinct key.
    pub(crate) fn alloc_or_compute(
        &self,
        shape: u128,
        device: u64,
        j: usize,
        k: usize,
        compute: impl FnOnce() -> Option<StageAllocation>,
    ) -> Option<StageAllocation> {
        let key = MemoKey { shape, device, j: j as u32, k: k as u32 };
        let shard = self.shard(&key);
        if let Some(cached) = shard.lock().expect("memo shard lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        // compute outside the lock so a slow allocation never serializes the
        // other workers' lookups; a racing duplicate compute is harmless
        // (both produce the identical pure result)
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        let mut map = shard.lock().expect("memo shard lock");
        if map.len() >= SHARD_CAPACITY {
            map.clear();
        }
        map.insert(key, value.clone());
        value
    }

    /// Current counters.
    pub fn stats(&self) -> SolveCacheStats {
        SolveCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().expect("memo shard lock").len()).sum(),
        }
    }

    /// Drop every entry (counters survive).  Benchmarks use this to measure
    /// a true cold solve without rebuilding the surrounding service.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("memo shard lock").clear();
        }
    }
}

/// Double-width FNV stream: every write feeds two independently-seeded
/// digests, giving a 128-bit fingerprint from the in-tree hasher.
struct WideFnv {
    a: Fnv,
    b: Fnv,
}

impl WideFnv {
    fn new() -> WideFnv {
        let mut b = Fnv::new();
        // distinct prefix decorrelates the second lane from the first
        b.write_u64(0x9e37_79b9_7f4a_7c15);
        WideFnv { a: Fnv::new(), b }
    }

    fn write_u64(&mut self, v: u64) {
        self.a.write_u64(v);
        self.b.write_u64(v);
    }

    fn finish(&self) -> u128 {
        (u128::from(self.a.finish()) << 64) | u128::from(self.b.finish())
    }
}

/// Interns names in first-occurrence order so the fingerprint is invariant
/// under the consistent renaming tenant isolation performs.
#[derive(Default)]
struct NameTable<'a> {
    ids: HashMap<&'a str, u64>,
}

impl<'a> NameTable<'a> {
    fn id(&mut self, name: &'a str) -> u64 {
        let next = self.ids.len() as u64;
        *self.ids.entry(name).or_insert(next)
    }
}

/// Canonical 128-bit fingerprint of everything `seg_eval` reads from a
/// program and its block DAG: instruction structure (opcodes, operand and
/// guard shapes, canonicalized names), object geometries, and the block
/// partition with its step order.  Tenant-specific name prefixes and literal
/// constant *values* are deliberately excluded — neither influences
/// capability classes, data dependencies or resource demand, and excluding
/// them lets every tenant stamped from one template share memo entries.
pub fn shape_fingerprint(program: &IrProgram, dag: &BlockDag, order: &[usize]) -> u128 {
    let mut h = WideFnv::new();
    let mut names = NameTable::default();
    h.write_u64(program.instructions.len() as u64);
    for instr in &program.instructions {
        hash_opcode(&mut h, &mut names, program, &instr.op);
        match &instr.guard {
            None => h.write_u64(0),
            Some(guard) => hash_guard(&mut h, &mut names, guard),
        }
    }
    // the block partition and its step order (the DP's segment universe)
    h.write_u64(dag.blocks().len() as u64);
    for &b in order {
        let block = &dag.blocks()[b];
        h.write_u64(block.step as u64);
        h.write_u64(block.instrs.len() as u64);
        for &i in &block.instrs {
            h.write_u64(i as u64);
        }
    }
    for &(a, b) in dag.edges() {
        h.write_u64(a as u64);
        h.write_u64(b as u64);
    }
    h.finish()
}

/// Digest of the device facts `seg_eval` consumes: kind, bypass model, and
/// the exact bits of the residual capacity vector.  Replication (member
/// count) rides along because the objective scales demand by it.
pub fn device_fingerprint(device: &PlacementDevice) -> u64 {
    let mut h = Fnv::new();
    h.write_str(&device.kind.to_string());
    match &device.bypass {
        None => h.write_u64(0),
        Some(b) => {
            h.write_u64(1);
            h.write_str(&b.kind.to_string());
        }
    }
    h.write_u64(device.members.len() as u64);
    for r in clickinc_ir::Resource::ALL {
        h.write_u64(device.available[r].to_bits());
    }
    h.finish()
}

fn hash_operand<'a>(h: &mut WideFnv, names: &mut NameTable<'a>, op: &'a Operand) {
    match op {
        Operand::Var(v) => {
            h.write_u64(1);
            h.write_u64(names.id(v));
        }
        Operand::Const(c) => {
            h.write_u64(2);
            // the type tag, not the value: placement feasibility and demand
            // are constant-value-independent, and excluding the value lets
            // guards carrying per-tenant literals share entries
            h.write_u64(match c {
                Value::Int(_) => 0,
                Value::Float(_) => 1,
                Value::Bool(_) => 2,
                Value::Bytes(_) => 3,
                Value::None => 4,
            });
        }
        Operand::Header(f) => {
            h.write_u64(3);
            h.write_u64(names.id(f));
        }
        Operand::Meta(m) => {
            h.write_u64(4);
            h.write_u64(names.id(m));
        }
    }
}

fn hash_operands<'a>(h: &mut WideFnv, names: &mut NameTable<'a>, ops: &'a [Operand]) {
    h.write_u64(ops.len() as u64);
    for op in ops {
        hash_operand(h, names, op);
    }
}

fn hash_guard<'a>(h: &mut WideFnv, names: &mut NameTable<'a>, guard: &'a Guard) {
    h.write_u64(1 + guard.all.len() as u64);
    for p in &guard.all {
        hash_operand(h, names, &p.lhs);
        h.write_u64(p.op as u64);
        hash_operand(h, names, &p.rhs);
    }
}

fn hash_object<'a>(
    h: &mut WideFnv,
    names: &mut NameTable<'a>,
    program: &'a IrProgram,
    object: &'a str,
) {
    h.write_u64(names.id(object));
    // geometry travels with the first reference; later references reuse the
    // id, so renaming-consistent programs stream identically
    match program.object(object).map(|decl| &decl.kind) {
        None => h.write_u64(0),
        Some(ObjectKind::Array { rows, size, width }) => {
            h.write_u64(1);
            h.write_u64(u64::from(*rows));
            h.write_u64(u64::from(*size));
            h.write_u64(u64::from(*width));
        }
        Some(ObjectKind::Table { match_kind, key_width, value_width, depth, stateful }) => {
            h.write_u64(2);
            h.write_u64(*match_kind as u64);
            h.write_u64(u64::from(*key_width));
            h.write_u64(u64::from(*value_width));
            h.write_u64(u64::from(*depth));
            h.write_u64(u64::from(*stateful));
        }
        Some(ObjectKind::Sketch { kind, rows, cols, width }) => {
            h.write_u64(3);
            h.write_u64(*kind as u64);
            h.write_u64(u64::from(*rows));
            h.write_u64(u64::from(*cols));
            h.write_u64(u64::from(*width));
        }
        Some(ObjectKind::Seq { size, width }) => {
            h.write_u64(4);
            h.write_u64(u64::from(*size));
            h.write_u64(u64::from(*width));
        }
        Some(ObjectKind::Hash { algo, modulus }) => {
            h.write_u64(5);
            h.write_u64(*algo as u64);
            h.write_u64(modulus.map(|m| u64::from(m) + 1).unwrap_or(0));
        }
        Some(ObjectKind::Crypto { algo }) => {
            h.write_u64(6);
            h.write_u64(*algo as u64);
        }
    }
}

fn hash_opcode<'a>(
    h: &mut WideFnv,
    names: &mut NameTable<'a>,
    program: &'a IrProgram,
    op: &'a OpCode,
) {
    match op {
        OpCode::Assign { dest, src } => {
            h.write_u64(1);
            h.write_u64(names.id(dest));
            hash_operand(h, names, src);
        }
        OpCode::Alu { dest, op, lhs, rhs, float } => {
            h.write_u64(2);
            h.write_u64(names.id(dest));
            h.write_u64(*op as u64);
            hash_operand(h, names, lhs);
            hash_operand(h, names, rhs);
            h.write_u64(u64::from(*float));
        }
        OpCode::Cmp { dest, op, lhs, rhs } => {
            h.write_u64(3);
            h.write_u64(names.id(dest));
            h.write_u64(*op as u64);
            hash_operand(h, names, lhs);
            hash_operand(h, names, rhs);
        }
        OpCode::Hash { dest, object, keys } => {
            h.write_u64(4);
            h.write_u64(names.id(dest));
            hash_object(h, names, program, object);
            hash_operands(h, names, keys);
        }
        OpCode::ReadState { dest, object, index } => {
            h.write_u64(5);
            h.write_u64(names.id(dest));
            hash_object(h, names, program, object);
            hash_operands(h, names, index);
        }
        OpCode::WriteState { object, index, value } => {
            h.write_u64(6);
            hash_object(h, names, program, object);
            hash_operands(h, names, index);
            hash_operands(h, names, value);
        }
        OpCode::CountState { dest, object, index, delta } => {
            h.write_u64(7);
            match dest {
                None => h.write_u64(0),
                Some(d) => {
                    h.write_u64(1);
                    h.write_u64(names.id(d));
                }
            }
            hash_object(h, names, program, object);
            hash_operands(h, names, index);
            hash_operand(h, names, delta);
        }
        OpCode::ClearState { object } => {
            h.write_u64(8);
            hash_object(h, names, program, object);
        }
        OpCode::DeleteState { object, index } => {
            h.write_u64(9);
            hash_object(h, names, program, object);
            hash_operands(h, names, index);
        }
        OpCode::Drop => h.write_u64(10),
        OpCode::Forward => h.write_u64(11),
        OpCode::Back { updates } => {
            h.write_u64(12);
            h.write_u64(updates.len() as u64);
            for (field, value) in updates {
                h.write_u64(names.id(field));
                hash_operand(h, names, value);
            }
        }
        OpCode::Mirror { updates } => {
            h.write_u64(13);
            h.write_u64(updates.len() as u64);
            for (field, value) in updates {
                h.write_u64(names.id(field));
                hash_operand(h, names, value);
            }
        }
        OpCode::Multicast { group } => {
            h.write_u64(14);
            hash_operand(h, names, group);
        }
        OpCode::CopyTo { target, values } => {
            h.write_u64(15);
            h.write_u64(names.id(target));
            hash_operands(h, names, values);
        }
        OpCode::SetHeader { field, value } => {
            h.write_u64(16);
            h.write_u64(names.id(field));
            hash_operand(h, names, value);
        }
        OpCode::Crypto { dest, object, input, encrypt } => {
            h.write_u64(17);
            h.write_u64(names.id(dest));
            hash_object(h, names, program, object);
            hash_operand(h, names, input);
            h.write_u64(u64::from(*encrypt));
        }
        OpCode::RandInt { dest, bound } => {
            h.write_u64(18);
            h.write_u64(names.id(dest));
            hash_operand(h, names, bound);
        }
        OpCode::Checksum { dest, inputs } => {
            h.write_u64(19);
            h.write_u64(names.id(dest));
            hash_operands(h, names, inputs);
        }
        OpCode::NoOp => h.write_u64(20),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ResourceLedger;
    use crate::PlacementNetwork;
    use clickinc_blockdag::{build_block_dag, BlockConfig};
    use clickinc_frontend::compile_source;
    use clickinc_lang::templates::{kvs_template, KvsParams};
    use clickinc_topology::{reduce_for_traffic, Topology};

    fn shape_of(user: &str) -> u128 {
        let t = kvs_template(user, KvsParams { cache_depth: 1000, ..Default::default() });
        let ir = compile_source(user, &t.source).unwrap();
        let dag = build_block_dag(&ir, &BlockConfig::default());
        let order = dag.blocks_by_step();
        shape_fingerprint(&ir, &dag, &order)
    }

    #[test]
    fn renamed_tenants_share_a_shape() {
        assert_eq!(shape_of("alpha"), shape_of("beta"), "names are canonicalized away");
    }

    #[test]
    fn different_geometries_do_not_share_a_shape() {
        let shape = |depth| {
            let t = kvs_template("u", KvsParams { cache_depth: depth, ..Default::default() });
            let ir = compile_source("u", &t.source).unwrap();
            let dag = build_block_dag(&ir, &BlockConfig::default());
            let order = dag.blocks_by_step();
            shape_fingerprint(&ir, &dag, &order)
        };
        assert_ne!(shape(1000), shape(2000), "object depth changes demand, so the key must move");
    }

    #[test]
    fn device_fingerprint_tracks_residual_capacity() {
        let topo = Topology::chain(1, clickinc_device::DeviceKind::Tofino);
        let servers = topo.servers();
        let reduced = reduce_for_traffic(&topo, &[servers[0]], servers[1], &[]);
        let mut ledger = ResourceLedger::new();
        let before = PlacementNetwork::from_reduced(&topo, &reduced, &ledger);
        ledger.consume(
            topo.find("SW0").unwrap(),
            clickinc_ir::ResourceVector::zero().with(clickinc_ir::Resource::SramBlocks, 1.0),
        );
        let after = PlacementNetwork::from_reduced(&topo, &reduced, &ledger);
        assert_ne!(
            device_fingerprint(&before.client[0]),
            device_fingerprint(&after.client[0]),
            "a ledger move must change the device key"
        );
        assert_eq!(
            device_fingerprint(&before.client[0]),
            device_fingerprint(&before.client[0].clone())
        );
    }

    #[test]
    fn memo_returns_the_computed_value_and_counts() {
        let cache = SolveCache::new();
        let alloc = StageAllocation::empty();
        let first = cache.alloc_or_compute(1, 2, 0, 3, || Some(alloc.clone()));
        assert_eq!(first, Some(alloc.clone()));
        let second = cache.alloc_or_compute(1, 2, 0, 3, || panic!("must hit the memo"));
        assert_eq!(second, Some(alloc));
        let miss = cache.alloc_or_compute(1, 3, 0, 3, || None);
        assert_eq!(miss, None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
        assert!((stats.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }
}
