//! Topology simplification by device equivalence classes (paper §5.3, Fig. 9,
//! Appendix B.2).
//!
//! For a given application traffic pattern (a set of client/source servers and
//! one destination server group), the fat-tree collapses into:
//!
//! * a **client-side sub-tree** whose leaves are the first programmable devices
//!   in front of the sources (smartNICs where present, otherwise the ToRs),
//!   whose internal nodes are per-pod ToR / Agg equivalence classes, and whose
//!   root is the core-switch equivalence class;
//! * a **server-side chain** from the destination pod's Agg EC down through the
//!   destination ToR (and NIC, if any) — the devices every packet must traverse
//!   after the root regardless of which path it took upward.
//!
//! Devices merged into one EC are physically interchangeable for placement
//! (Appendix B.2 proves any non-random allocator assigns them identical
//! snippets), so the placement DP only has to consider one representative per
//! EC — this is what lets it scale to ~1,000 switches.

use crate::graph::{NodeId, Tier, Topology};
use crate::paths::enumerate_paths;
use clickinc_device::DeviceKind;
use std::collections::BTreeMap;

/// One equivalence class of devices in the reduced topology.
#[derive(Debug, Clone, PartialEq)]
pub struct ReducedNode {
    /// The physical devices merged into this class.
    pub members: Vec<NodeId>,
    /// Device family of the class (all members share it).
    pub kind: DeviceKind,
    /// Bypass accelerator attached to the members, if any.
    pub bypass: Option<DeviceKind>,
    /// Tier of the class.
    pub tier: Tier,
    /// Pod of the class (None for the core EC).
    pub pod: Option<usize>,
    /// Children in the client-side sub-tree (indices into the same arena),
    /// pointing towards the traffic sources.  Empty for leaves and for every
    /// node of the server-side chain.
    pub children: Vec<usize>,
    /// Fraction of the application's total traffic that traverses this class.
    pub traffic: f64,
}

impl ReducedNode {
    /// A printable label, e.g. `agg[Agg0,Agg1]`.
    pub fn label(&self, topo: &Topology) -> String {
        let names: Vec<&str> = self.members.iter().map(|m| topo.node(*m).name.as_str()).collect();
        format!("{}[{}]", self.tier, names.join(","))
    }
}

/// The reduced placement topology: client-side sub-tree + server-side chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ReducedTopology {
    /// Arena of client-side EC nodes.
    pub client: Vec<ReducedNode>,
    /// Index of the client-side root (the highest tier traversed — the core EC
    /// for inter-pod traffic).
    pub client_root: usize,
    /// Server-side chain, ordered in the packet's travel direction
    /// (first hop after the root first).
    pub server: Vec<ReducedNode>,
}

impl ReducedTopology {
    /// Total number of EC nodes.
    pub fn len(&self) -> usize {
        self.client.len() + self.server.len()
    }

    /// Whether the reduction produced no placeable device at all.
    pub fn is_empty(&self) -> bool {
        self.client.is_empty() && self.server.is_empty()
    }

    /// All EC nodes (client sub-tree first, then the server chain).
    pub fn all_nodes(&self) -> impl Iterator<Item = &ReducedNode> {
        self.client.iter().chain(self.server.iter())
    }

    /// Total number of physical devices represented.
    pub fn physical_device_count(&self) -> usize {
        self.all_nodes().map(|n| n.members.len()).sum()
    }

    /// Leaves of the client sub-tree (the ECs nearest the traffic sources).
    pub fn client_leaves(&self) -> Vec<usize> {
        (0..self.client.len()).filter(|i| self.client[*i].children.is_empty()).collect()
    }
}

/// Reduce the topology for one application's traffic.
///
/// * `sources` — the client/worker servers generating requests;
/// * `dst` — the destination server (e.g. the KVS server or the parameter
///   server);
/// * `weights` — optional per-source traffic weights (paper profile "traffic
///   frequency"); unweighted sources share traffic equally.
pub fn reduce_for_traffic(
    topo: &Topology,
    sources: &[NodeId],
    dst: NodeId,
    weights: &[f64],
) -> ReducedTopology {
    assert!(!sources.is_empty(), "at least one traffic source is required");
    let total_weight: f64 =
        if weights.len() == sources.len() { weights.iter().sum() } else { sources.len() as f64 };
    let weight_of = |i: usize| -> f64 {
        let w = if weights.len() == sources.len() { weights[i] } else { 1.0 };
        w / total_weight
    };

    // For every source, take one representative up-down path to the destination
    // and record which devices sit on the client side (before the peak) and the
    // server side (peak and after), per tier and pod.  All equal-cost siblings
    // of a device at the same (tier, pod) join the same EC.
    // EC key: (distance from the path peak, tier, pod).  The distance term
    // keeps sequential same-tier devices (e.g. a switch chain) distinct while
    // still merging the parallel equal-cost siblings of a fat-tree.
    type EcKey = (usize, Tier, Option<usize>);
    #[derive(Default)]
    struct EcAccumulator {
        members: BTreeMap<EcKey, Vec<NodeId>>,
        traffic: BTreeMap<EcKey, f64>,
    }
    let mut client_acc = EcAccumulator::default();
    let mut server_order: Vec<EcKey> = Vec::new();
    let mut server_acc = EcAccumulator::default();

    for (i, &src) in sources.iter().enumerate() {
        let paths = enumerate_paths(topo, src, dst);
        if paths.is_empty() {
            continue;
        }
        let share = weight_of(i);
        // the union of devices across all equal-cost paths of this source
        let mut client_seen: BTreeMap<EcKey, Vec<NodeId>> = BTreeMap::new();
        let mut server_seen: Vec<(EcKey, Vec<NodeId>)> = Vec::new();
        let reference = &paths[0];
        let peak_level = reference.iter().map(|n| topo.node(*n).tier.level()).max().unwrap_or(0);
        for path in &paths {
            let peak_pos =
                path.iter().position(|n| topo.node(*n).tier.level() == peak_level).unwrap_or(0);
            for (pos, node_id) in path.iter().enumerate() {
                let node = topo.node(*node_id);
                if !node.tier.is_network_device() {
                    continue;
                }
                let dist = pos.abs_diff(peak_pos);
                let key: EcKey = (dist, node.tier, node.pod);
                if pos <= peak_pos {
                    let entry = client_seen.entry(key).or_default();
                    if !entry.contains(node_id) {
                        entry.push(*node_id);
                    }
                } else {
                    match server_seen.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, v)) => {
                            if !v.contains(node_id) {
                                v.push(*node_id);
                            }
                        }
                        None => server_seen.push((key, vec![*node_id])),
                    }
                }
            }
        }
        for (key, members) in client_seen {
            let slot = client_acc.members.entry(key).or_default();
            for m in members {
                if !slot.contains(&m) {
                    slot.push(m);
                }
            }
            *client_acc.traffic.entry(key).or_insert(0.0) += share;
        }
        for (key, members) in server_seen {
            if !server_order.contains(&key) {
                server_order.push(key);
            }
            let slot = server_acc.members.entry(key).or_default();
            for m in members {
                if !slot.contains(&m) {
                    slot.push(m);
                }
            }
            *server_acc.traffic.entry(key).or_insert(0.0) += share;
        }
    }

    // ---- build the client-side sub-tree arena -------------------------------
    let make_node =
        |topo: &Topology, members: &[NodeId], tier: Tier, pod: Option<usize>, traffic: f64| {
            let first = topo.node(members[0]);
            ReducedNode {
                members: members.to_vec(),
                kind: first.kind,
                bypass: first.bypass,
                tier,
                pod,
                children: Vec::new(),
                traffic: traffic.min(1.0),
            }
        };

    let mut client: Vec<ReducedNode> = Vec::new();
    let mut index_of: BTreeMap<EcKey, usize> = BTreeMap::new();
    // create nodes farthest-from-peak first so children exist before parents
    let mut keys: Vec<EcKey> = client_acc.members.keys().copied().collect();
    keys.sort_by_key(|(dist, tier, pod)| {
        (std::cmp::Reverse(*dist), tier.level(), pod.unwrap_or(usize::MAX))
    });
    for key in &keys {
        let members = &client_acc.members[key];
        let traffic = client_acc.traffic[key];
        let node = make_node(topo, members, key.1, key.2, traffic);
        index_of.insert(*key, client.len());
        client.push(node);
    }
    // wire children: a node's parent is the nearest EC strictly closer to the
    // peak within the same pod, or a pod-less EC (the core) above it.
    for key in &keys {
        let idx = index_of[key];
        let parent_key = keys
            .iter()
            .filter(|(d, _, p)| *d < key.0 && (*p == key.2 || p.is_none() || key.2.is_none()))
            .max_by_key(|(d, _, _)| *d)
            .copied();
        if let Some(pk) = parent_key {
            let pidx = index_of[&pk];
            if pidx != idx && !client[pidx].children.contains(&idx) {
                client[pidx].children.push(idx);
            }
        }
    }
    // the root is the EC at the path peak (distance 0)
    let client_root =
        keys.iter().min_by_key(|(dist, _, _)| *dist).map(|k| index_of[k]).unwrap_or(0);

    // ---- server-side chain ----------------------------------------------------
    server_order.sort_by_key(|(dist, _, _)| *dist);
    let server: Vec<ReducedNode> = server_order
        .iter()
        .map(|key| make_node(topo, &server_acc.members[key], key.1, key.2, server_acc.traffic[key]))
        .collect();

    ReducedTopology { client, client_root, server }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_source_single_pod_reduces_to_a_chain() {
        let topo = Topology::device_equal_fat_tree(4, DeviceKind::Tofino);
        let src = topo.find("pod0_s0").unwrap();
        let dst = topo.find("pod2_s0").unwrap();
        let reduced = reduce_for_traffic(&topo, &[src], dst, &[]);
        // client side: ToR EC (1 device), Agg EC (2 devices), Core EC (root)
        assert_eq!(reduced.client.len(), 3);
        let root = &reduced.client[reduced.client_root];
        assert_eq!(root.tier, Tier::Core);
        assert!((root.traffic - 1.0).abs() < 1e-9);
        // server side: Agg EC and ToR EC of the destination pod
        assert_eq!(reduced.server.len(), 2);
        assert_eq!(reduced.server[0].tier, Tier::Agg);
        assert_eq!(reduced.server[1].tier, Tier::ToR);
        // EC membership counts: the two pod-0 aggs merge, the dst ToR is alone
        let agg_ec = reduced.client.iter().find(|n| n.tier == Tier::Agg).unwrap();
        assert_eq!(agg_ec.members.len(), 2);
        assert_eq!(reduced.server[1].members.len(), 1);
    }

    #[test]
    fn multiple_pods_create_parallel_branches() {
        let topo = Topology::device_equal_fat_tree(4, DeviceKind::Tofino);
        let s0 = topo.find("pod0_s0").unwrap();
        let s1 = topo.find("pod1_s0").unwrap();
        let dst = topo.find("pod2_s0").unwrap();
        let reduced = reduce_for_traffic(&topo, &[s0, s1], dst, &[]);
        // two ToR ECs, two Agg ECs (one per source pod), one core EC
        let tors = reduced.client.iter().filter(|n| n.tier == Tier::ToR).count();
        let aggs = reduced.client.iter().filter(|n| n.tier == Tier::Agg).count();
        let cores = reduced.client.iter().filter(|n| n.tier == Tier::Core).count();
        assert_eq!((tors, aggs, cores), (2, 2, 1));
        // the root has both agg branches as children
        let root = &reduced.client[reduced.client_root];
        assert_eq!(root.children.len(), 2);
        // each branch carries half of the traffic
        for n in reduced.client.iter().filter(|n| n.tier == Tier::Agg) {
            assert!((n.traffic - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn traffic_weights_are_respected() {
        let topo = Topology::device_equal_fat_tree(4, DeviceKind::Tofino);
        let s0 = topo.find("pod0_s0").unwrap();
        let s1 = topo.find("pod1_s0").unwrap();
        let dst = topo.find("pod2_s0").unwrap();
        let reduced = reduce_for_traffic(&topo, &[s0, s1], dst, &[3.0, 1.0]);
        let pod0_agg =
            reduced.client.iter().find(|n| n.tier == Tier::Agg && n.pod == Some(0)).unwrap();
        assert!((pod0_agg.traffic - 0.75).abs() < 1e-9);
    }

    #[test]
    fn same_pod_traffic_peaks_below_the_core() {
        let topo = Topology::device_equal_fat_tree(4, DeviceKind::Tofino);
        let src = topo.find("pod0_s0").unwrap();
        let dst = topo.find("pod0_s2").unwrap();
        let reduced = reduce_for_traffic(&topo, &[src], dst, &[]);
        let root = &reduced.client[reduced.client_root];
        assert_eq!(root.tier, Tier::Agg, "intra-pod traffic never reaches the core");
        assert!(reduced.client.iter().all(|n| n.tier != Tier::Core));
    }

    #[test]
    fn emulation_topology_reduction_includes_nics_and_bypass() {
        let topo = Topology::emulation_topology();
        let src = topo.find("pod0a").unwrap();
        let dst = topo.find("pod2b").unwrap();
        let reduced = reduce_for_traffic(&topo, &[src], dst, &[]);
        // the source-side NIC EC appears as a leaf
        assert!(reduced
            .client
            .iter()
            .any(|n| n.tier == Tier::Nic && n.kind == DeviceKind::NfpSmartNic));
        // destination Agg EC (pod 2) carries the bypass FPGA annotation
        let dst_agg = reduced.server.iter().find(|n| n.tier == Tier::Agg).unwrap();
        assert_eq!(dst_agg.bypass, Some(DeviceKind::FpgaAccelerator));
        assert_eq!(dst_agg.kind, DeviceKind::Trident4);
        // physical devices represented > EC count (the point of the reduction)
        assert!(reduced.physical_device_count() >= reduced.len());
    }

    #[test]
    fn leaves_are_sources_side() {
        let topo = Topology::device_equal_fat_tree(4, DeviceKind::Tofino);
        let s0 = topo.find("pod0_s0").unwrap();
        let s1 = topo.find("pod1_s0").unwrap();
        let dst = topo.find("pod3_s0").unwrap();
        let reduced = reduce_for_traffic(&topo, &[s0, s1], dst, &[]);
        let leaves = reduced.client_leaves();
        assert_eq!(leaves.len(), 2);
        for l in leaves {
            assert_eq!(reduced.client[l].tier, Tier::ToR);
        }
        assert!(!reduced.is_empty());
        assert!(reduced.len() >= 5);
    }

    #[test]
    #[should_panic(expected = "at least one traffic source")]
    fn empty_sources_rejected() {
        let topo = Topology::chain(2, DeviceKind::Tofino);
        let dst = topo.servers()[1];
        reduce_for_traffic(&topo, &[], dst, &[]);
    }

    #[test]
    fn chain_topology_reduces_to_all_switches_client_side() {
        let topo = Topology::chain(4, DeviceKind::Tofino);
        let src = topo.servers()[0];
        let dst = topo.servers()[1];
        let reduced = reduce_for_traffic(&topo, &[src], dst, &[]);
        // all four switches share tier ToR / pod 0, so they merge into one EC?
        // No: a chain is not an ECMP structure — but all four sit before the
        // destination, and the peak is the first switch; the rest are
        // "server-side".  Either way every switch must be represented.
        assert_eq!(reduced.physical_device_count(), 4);
    }
}
