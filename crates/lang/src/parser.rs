//! Recursive-descent parser for the ClickINC language.
//!
//! The grammar follows Fig. 5 of the paper, realized with Python-style surface
//! syntax: indentation-delimited blocks, `if`/`elif`/`else`, `for ... in
//! range(...)`, keyword arguments in calls, attribute access (`hdr.key`) and
//! indexing (`hdr.feat[i]`).

use crate::ast::{BinOp, BoolOp, CmpOp, Expr, Program, Stmt, UnaryOp};
use crate::error::{LangError, Span};
use crate::token::{Token, TokenKind};

/// Parse a token stream (as produced by [`crate::Lexer`]) into a [`Program`].
pub fn parse_program(tokens: &[Token]) -> Result<Program, LangError> {
    let mut parser = Parser { tokens, pos: 0 };
    let stmts = parser.parse_block_until_eof()?;
    Ok(Program { stmts })
}

/// Positional and keyword arguments of a call, as parsed.
type CallArgs = (Vec<Expr>, Vec<(String, Expr)>);

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn advance(&mut self) -> &TokenKind {
        let kind = &self.tokens[self.pos.min(self.tokens.len() - 1)].kind;
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), LangError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> LangError {
        if matches!(self.peek(), TokenKind::Eof) {
            LangError::UnexpectedEof { expected: expected.to_string() }
        } else {
            LangError::UnexpectedToken {
                found: self.peek().describe(),
                expected: expected.to_string(),
                span: self.peek_span(),
            }
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), TokenKind::Newline) {
            self.advance();
        }
    }

    fn parse_block_until_eof(&mut self) -> Result<Vec<Stmt>, LangError> {
        let mut stmts = Vec::new();
        self.skip_newlines();
        while !matches!(self.peek(), TokenKind::Eof) {
            stmts.push(self.parse_statement()?);
            self.skip_newlines();
        }
        Ok(stmts)
    }

    /// Parse an indented block: expects `Newline Indent stmt+ Dedent`.
    fn parse_block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(TokenKind::Newline, "a newline before an indented block")?;
        self.skip_newlines();
        self.expect(TokenKind::Indent, "an indented block")?;
        let mut stmts = Vec::new();
        self.skip_newlines();
        while !matches!(self.peek(), TokenKind::Dedent | TokenKind::Eof) {
            stmts.push(self.parse_statement()?);
            self.skip_newlines();
        }
        self.expect(TokenKind::Dedent, "the end of an indented block")?;
        Ok(stmts)
    }

    fn parse_statement(&mut self) -> Result<Stmt, LangError> {
        match self.peek().clone() {
            TokenKind::If => self.parse_if(),
            TokenKind::For => self.parse_for(),
            TokenKind::Def => self.parse_def(),
            TokenKind::From | TokenKind::Import => self.parse_import(),
            TokenKind::Return => {
                self.advance();
                if matches!(self.peek(), TokenKind::Newline | TokenKind::Eof) {
                    self.end_simple_statement()?;
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.parse_expr()?;
                    self.end_simple_statement()?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            _ => self.parse_simple(),
        }
    }

    fn end_simple_statement(&mut self) -> Result<(), LangError> {
        if matches!(self.peek(), TokenKind::Eof | TokenKind::Dedent) {
            return Ok(());
        }
        self.expect(TokenKind::Newline, "end of statement")
    }

    fn parse_if(&mut self) -> Result<Stmt, LangError> {
        self.advance(); // if / elif
        let cond = self.parse_expr()?;
        self.expect(TokenKind::Colon, "`:` after the condition")?;
        let body = self.parse_block()?;
        self.skip_newlines();
        let orelse = if matches!(self.peek(), TokenKind::Elif) {
            vec![self.parse_if()?]
        } else if self.eat(&TokenKind::Else) {
            self.expect(TokenKind::Colon, "`:` after `else`")?;
            self.parse_block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, body, orelse })
    }

    fn parse_for(&mut self) -> Result<Stmt, LangError> {
        self.advance(); // for
        let var = match self.advance().clone() {
            TokenKind::Ident(name) => name,
            _ => return Err(self.unexpected("a loop variable name")),
        };
        self.expect(TokenKind::In, "`in`")?;
        let iter = self.parse_expr()?;
        self.expect(TokenKind::Colon, "`:` after the loop header")?;
        let body = self.parse_block()?;
        Ok(Stmt::For { var, iter, body })
    }

    fn parse_def(&mut self) -> Result<Stmt, LangError> {
        self.advance(); // def
        let name = match self.advance().clone() {
            TokenKind::Ident(name) => name,
            _ => return Err(self.unexpected("a function name")),
        };
        self.expect(TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        while !self.check(&TokenKind::RParen) {
            match self.advance().clone() {
                TokenKind::Ident(p) => params.push(p),
                _ => return Err(self.unexpected("a parameter name")),
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        self.expect(TokenKind::Colon, "`:`")?;
        let body = self.parse_block()?;
        Ok(Stmt::FuncDef { name, params, body })
    }

    fn parse_import(&mut self) -> Result<Stmt, LangError> {
        // `from X import *` or `import X`
        if self.eat(&TokenKind::From) {
            let module = match self.advance().clone() {
                TokenKind::Ident(m) => m,
                _ => return Err(self.unexpected("a module name")),
            };
            self.expect(TokenKind::Import, "`import`")?;
            // consume the import list (identifiers, commas, or `*`)
            while !matches!(self.peek(), TokenKind::Newline | TokenKind::Eof) {
                self.advance();
            }
            self.end_simple_statement()?;
            Ok(Stmt::Import { module })
        } else {
            self.advance(); // import
            let module = match self.advance().clone() {
                TokenKind::Ident(m) => m,
                _ => return Err(self.unexpected("a module name")),
            };
            self.end_simple_statement()?;
            Ok(Stmt::Import { module })
        }
    }

    fn parse_simple(&mut self) -> Result<Stmt, LangError> {
        let first = self.parse_expr()?;
        match self.peek().clone() {
            TokenKind::Assign => {
                // possibly chained: a = b = expr
                let mut targets = vec![first];
                let mut value;
                loop {
                    self.advance(); // =
                    value = self.parse_expr()?;
                    if self.check(&TokenKind::Assign) {
                        targets.push(value.clone());
                    } else {
                        break;
                    }
                }
                // handle `a, b = ...`? not in the grammar — keep single targets
                self.end_simple_statement()?;
                Ok(Stmt::Assign { targets, value })
            }
            TokenKind::Comma => {
                // multiple assignment on one line: `delete = 0, overflow = 0`
                // (paper Fig. 16 line 9).  Treated as two separate assignments is
                // not expressible as one Stmt, so parse as Assign of the first and
                // re-parse the rest recursively via a synthetic statement list —
                // instead we desugar here into a single Assign for the first and
                // queue the rest by rewriting the token stream position.
                // Simpler: parse `lhs = v , lhs2 = v2 , ...` fully.
                Err(self.unexpected("`=` or end of statement"))
            }
            TokenKind::PlusAssign => {
                self.advance();
                let value = self.parse_expr()?;
                self.end_simple_statement()?;
                Ok(Stmt::AugAssign { target: first, op: BinOp::Add, value })
            }
            TokenKind::MinusAssign => {
                self.advance();
                let value = self.parse_expr()?;
                self.end_simple_statement()?;
                Ok(Stmt::AugAssign { target: first, op: BinOp::Sub, value })
            }
            _ => {
                self.end_simple_statement()?;
                Ok(Stmt::ExprStmt(first))
            }
        }
    }

    // ---- expressions, by decreasing precedence ------------------------------

    fn parse_expr(&mut self) -> Result<Expr, LangError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, LangError> {
        let mut values = vec![self.parse_and()?];
        while self.eat(&TokenKind::Or) {
            values.push(self.parse_and()?);
        }
        if values.len() == 1 {
            Ok(values.pop().expect("one value"))
        } else {
            Ok(Expr::BoolChain { op: BoolOp::Or, values })
        }
    }

    fn parse_and(&mut self) -> Result<Expr, LangError> {
        let mut values = vec![self.parse_not()?];
        while self.eat(&TokenKind::And) {
            values.push(self.parse_not()?);
        }
        if values.len() == 1 {
            Ok(values.pop().expect("one value"))
        } else {
            Ok(Expr::BoolChain { op: BoolOp::And, values })
        }
    }

    fn parse_not(&mut self) -> Result<Expr, LangError> {
        if self.eat(&TokenKind::Not) {
            let operand = self.parse_not()?;
            Ok(Expr::Unary { op: UnaryOp::Not, operand: Box::new(operand) })
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr, LangError> {
        let lhs = self.parse_bitor()?;
        let op = match self.peek() {
            TokenKind::EqEq => Some(CmpOp::Eq),
            TokenKind::NotEq => Some(CmpOp::Ne),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Le => Some(CmpOp::Le),
            TokenKind::Gt => Some(CmpOp::Gt),
            TokenKind::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let rhs = self.parse_bitor()?;
            Ok(Expr::Compare { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
        } else {
            Ok(lhs)
        }
    }

    fn parse_bitor(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.parse_bitxor()?;
        while self.eat(&TokenKind::Pipe) {
            let rhs = self.parse_bitxor()?;
            lhs = Expr::BinOp { op: BinOp::BitOr, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_bitxor(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.parse_bitand()?;
        while self.eat(&TokenKind::Caret) {
            let rhs = self.parse_bitand()?;
            lhs = Expr::BinOp { op: BinOp::BitXor, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_bitand(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.parse_shift()?;
        while self.eat(&TokenKind::Amp) {
            let rhs = self.parse_shift()?;
            lhs = Expr::BinOp { op: BinOp::BitAnd, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_shift(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Shl => BinOp::Shl,
                TokenKind::Shr => BinOp::Shr,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_additive()?;
            lhs = Expr::BinOp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::BinOp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::SlashSlash => BinOp::FloorDiv,
                TokenKind::Percent => BinOp::Mod,
                TokenKind::StarStar => BinOp::Pow,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_unary()?;
            lhs = Expr::BinOp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, LangError> {
        match self.peek() {
            TokenKind::Minus => {
                self.advance();
                let operand = self.parse_unary()?;
                Ok(Expr::Unary { op: UnaryOp::Neg, operand: Box::new(operand) })
            }
            TokenKind::Tilde => {
                self.advance();
                let operand = self.parse_unary()?;
                Ok(Expr::Unary { op: UnaryOp::Invert, operand: Box::new(operand) })
            }
            TokenKind::Not => {
                self.advance();
                let operand = self.parse_unary()?;
                Ok(Expr::Unary { op: UnaryOp::Not, operand: Box::new(operand) })
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, LangError> {
        let mut expr = self.parse_atom()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.advance();
                    let attr = match self.advance().clone() {
                        TokenKind::Ident(a) => a,
                        _ => return Err(self.unexpected("an attribute name")),
                    };
                    expr = Expr::Attribute { value: Box::new(expr), attr };
                }
                TokenKind::LBracket => {
                    self.advance();
                    let index = self.parse_expr()?;
                    self.expect(TokenKind::RBracket, "`]`")?;
                    expr = Expr::Index { value: Box::new(expr), index: Box::new(index) };
                }
                TokenKind::LParen => {
                    self.advance();
                    let (args, kwargs) = self.parse_call_args()?;
                    expr = Expr::Call { func: Box::new(expr), args, kwargs };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_call_args(&mut self) -> Result<CallArgs, LangError> {
        let mut args = Vec::new();
        let mut kwargs = Vec::new();
        while !self.check(&TokenKind::RParen) {
            // keyword argument? ident '=' expr
            if let TokenKind::Ident(name) = self.peek().clone() {
                if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Assign) {
                    self.advance();
                    self.advance();
                    let value = self.parse_expr()?;
                    kwargs.push((name, value));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                    continue;
                }
            }
            args.push(self.parse_expr()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        Ok((args, kwargs))
    }

    fn parse_atom(&mut self) -> Result<Expr, LangError> {
        match self.advance().clone() {
            TokenKind::Int(v) => Ok(Expr::Int(v)),
            TokenKind::Float(v) => Ok(Expr::Float(v)),
            TokenKind::Str(s) => Ok(Expr::Str(s)),
            TokenKind::True => Ok(Expr::Bool(true)),
            TokenKind::False => Ok(Expr::Bool(false)),
            TokenKind::None => Ok(Expr::NoneLit),
            TokenKind::Ident(name) => Ok(Expr::Name(name)),
            TokenKind::LParen => {
                let inner = self.parse_expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            TokenKind::LBracket => {
                let mut items = Vec::new();
                while !self.check(&TokenKind::RBracket) {
                    items.push(self.parse_expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RBracket, "`]`")?;
                Ok(Expr::List(items))
            }
            TokenKind::LBrace => {
                let mut pairs = Vec::new();
                while !self.check(&TokenKind::RBrace) {
                    let key = self.parse_expr()?;
                    self.expect(TokenKind::Colon, "`:` in a dict literal")?;
                    let value = self.parse_expr()?;
                    pairs.push((key, value));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RBrace, "`}`")?;
                Ok(Expr::Dict(pairs))
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.unexpected("an expression"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::Lexer;

    fn parse(src: &str) -> Program {
        let toks = Lexer::new(src).tokenize().unwrap();
        parse_program(&toks).unwrap()
    }

    #[test]
    fn parses_assignment_and_arithmetic() {
        let p = parse("x = 1 + 2 * 3\n");
        match &p.stmts[0] {
            Stmt::Assign { targets, value } => {
                assert_eq!(targets, &vec![Expr::name("x")]);
                assert_eq!(value.const_int(), Some(7), "precedence: 1 + (2*3)");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_if_elif_else() {
        let p =
            parse("if hdr.op == 1:\n    x = 1\nelif hdr.op == 2:\n    x = 2\nelse:\n    x = 3\n");
        match &p.stmts[0] {
            Stmt::If { cond, body, orelse } => {
                assert!(matches!(cond, Expr::Compare { .. }));
                assert_eq!(body.len(), 1);
                assert_eq!(orelse.len(), 1);
                match &orelse[0] {
                    Stmt::If { orelse: inner_else, .. } => assert_eq!(inner_else.len(), 1),
                    other => panic!("expected nested if, got {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_for_range_with_body() {
        let p = parse("for i in range(3):\n    vals = i\n    y = vals + 1\n");
        match &p.stmts[0] {
            Stmt::For { var, iter, body } => {
                assert_eq!(var, "i");
                let (name, args, _) = iter.as_named_call().unwrap();
                assert_eq!(name, "range");
                assert_eq!(args[0].const_int(), Some(3));
                assert_eq!(body.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_the_fig1_count_min_sketch_program() {
        let src = "\
mem = Array(row=3, size=65536, w=32)
vals = list()
for i in range(3):
    f = Hash(type=\"crc_16\", key=hdr.key)
    idx = get(f, hdr.key)
    vals.append(count(mem, idx, 1))
relt = min(vals)
";
        let p = parse(src);
        assert_eq!(p.stmts.len(), 4);
        // the Array constructor call carries keyword arguments
        match &p.stmts[0] {
            Stmt::Assign { value, .. } => {
                let (name, _, kwargs) = value.as_named_call().unwrap();
                assert_eq!(name, "Array");
                assert_eq!(kwargs.len(), 3);
                assert_eq!(kwargs[0].0, "row");
            }
            other => panic!("unexpected {other:?}"),
        }
        // method call vals.append(...) parses as a call of an attribute
        match &p.stmts[2] {
            Stmt::For { body, .. } => match &body[2] {
                Stmt::ExprStmt(Expr::Call { func, .. }) => {
                    assert!(matches!(func.as_ref(), Expr::Attribute { .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_the_fig7_sparse_mlagg_user_program() {
        let src = "\
agg = MLAgg(row, dim, is_convert, scale)
for i in range(BlockNum):
    sparse = 1
    for j in range(BlockSize):
        index = BlockNum * i + j
        if hdr.feat[index] != 0:
            sparse = 0
    if sparse == 0:
        del(hdr.feat[index])
agg(hdr)
";
        let p = parse(src);
        assert_eq!(p.stmts.len(), 3);
        match &p.stmts[1] {
            Stmt::For { body, .. } => {
                assert_eq!(body.len(), 3);
                assert!(matches!(body[1], Stmt::For { .. }));
                assert!(matches!(body[2], Stmt::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        // trailing template invocation agg(hdr)
        match &p.stmts[2] {
            Stmt::ExprStmt(Expr::Call { func, args, .. }) => {
                assert_eq!(func.as_ref(), &Expr::name("agg"));
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_augmented_assignment_and_boolean_chains() {
        let p = parse("x += 1\ny -= 2\nif a and b or not c:\n    drop()\n");
        assert!(matches!(p.stmts[0], Stmt::AugAssign { op: BinOp::Add, .. }));
        assert!(matches!(p.stmts[1], Stmt::AugAssign { op: BinOp::Sub, .. }));
        match &p.stmts[2] {
            Stmt::If { cond, .. } => assert!(matches!(cond, Expr::BoolChain { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_imports_and_defs() {
        let p = parse("from Funclib import *\ndef comp(v1, v2):\n    if v1 < v2:\n        return v1\n    else:\n        return v2\n");
        assert!(matches!(&p.stmts[0], Stmt::Import { module } if module == "Funclib"));
        match &p.stmts[1] {
            Stmt::FuncDef { name, params, body } => {
                assert_eq!(name, "comp");
                assert_eq!(params.len(), 2);
                assert_eq!(body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_dict_literals_in_back_calls() {
        let p = parse("back(hdr={op: REPLY, vals: vals})\n");
        match &p.stmts[0] {
            Stmt::ExprStmt(Expr::Call { kwargs, .. }) => {
                assert_eq!(kwargs.len(), 1);
                assert!(matches!(kwargs[0].1, Expr::Dict(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_indexing_and_slices_of_header_fields() {
        let p = parse("v = hdr.feat[3]\nw = hdr.vals[i + 1]\n");
        match &p.stmts[0] {
            Stmt::Assign { value, .. } => {
                assert_eq!(value.as_header_field(), Some("feat"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.stmts.len(), 2);
    }

    #[test]
    fn error_on_missing_colon() {
        let toks = Lexer::new("if x > 0\n    y = 1\n").tokenize().unwrap();
        let err = parse_program(&toks).unwrap_err();
        assert!(matches!(err, LangError::UnexpectedToken { .. }));
    }

    #[test]
    fn error_on_unclosed_paren() {
        let toks = Lexer::new("x = f(1, 2\n").tokenize().unwrap();
        assert!(parse_program(&toks).is_err());
    }

    #[test]
    fn error_on_dangling_operator() {
        let toks = Lexer::new("x = 1 +\n").tokenize().unwrap();
        assert!(parse_program(&toks).is_err());
    }

    #[test]
    fn chained_assignment() {
        let p = parse("a = b = 5\n");
        match &p.stmts[0] {
            Stmt::Assign { targets, value } => {
                assert_eq!(targets.len(), 2);
                assert_eq!(value.const_int(), Some(5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
