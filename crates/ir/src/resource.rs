//! Generic resource-demand vectors.
//!
//! The device models (crate `clickinc-device`) describe both instruction demand
//! and per-stage / per-device capacity in the same vector space so that the
//! placement algorithm can check feasibility (`demand ≤ capacity`) and compute the
//! normalized resource-consumption term `h_r(x)` of the objective (paper Eq. 1).
//!
//! The dimensions are the union of the chip resources of Appendix E that actually
//! influence placement decisions: memory blocks (SRAM/TCAM), stateful and
//! stateless ALUs, hash units, match-action table slots, gateway (predicate)
//! slots, PHV bits, generic "instruction slots" (for RTC cores), and the FPGA
//! LUT/BRAM/DSP budgets.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Sub};

/// The resource dimensions tracked by placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// SRAM memory blocks.
    SramBlocks,
    /// TCAM memory blocks.
    TcamBlocks,
    /// Stateful ALUs (register/SALU slots).
    StatefulAlus,
    /// Stateless ALUs.
    StatelessAlus,
    /// Hash distribution units.
    HashUnits,
    /// Match-action table slots per stage.
    TableSlots,
    /// Gateway / predicate evaluation slots.
    GatewaySlots,
    /// Packet-header-vector bits occupied by carried variables.
    PhvBits,
    /// Generic instruction slots (micro-instructions on RTC cores).
    InstrSlots,
    /// FPGA lookup tables.
    Lut,
    /// FPGA block RAM (in 36Kb blocks).
    Bram,
    /// FPGA DSP slices.
    Dsp,
}

impl Resource {
    /// All dimensions in canonical order.
    pub const ALL: [Resource; 12] = [
        Resource::SramBlocks,
        Resource::TcamBlocks,
        Resource::StatefulAlus,
        Resource::StatelessAlus,
        Resource::HashUnits,
        Resource::TableSlots,
        Resource::GatewaySlots,
        Resource::PhvBits,
        Resource::InstrSlots,
        Resource::Lut,
        Resource::Bram,
        Resource::Dsp,
    ];

    /// Number of dimensions.
    pub const COUNT: usize = 12;

    fn idx(self) -> usize {
        match self {
            Resource::SramBlocks => 0,
            Resource::TcamBlocks => 1,
            Resource::StatefulAlus => 2,
            Resource::StatelessAlus => 3,
            Resource::HashUnits => 4,
            Resource::TableSlots => 5,
            Resource::GatewaySlots => 6,
            Resource::PhvBits => 7,
            Resource::InstrSlots => 8,
            Resource::Lut => 9,
            Resource::Bram => 10,
            Resource::Dsp => 11,
        }
    }

    /// Short name used in dumps.
    pub fn name(&self) -> &'static str {
        match self {
            Resource::SramBlocks => "sram",
            Resource::TcamBlocks => "tcam",
            Resource::StatefulAlus => "salu",
            Resource::StatelessAlus => "alu",
            Resource::HashUnits => "hash",
            Resource::TableSlots => "tables",
            Resource::GatewaySlots => "gateway",
            Resource::PhvBits => "phv",
            Resource::InstrSlots => "instr",
            Resource::Lut => "lut",
            Resource::Bram => "bram",
            Resource::Dsp => "dsp",
        }
    }
}

/// A dense vector over the [`Resource`] dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceVector {
    values: [f64; Resource::COUNT],
}

impl ResourceVector {
    /// The zero vector.
    pub fn zero() -> ResourceVector {
        ResourceVector::default()
    }

    /// Build from `(resource, amount)` pairs.
    pub fn from_pairs(pairs: &[(Resource, f64)]) -> ResourceVector {
        let mut v = ResourceVector::zero();
        for (r, a) in pairs {
            v[*r] += *a;
        }
        v
    }

    /// Set one dimension (builder style).
    pub fn with(mut self, r: Resource, amount: f64) -> ResourceVector {
        self[r] = amount;
        self
    }

    /// Whether every dimension of `self` fits within `capacity`.
    pub fn fits_within(&self, capacity: &ResourceVector) -> bool {
        self.values.iter().zip(capacity.values.iter()).all(|(d, c)| *d <= *c + 1e-9)
    }

    /// Whether the vector is (numerically) all zeros.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|v| v.abs() < 1e-12)
    }

    /// Sum of all dimensions (used only for coarse diagnostics).
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Largest utilization fraction of `self` relative to `capacity`,
    /// ignoring capacity dimensions that are zero.  Used for the normalized
    /// resource term h_r of the placement objective.
    pub fn max_utilization(&self, capacity: &ResourceVector) -> f64 {
        self.values
            .iter()
            .zip(capacity.values.iter())
            .filter(|(_, c)| **c > 0.0)
            .map(|(d, c)| d / c)
            .fold(0.0_f64, f64::max)
    }

    /// Mean utilization over the capacity dimensions that are non-zero.
    pub fn mean_utilization(&self, capacity: &ResourceVector) -> f64 {
        let mut n = 0usize;
        let mut acc = 0.0;
        for (d, c) in self.values.iter().zip(capacity.values.iter()) {
            if *c > 0.0 {
                acc += d / c;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            acc / n as f64
        }
    }

    /// Element-wise saturating subtraction (never goes below zero).
    pub fn saturating_sub(&self, other: &ResourceVector) -> ResourceVector {
        let mut out = ResourceVector::zero();
        for i in 0..Resource::COUNT {
            out.values[i] = (self.values[i] - other.values[i]).max(0.0);
        }
        out
    }

    /// Scale every dimension by a factor.
    pub fn scaled(&self, factor: f64) -> ResourceVector {
        let mut out = *self;
        for v in &mut out.values {
            *v *= factor;
        }
        out
    }

    /// Iterate over `(resource, value)` pairs with non-zero value.
    pub fn nonzero(&self) -> impl Iterator<Item = (Resource, f64)> + '_ {
        Resource::ALL
            .iter()
            .copied()
            .filter(move |r| self[*r].abs() > 1e-12)
            .map(move |r| (r, self[r]))
    }
}

impl Index<Resource> for ResourceVector {
    type Output = f64;
    fn index(&self, r: Resource) -> &f64 {
        &self.values[r.idx()]
    }
}

impl IndexMut<Resource> for ResourceVector {
    fn index_mut(&mut self, r: Resource) -> &mut f64 {
        &mut self.values[r.idx()]
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;
    fn add(self, rhs: ResourceVector) -> ResourceVector {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, rhs: ResourceVector) {
        for i in 0..Resource::COUNT {
            self.values[i] += rhs.values[i];
        }
    }
}

impl Sub for ResourceVector {
    type Output = ResourceVector;
    fn sub(self, rhs: ResourceVector) -> ResourceVector {
        let mut out = self;
        for i in 0..Resource::COUNT {
            out.values[i] -= rhs.values[i];
        }
        out
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> =
            self.nonzero().map(|(r, v)| format!("{}={:.1}", r.name(), v)).collect();
        if parts.is_empty() {
            write!(f, "{{}}")
        } else {
            write!(f, "{{{}}}", parts.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_and_builders() {
        let v =
            ResourceVector::zero().with(Resource::SramBlocks, 4.0).with(Resource::HashUnits, 1.0);
        assert_eq!(v[Resource::SramBlocks], 4.0);
        assert_eq!(v[Resource::TcamBlocks], 0.0);
        let w =
            ResourceVector::from_pairs(&[(Resource::SramBlocks, 2.0), (Resource::SramBlocks, 2.0)]);
        assert_eq!(w[Resource::SramBlocks], 4.0);
    }

    #[test]
    fn arithmetic() {
        let a = ResourceVector::zero().with(Resource::StatefulAlus, 2.0);
        let b = ResourceVector::zero().with(Resource::StatefulAlus, 3.0);
        assert_eq!((a + b)[Resource::StatefulAlus], 5.0);
        assert_eq!((b - a)[Resource::StatefulAlus], 1.0);
        assert_eq!(a.scaled(2.0)[Resource::StatefulAlus], 4.0);
        let mut c = a;
        c += b;
        assert_eq!(c[Resource::StatefulAlus], 5.0);
    }

    #[test]
    fn saturating_sub_never_negative() {
        let a = ResourceVector::zero().with(Resource::Lut, 1.0);
        let b = ResourceVector::zero().with(Resource::Lut, 5.0);
        assert_eq!(a.saturating_sub(&b)[Resource::Lut], 0.0);
        assert_eq!(b.saturating_sub(&a)[Resource::Lut], 4.0);
    }

    #[test]
    fn fits_within_capacity() {
        let cap =
            ResourceVector::zero().with(Resource::SramBlocks, 10.0).with(Resource::TcamBlocks, 2.0);
        let ok = ResourceVector::zero().with(Resource::SramBlocks, 10.0);
        let bad = ResourceVector::zero().with(Resource::TcamBlocks, 3.0);
        assert!(ok.fits_within(&cap));
        assert!(!bad.fits_within(&cap));
        assert!(ResourceVector::zero().fits_within(&cap));
    }

    #[test]
    fn utilization_metrics() {
        let cap = ResourceVector::zero()
            .with(Resource::SramBlocks, 10.0)
            .with(Resource::StatefulAlus, 4.0);
        let use_ = ResourceVector::zero()
            .with(Resource::SramBlocks, 5.0)
            .with(Resource::StatefulAlus, 4.0);
        assert!((use_.max_utilization(&cap) - 1.0).abs() < 1e-9);
        assert!((use_.mean_utilization(&cap) - 0.75).abs() < 1e-9);
        assert_eq!(ResourceVector::zero().max_utilization(&cap), 0.0);
    }

    #[test]
    fn zero_detection_and_display() {
        assert!(ResourceVector::zero().is_zero());
        let v = ResourceVector::zero().with(Resource::Dsp, 2.0);
        assert!(!v.is_zero());
        assert_eq!(ResourceVector::zero().to_string(), "{}");
        assert!(v.to_string().contains("dsp=2.0"));
        assert_eq!(v.nonzero().count(), 1);
        assert_eq!(v.total(), 2.0);
    }
}
