//! INC service requests.

use clickinc_lang::templates::Template;
use clickinc_lang::Profile;

/// A request to deploy one INC program for one user.
#[derive(Debug, Clone)]
pub struct ServiceRequest {
    /// User / program id (must be unique among active programs).
    pub user: String,
    /// ClickINC source of the program.
    pub source: String,
    /// Names of the client/worker servers generating the traffic.
    pub sources: Vec<String>,
    /// Name of the destination server.
    pub destination: String,
    /// Optional per-source traffic weights (packets per second).
    pub traffic_weights: Vec<f64>,
    /// Optional configuration profile (used for reporting; the template
    /// parameters are already baked into `source`).
    pub profile: Option<Profile>,
}

impl ServiceRequest {
    /// Build a request from raw ClickINC source.
    pub fn new(
        user: impl Into<String>,
        source: impl Into<String>,
        sources: &[&str],
        destination: &str,
    ) -> ServiceRequest {
        ServiceRequest {
            user: user.into(),
            source: source.into(),
            sources: sources.iter().map(|s| s.to_string()).collect(),
            destination: destination.to_string(),
            traffic_weights: Vec::new(),
            profile: None,
        }
    }

    /// Build a request from an instantiated template.
    pub fn from_template(
        template: Template,
        sources: &[&str],
        destination: &str,
    ) -> ServiceRequest {
        ServiceRequest::new(template.name.clone(), template.source, sources, destination)
    }

    /// Attach per-source traffic weights (builder style).
    pub fn with_weights(mut self, weights: Vec<f64>) -> ServiceRequest {
        self.traffic_weights = weights;
        self
    }

    /// Attach the originating profile (builder style).
    pub fn with_profile(mut self, profile: Profile) -> ServiceRequest {
        self.profile = Some(profile);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_lang::templates::{kvs_template, KvsParams};

    #[test]
    fn request_builders() {
        let r =
            ServiceRequest::new("u1", "forward()\n", &["a", "b"], "c").with_weights(vec![1.0, 2.0]);
        assert_eq!(r.user, "u1");
        assert_eq!(r.sources, vec!["a", "b"]);
        assert_eq!(r.traffic_weights, vec![1.0, 2.0]);
        assert!(r.profile.is_none());

        let t = kvs_template("kvs_0", KvsParams::default());
        let r = ServiceRequest::from_template(t, &["pod0a"], "pod2b")
            .with_profile(clickinc_lang::profile::example_kvs_profile());
        assert_eq!(r.user, "kvs_0");
        assert!(r.source.contains("cache"));
        assert!(r.profile.is_some());
    }
}
