//! The IR transform tier: optimization passes run at install time, before the
//! program is compiled for the data plane.
//!
//! An [`Optimizer`] runs an ordered list of [`TransformPass`]es over one
//! program and *re-verifies the result*: the transformed program must pass
//! structural validation and must not introduce any error the untransformed
//! program did not have, otherwise the optimizer falls back to the original
//! (correctness over speed, always).  The default pipeline is
//!
//! 1. [`ConstFoldPass`] — propagate unguarded constant definitions, fold
//!    all-constant ALU/compare instructions into constant assignments (using
//!    the reference semantics in [`crate::eval`], so a folded value is
//!    bit-identical to what the interpreter would have computed), and resolve
//!    constant guard predicates — always-true predicates are dropped,
//!    instructions with an always-false predicate are removed (they could
//!    never execute, so removal is invisible to the executed-instruction
//!    telemetry).
//! 2. [`DeadValueElimPass`] — remove pure computations whose values nothing
//!    observes (the *elimination* counterpart of the verifier's
//!    `dead-snippet` detection), reporting exactly what was removed.
//! 3. [`GuardHoistPass`] — lift guard predicates shared by *every*
//!    instruction into the program-level [`IrProgram::precondition`], checked
//!    once per packet instead of once per instruction.  On an isolated tenant
//!    program this is the `meta.inc_user == id` predicate that
//!    `synthesis::isolate_user_program` stamps onto every instruction, so a
//!    co-resident tenant's packet skips the whole snippet in O(1).
//!
//! Transform passes report what they changed as [`Severity::Info`]
//! diagnostics on the same [`DiagnosticSet`] machinery the verifier uses, so
//! the service's diagnostics JSON shows detection and elimination side by
//! side.

use crate::analysis::dataflow::{header_writes, is_effectful, DefUse};
use crate::analysis::diagnostics::{Diagnostic, DiagnosticSet, Severity};
use crate::analysis::passes::{PassContext, PassManager};
use crate::eval;
use crate::instr::{Guard, OpCode, Operand, Predicate};
use crate::program::IrProgram;
use std::collections::{BTreeMap, BTreeSet};

/// Everything a transform pass may consult besides the program itself.
#[derive(Debug, Clone)]
pub struct TransformContext<'a> {
    /// The tenant (user program id) whose program is being optimized,
    /// recorded on every diagnostic.
    pub tenant: &'a str,
    /// Variables that must stay live even though no instruction in *this*
    /// program reads them (e.g. temporaries a later pipeline stage exports
    /// into the packet's Param field).
    pub live_outs: &'a BTreeSet<String>,
}

/// A single transform pass: rewrites the program in place and reports what it
/// changed.
pub trait TransformPass {
    /// Stable pass name, recorded on every diagnostic it emits.
    fn name(&self) -> &'static str;
    /// Transform `program`, appending change reports to `out`.
    fn run(&self, program: &mut IrProgram, ctx: &TransformContext<'_>, out: &mut DiagnosticSet);
}

/// Runs an ordered pipeline of transform passes with re-verification.
#[derive(Default)]
pub struct Optimizer {
    passes: Vec<Box<dyn TransformPass>>,
    live_outs: BTreeSet<String>,
}

impl Optimizer {
    /// An empty optimizer (register passes yourself).
    pub fn new() -> Optimizer {
        Optimizer::default()
    }

    /// The default transform pipeline: constant folding, dead-value
    /// elimination, guard hoisting.
    pub fn with_default_passes() -> Optimizer {
        let mut opt = Optimizer::new();
        opt.register(Box::new(ConstFoldPass));
        opt.register(Box::new(DeadValueElimPass));
        opt.register(Box::new(GuardHoistPass));
        opt
    }

    /// Append a pass to the pipeline.
    pub fn register(&mut self, pass: Box<dyn TransformPass>) {
        self.passes.push(pass);
    }

    /// Mark variables as observable by downstream stages, keeping their
    /// definitions alive through dead-value elimination.
    pub fn with_live_outs(mut self, vars: impl IntoIterator<Item = String>) -> Optimizer {
        self.live_outs.extend(vars);
        self
    }

    /// The registered pass names, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Optimize `program` and re-verify the result.
    ///
    /// The transformed program is accepted only when it (a) still passes
    /// structural validation and (b) introduces no verifier *error* the
    /// original program did not already have; otherwise the original is
    /// returned unchanged and an info diagnostic records the fallback.
    /// `isolated` is forwarded to the re-verification [`PassContext`].
    pub fn optimize(
        &self,
        tenant: &str,
        isolated: bool,
        program: &IrProgram,
        out: &mut DiagnosticSet,
    ) -> IrProgram {
        let mut optimized = program.clone();
        let ctx = TransformContext { tenant, live_outs: &self.live_outs };
        let mut changes = DiagnosticSet::new();
        for pass in &self.passes {
            pass.run(&mut optimized, &ctx, &mut changes);
        }
        if optimized == *program {
            return optimized;
        }
        let fallback = |out: &mut DiagnosticSet, reason: String| {
            out.push(Diagnostic::new(
                Severity::Info,
                "optimizer",
                tenant,
                program.name.clone(),
                format!("optimized program rejected ({reason}); keeping the unoptimized program"),
            ));
        };
        if let Err(err) = optimized.validate() {
            fallback(out, format!("structural validation failed: {err}"));
            return program.clone();
        }
        let verify = |p: &IrProgram| {
            PassManager::with_default_passes().run(&PassContext {
                tenant: tenant.to_string(),
                isolated,
                programs: std::slice::from_ref(p),
                placements: &[],
            })
        };
        let recheck = verify(&optimized);
        if recheck.has_errors() && !verify(program).has_errors() {
            let first = recheck.at(Severity::Error).next().map(|d| d.message.clone());
            fallback(out, format!("re-verification failed: {}", first.unwrap_or_default()));
            return program.clone();
        }
        out.merge(changes);
        optimized
    }
}

fn info(pass: &str, ctx: &TransformContext<'_>, snippet: &str, message: String) -> Diagnostic {
    Diagnostic::new(Severity::Info, pass, ctx.tenant, snippet, message)
}

/// Constant propagation and folding over the straight-line stream.
///
/// Tracks variables holding a known constant (only *unguarded* definitions
/// qualify — a guarded definition is a φ-arm and poisons the variable),
/// substitutes them into operands and guards, folds all-constant ALU and
/// compare instructions into constant assignments via the shared reference
/// semantics, and resolves constant-vs-constant guard predicates.
pub struct ConstFoldPass;

impl ConstFoldPass {
    fn subst(op: &mut Operand, consts: &BTreeMap<String, crate::types::Value>) -> bool {
        if let Operand::Var(v) = op {
            if let Some(value) = consts.get(v.as_str()) {
                *op = Operand::Const(value.clone());
                return true;
            }
        }
        false
    }

    fn subst_all<'a>(
        ops: impl IntoIterator<Item = &'a mut Operand>,
        consts: &BTreeMap<String, crate::types::Value>,
    ) -> bool {
        let mut changed = false;
        for op in ops {
            changed |= Self::subst(op, consts);
        }
        changed
    }
}

impl TransformPass for ConstFoldPass {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    fn run(&self, program: &mut IrProgram, ctx: &TransformContext<'_>, out: &mut DiagnosticSet) {
        let mut consts: BTreeMap<String, crate::types::Value> = BTreeMap::new();
        let mut folded = 0usize;
        let mut removed: Vec<String> = Vec::new();
        let mut kept = Vec::with_capacity(program.instructions.len());
        for mut instr in std::mem::take(&mut program.instructions) {
            // substitute known constants into the guard and resolve
            // constant-vs-constant predicates
            let mut never_executes = false;
            if let Some(guard) = &mut instr.guard {
                for p in &mut guard.all {
                    Self::subst(&mut p.lhs, &consts);
                    Self::subst(&mut p.rhs, &consts);
                }
                guard.all.retain(|p| match (&p.lhs, &p.rhs) {
                    (Operand::Const(a), Operand::Const(b)) => {
                        if eval::compare(a, p.op, b) {
                            false // always true: drop the predicate
                        } else {
                            never_executes = true;
                            true
                        }
                    }
                    _ => true,
                });
                if guard.all.is_empty() {
                    instr.guard = None;
                }
            }
            if never_executes {
                // a guard predicate is constantly false: the instruction can
                // never execute, so removing it is invisible even to the
                // executed-instruction counters
                removed.push(instr.id.to_string());
                continue;
            }
            // substitute into the operation's operands
            match &mut instr.op {
                OpCode::Assign { src, .. } => {
                    Self::subst(src, &consts);
                }
                OpCode::Alu { lhs, rhs, .. } | OpCode::Cmp { lhs, rhs, .. } => {
                    Self::subst(lhs, &consts);
                    Self::subst(rhs, &consts);
                }
                OpCode::Hash { keys, .. } => {
                    Self::subst_all(keys, &consts);
                }
                OpCode::ReadState { index, .. } | OpCode::DeleteState { index, .. } => {
                    Self::subst_all(index, &consts);
                }
                OpCode::WriteState { index, value, .. } => {
                    Self::subst_all(index.iter_mut().chain(value), &consts);
                }
                OpCode::CountState { index, delta, .. } => {
                    Self::subst_all(index.iter_mut().chain(std::iter::once(delta)), &consts);
                }
                OpCode::Back { updates } | OpCode::Mirror { updates } => {
                    Self::subst_all(updates.iter_mut().map(|(_, v)| v), &consts);
                }
                OpCode::Multicast { group } => {
                    Self::subst(group, &consts);
                }
                OpCode::CopyTo { values, .. } => {
                    Self::subst_all(values, &consts);
                }
                OpCode::SetHeader { value, .. } => {
                    Self::subst(value, &consts);
                }
                OpCode::Crypto { input, .. } => {
                    Self::subst(input, &consts);
                }
                OpCode::RandInt { bound, .. } => {
                    Self::subst(bound, &consts);
                }
                OpCode::Checksum { inputs, .. } => {
                    Self::subst_all(inputs, &consts);
                }
                OpCode::ClearState { .. } | OpCode::Drop | OpCode::Forward | OpCode::NoOp => {}
            }
            // fold all-constant pure computations into constant assignments,
            // using the same evaluation the interpreter and VM apply at
            // packet time
            match &instr.op {
                OpCode::Alu { dest, op, lhs: Operand::Const(a), rhs: Operand::Const(b), float } => {
                    let value = eval::alu(*op, a, b, *float);
                    instr.op = OpCode::Assign { dest: dest.clone(), src: Operand::Const(value) };
                    folded += 1;
                }
                OpCode::Cmp { dest, op, lhs: Operand::Const(a), rhs: Operand::Const(b) } => {
                    let value = crate::types::Value::Bool(eval::compare(a, *op, b));
                    instr.op = OpCode::Assign { dest: dest.clone(), src: Operand::Const(value) };
                    folded += 1;
                }
                _ => {}
            }
            // update the constant map with this instruction's definition
            if let Some(dest) = instr.op.dest() {
                match (&instr.guard, &instr.op) {
                    (None, OpCode::Assign { src: Operand::Const(v), .. }) => {
                        consts.insert(dest.to_string(), v.clone());
                    }
                    _ => {
                        consts.remove(dest);
                    }
                }
            }
            kept.push(instr);
        }
        program.instructions = kept;
        if folded > 0 || !removed.is_empty() {
            let mut message = format!("folded {folded} instruction(s) to constants");
            if !removed.is_empty() {
                message.push_str(&format!(
                    "; removed {} never-executing instruction(s): {}",
                    removed.len(),
                    removed.join(", ")
                ));
            }
            out.push(info(self.name(), ctx, &program.name, message));
        }
    }
}

/// Dead-value *elimination*: removes the pure computations the verifier's
/// `dead-snippet` pass only detects.
///
/// Liveness is the same backwards value-graph walk the detector uses, with
/// the context's live-out variables as extra roots.  A program with no
/// effectful instruction at all is left untouched — gutting it would not fix
/// it, and the `dead-snippet` warning already points at it.
pub struct DeadValueElimPass;

impl TransformPass for DeadValueElimPass {
    fn name(&self) -> &'static str {
        "dead-value-elim"
    }

    fn run(&self, program: &mut IrProgram, ctx: &TransformContext<'_>, out: &mut DiagnosticSet) {
        if !program.instructions.iter().any(is_effectful) {
            return;
        }
        let du = DefUse::of(program);
        let n = program.instructions.len();
        let mut live = vec![false; n];
        let mut needed: BTreeSet<String> = ctx.live_outs.clone();
        for idx in (0..n).rev() {
            let instr = &program.instructions[idx];
            let set = du.set(idx);
            let is_root = is_effectful(instr)
                || instr.op.is_packet_action()
                || matches!(instr.op, OpCode::NoOp);
            let feeds_live = set.writes_var.as_ref().map(|v| needed.contains(v)).unwrap_or(false);
            if is_root || feeds_live {
                live[idx] = true;
                needed.extend(set.reads_vars.iter().cloned());
            }
        }
        let removed: Vec<String> = program
            .instructions
            .iter()
            .zip(&live)
            .filter(|(_, &l)| !l)
            .map(|(i, _)| i.id.to_string())
            .collect();
        if removed.is_empty() {
            return;
        }
        let mut keep = live.into_iter();
        program.instructions.retain(|_| keep.next().unwrap_or(true));
        out.push(info(
            self.name(),
            ctx,
            &program.name,
            format!(
                "eliminated {} dead instruction(s) whose values nothing observes: {} — removed \
                 from the installed program, not merely detected (the verifier's dead-snippet \
                 pass reports but keeps them)",
                removed.len(),
                removed.join(", ")
            ),
        ));
    }
}

/// Guard hoisting: predicates present in *every* instruction's guard move
/// into the program-level [`IrProgram::precondition`], evaluated once per
/// packet.
///
/// Only predicates whose operands are constants, metadata, or header fields
/// the program never writes are hoistable — those are invariant for the whole
/// program execution, so checking them up front is equivalent to checking
/// them at every instruction.  Variables are never hoistable (they do not
/// exist before the first instruction runs).
pub struct GuardHoistPass;

impl GuardHoistPass {
    fn hoistable(p: &Predicate, written_headers: &BTreeSet<String>) -> bool {
        [&p.lhs, &p.rhs].iter().all(|op| match op {
            Operand::Const(_) | Operand::Meta(_) => true,
            Operand::Header(f) => !written_headers.contains(f),
            Operand::Var(_) => false,
        })
    }
}

impl TransformPass for GuardHoistPass {
    fn name(&self) -> &'static str {
        "guard-hoist"
    }

    fn run(&self, program: &mut IrProgram, ctx: &TransformContext<'_>, out: &mut DiagnosticSet) {
        if program.instructions.is_empty() {
            return;
        }
        let written: BTreeSet<String> =
            program.instructions.iter().flat_map(header_writes).collect();
        // candidates: hoistable predicates of the first guard, narrowed to
        // those every other instruction's guard also carries
        let Some(first) = &program.instructions[0].guard else { return };
        let mut shared: Vec<Predicate> =
            first.all.iter().filter(|p| Self::hoistable(p, &written)).cloned().collect();
        for instr in &program.instructions[1..] {
            let Some(guard) = &instr.guard else { return };
            shared.retain(|p| guard.all.contains(p));
            if shared.is_empty() {
                return;
            }
        }
        // lift them out of every guard and into the precondition
        for instr in &mut program.instructions {
            if let Some(guard) = &mut instr.guard {
                for p in &shared {
                    if let Some(pos) = guard.all.iter().position(|q| q == p) {
                        guard.all.remove(pos);
                    }
                }
                if guard.all.is_empty() {
                    instr.guard = None;
                }
            }
        }
        let pre = program.precondition.get_or_insert_with(Guard::default);
        pre.all.extend(shared.iter().cloned());
        let preds: Vec<String> = shared.iter().map(|p| p.to_string()).collect();
        out.push(info(
            self.name(),
            ctx,
            &program.name,
            format!(
                "hoisted {} guard predicate(s) shared by all {} instruction(s) into the program \
                 precondition: {}",
                shared.len(),
                program.instructions.len(),
                preds.join(" && ")
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::{AluOp, CmpOp};
    use crate::types::{Value, ValueType};

    fn optimize(program: &IrProgram) -> (IrProgram, DiagnosticSet) {
        let mut out = DiagnosticSet::new();
        let optimized = Optimizer::with_default_passes().optimize("u0", false, program, &mut out);
        (optimized, out)
    }

    #[test]
    fn const_folding_collapses_constant_chains() {
        let mut b = ProgramBuilder::new("p");
        b.array("acc", 1, 16, 32);
        b.assign("x", Operand::int(4));
        b.alu("y", AluOp::Add, Operand::var("x"), Operand::int(3));
        b.count(None, "acc", vec![Operand::var("y")], Operand::int(1));
        b.forward();
        let p = b.build().unwrap();
        let (opt, diags) = optimize(&p);
        // y = x + 3 folds to y = 7, then x and y both die into the count index
        let count = opt
            .instructions
            .iter()
            .find_map(|i| match &i.op {
                OpCode::CountState { index, .. } => Some(index.clone()),
                _ => None,
            })
            .expect("count survives");
        assert_eq!(count, vec![Operand::Const(Value::Int(7))]);
        assert!(diags.iter().any(|d| d.pass == "const-fold"), "{diags}");
        assert!(opt.validate().is_ok());
    }

    #[test]
    fn always_false_guards_remove_their_instructions() {
        let mut b = ProgramBuilder::new("p");
        b.array("acc", 1, 16, 32);
        b.guarded(Predicate::new(Operand::int(1), CmpOp::Eq, Operand::int(2)), |b| {
            b.count(None, "acc", vec![Operand::int(0)], Operand::int(1));
        });
        b.count(None, "acc", vec![Operand::int(1)], Operand::int(1));
        b.forward();
        let p = b.build().unwrap();
        let (opt, diags) = optimize(&p);
        assert_eq!(opt.len(), 2, "dead branch removed: {}", opt.dump());
        assert!(diags.iter().any(|d| d.message.contains("never-executing")), "{diags}");
    }

    #[test]
    fn guarded_definitions_poison_constant_propagation() {
        let mut b = ProgramBuilder::new("p");
        b.array("acc", 1, 16, 32);
        b.assign("x", Operand::int(1));
        b.guarded(Predicate::new(Operand::hdr("op"), CmpOp::Eq, Operand::int(1)), |b| {
            b.assign("x", Operand::int(2));
        });
        b.count(None, "acc", vec![Operand::var("x")], Operand::int(1));
        b.forward();
        let p = b.build().unwrap();
        let (opt, _) = optimize(&p);
        let count_index = opt
            .instructions
            .iter()
            .find_map(|i| match &i.op {
                OpCode::CountState { index, .. } => Some(index.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(count_index, vec![Operand::var("x")], "φ-merged x must not fold");
    }

    #[test]
    fn dead_value_elimination_reports_what_it_removed() {
        let mut b = ProgramBuilder::new("p");
        b.header("key", ValueType::Bit(32));
        b.array("acc", 1, 16, 32);
        b.assign("unused", Operand::hdr("key"));
        b.count(None, "acc", vec![Operand::hdr("key")], Operand::int(1));
        b.forward();
        let p = b.build().unwrap();
        let (opt, diags) = optimize(&p);
        assert_eq!(opt.len(), 2);
        let elim: Vec<_> = diags.iter().filter(|d| d.pass == "dead-value-elim").collect();
        assert_eq!(elim.len(), 1);
        assert!(elim[0].message.contains("eliminated 1 dead instruction(s)"), "{}", elim[0]);
        assert!(elim[0].message.contains("i0"), "removed ids are reported: {}", elim[0]);
    }

    #[test]
    fn live_outs_keep_exported_temporaries() {
        let mut b = ProgramBuilder::new("p");
        b.header("key", ValueType::Bit(32));
        b.array("acc", 1, 16, 32);
        b.assign("exported", Operand::hdr("key"));
        b.count(None, "acc", vec![Operand::hdr("key")], Operand::int(1));
        b.forward();
        let p = b.build().unwrap();
        let mut out = DiagnosticSet::new();
        let opt = Optimizer::with_default_passes()
            .with_live_outs(["exported".to_string()])
            .optimize("u0", false, &p, &mut out);
        assert_eq!(opt.len(), 3, "exported temporary survives: {}", opt.dump());
    }

    #[test]
    fn shared_guard_predicates_hoist_into_the_precondition() {
        let user = Predicate::new(Operand::Meta("inc_user".into()), CmpOp::Eq, Operand::int(7));
        let mut b = ProgramBuilder::new("p");
        b.header("op", ValueType::Bit(32));
        b.array("acc", 1, 16, 32);
        b.guarded(user.clone(), |b| {
            b.count(None, "acc", vec![Operand::int(0)], Operand::int(1));
        });
        b.guarded(user.clone(), |b| {
            b.guarded(Predicate::new(Operand::hdr("op"), CmpOp::Eq, Operand::int(1)), |b| {
                b.count(None, "acc", vec![Operand::int(1)], Operand::int(1));
            });
        });
        let p = b.build().unwrap();
        let (opt, diags) = optimize(&p);
        assert_eq!(opt.precondition, Some(Guard::single(user)));
        assert!(opt.instructions[0].guard.is_none(), "fully hoisted guard drops");
        assert_eq!(
            opt.instructions[1].guard.as_ref().map(|g| g.all.len()),
            Some(1),
            "per-instruction remainder stays"
        );
        assert!(diags.iter().any(|d| d.pass == "guard-hoist"), "{diags}");
        assert!(opt.validate().is_ok());
    }

    #[test]
    fn unguarded_instruction_blocks_hoisting() {
        let user = Predicate::new(Operand::Meta("inc_user".into()), CmpOp::Eq, Operand::int(7));
        let mut b = ProgramBuilder::new("p");
        b.array("acc", 1, 16, 32);
        b.guarded(user, |b| {
            b.count(None, "acc", vec![Operand::int(0)], Operand::int(1));
        });
        b.forward(); // unguarded: must keep running for every packet
        let p = b.build().unwrap();
        let (opt, _) = optimize(&p);
        assert_eq!(opt.precondition, None);
    }

    #[test]
    fn header_writes_block_hoisting_their_fields() {
        let hdr = Predicate::new(Operand::hdr("op"), CmpOp::Eq, Operand::int(1));
        let mut b = ProgramBuilder::new("p");
        b.header("op", ValueType::Bit(32));
        b.guarded(hdr.clone(), |b| {
            b.set_header("op", Operand::int(2));
        });
        b.guarded(hdr, |b| {
            b.drop_packet();
        });
        let p = b.build().unwrap();
        let (opt, _) = optimize(&p);
        assert_eq!(opt.precondition, None, "written header field is not invariant");
    }

    #[test]
    fn broken_transforms_fall_back_to_the_original() {
        struct Gut;
        impl TransformPass for Gut {
            fn name(&self) -> &'static str {
                "gut"
            }
            fn run(
                &self,
                program: &mut IrProgram,
                _ctx: &TransformContext<'_>,
                _out: &mut DiagnosticSet,
            ) {
                program.instructions.clear();
            }
        }
        let mut b = ProgramBuilder::new("p");
        b.forward();
        let p = b.build().unwrap();
        let mut opt = Optimizer::new();
        opt.register(Box::new(Gut));
        let mut out = DiagnosticSet::new();
        let result = opt.optimize("u0", false, &p, &mut out);
        assert_eq!(result, p, "structural failure falls back");
        assert!(out.iter().any(|d| d.pass == "optimizer"), "{out}");
    }

    #[test]
    fn default_pipeline_order_is_stable() {
        assert_eq!(
            Optimizer::with_default_passes().pass_names(),
            vec!["const-fold", "dead-value-elim", "guard-hoist"]
        );
    }
}
