//! User isolation: renaming and traffic filtering (paper §6 "Compiler Backend").
//!
//! "ClickINC first isolates user programs from each other and the base program.
//! It renames variables in the user programs, so that after compilation their
//! programs access isolated memory regions [...] Then it adds a user ID match to
//! filter out the user's traffic for its own program."

use clickinc_ir::{CmpOp, Guard, IrProgram, OpCode, Operand, Predicate};

/// Rewrite a user program so every object, temporary variable and owner
/// annotation is prefixed with the user id, and every instruction is guarded by
/// a match on the user's INC header id (`meta.inc_user == user_numeric_id`).
///
/// Returns the isolated program; the original is not modified.
pub fn isolate_user_program(program: &IrProgram, user: &str, user_numeric_id: i64) -> IrProgram {
    let prefix = format!("{user}_");
    let rename_var = |v: &str| -> String {
        if v.starts_with(&prefix) {
            v.to_string()
        } else {
            format!("{prefix}{v}")
        }
    };
    let rename_obj = rename_var;

    let mut out = IrProgram::new(user);
    out.headers = program.headers.clone();
    out.objects = program
        .objects
        .iter()
        .map(|o| {
            let mut o = o.clone();
            o.name = rename_obj(&o.name);
            o.owner = Some(user.to_string());
            o
        })
        .collect();

    let user_match =
        Predicate::new(Operand::Meta("inc_user".into()), CmpOp::Eq, Operand::int(user_numeric_id));

    out.instructions = program
        .instructions
        .iter()
        .map(|instr| {
            let mut instr = instr.clone();
            rewrite_opcode(&mut instr.op, &rename_var);
            if let Some(guard) = &mut instr.guard {
                for p in &mut guard.all {
                    rewrite_operand(&mut p.lhs, &rename_var);
                    rewrite_operand(&mut p.rhs, &rename_var);
                }
            }
            // prepend the user-ID match so only this user's traffic triggers the
            // snippet
            let mut guard = instr.guard.take().unwrap_or_default();
            guard.all.insert(0, user_match.clone());
            instr.guard = Some(guard);
            instr.owners = vec![user.to_string()];
            instr
        })
        .collect();
    out
}

fn rewrite_operand(op: &mut Operand, rename: &impl Fn(&str) -> String) {
    if let Operand::Var(v) = op {
        *v = rename(v);
    }
}

fn rewrite_operands(ops: &mut [Operand], rename: &impl Fn(&str) -> String) {
    for op in ops {
        rewrite_operand(op, rename);
    }
}

fn rewrite_opcode(op: &mut OpCode, rename: &impl Fn(&str) -> String) {
    match op {
        OpCode::Assign { dest, src } => {
            *dest = rename(dest);
            rewrite_operand(src, rename);
        }
        OpCode::Alu { dest, lhs, rhs, .. } => {
            *dest = rename(dest);
            rewrite_operand(lhs, rename);
            rewrite_operand(rhs, rename);
        }
        OpCode::Cmp { dest, lhs, rhs, .. } => {
            *dest = rename(dest);
            rewrite_operand(lhs, rename);
            rewrite_operand(rhs, rename);
        }
        OpCode::Hash { dest, object, keys } => {
            *dest = rename(dest);
            *object = rename(object);
            rewrite_operands(keys, rename);
        }
        OpCode::ReadState { dest, object, index } => {
            *dest = rename(dest);
            *object = rename(object);
            rewrite_operands(index, rename);
        }
        OpCode::WriteState { object, index, value } => {
            *object = rename(object);
            rewrite_operands(index, rename);
            rewrite_operands(value, rename);
        }
        OpCode::CountState { dest, object, index, delta } => {
            if let Some(d) = dest {
                *d = rename(d);
            }
            *object = rename(object);
            rewrite_operands(index, rename);
            rewrite_operand(delta, rename);
        }
        OpCode::ClearState { object } => *object = rename(object),
        OpCode::DeleteState { object, index } => {
            *object = rename(object);
            rewrite_operands(index, rename);
        }
        OpCode::Crypto { dest, object, input, .. } => {
            *dest = rename(dest);
            *object = rename(object);
            rewrite_operand(input, rename);
        }
        OpCode::RandInt { dest, bound } => {
            *dest = rename(dest);
            rewrite_operand(bound, rename);
        }
        OpCode::Checksum { dest, inputs } => {
            *dest = rename(dest);
            rewrite_operands(inputs, rename);
        }
        OpCode::Back { updates } | OpCode::Mirror { updates } => {
            for (_, v) in updates {
                rewrite_operand(v, rename);
            }
        }
        OpCode::Multicast { group } => rewrite_operand(group, rename),
        OpCode::CopyTo { values, .. } => rewrite_operands(values, rename),
        OpCode::SetHeader { value, .. } => rewrite_operand(value, rename),
        OpCode::Drop | OpCode::Forward | OpCode::NoOp => {}
    }
}

/// Convenience: the user-ID guard alone (used by the backends when emitting the
/// `if (INC_<n>_hdr.isValid())` style traffic filter).
pub fn user_guard(user_numeric_id: i64) -> Guard {
    Guard::single(Predicate::new(
        Operand::Meta("inc_user".into()),
        CmpOp::Eq,
        Operand::int(user_numeric_id),
    ))
}

/// Rename helper exposed for tests and the incremental module.
pub fn is_owned_name(name: &str, user: &str) -> bool {
    name.starts_with(&format!("{user}_"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_frontend::compile_source;
    use clickinc_lang::templates::{count_min_sketch, kvs_template, KvsParams};

    fn cms_ir(name: &str) -> IrProgram {
        let t = count_min_sketch(name, 3, 1024);
        compile_source(name, &t.source).unwrap()
    }

    #[test]
    fn two_instances_of_the_same_template_do_not_share_state() {
        // the §2.2 example: two users deploy the same CMS; naive splicing would
        // make both count into the same memory
        let a = isolate_user_program(&cms_ir("cms"), "userA", 1);
        let b = isolate_user_program(&cms_ir("cms"), "userB", 2);
        let a_objects: Vec<&str> = a.objects.iter().map(|o| o.name.as_str()).collect();
        let b_objects: Vec<&str> = b.objects.iter().map(|o| o.name.as_str()).collect();
        for obj in &a_objects {
            assert!(!b_objects.contains(obj), "object {obj} shared between users");
            assert!(is_owned_name(obj, "userA"));
        }
        // variables are disjoint too
        let a_vars: std::collections::BTreeSet<_> =
            a.read_write_sets().iter().filter_map(|s| s.writes_var.clone()).collect();
        let b_vars: std::collections::BTreeSet<_> =
            b.read_write_sets().iter().filter_map(|s| s.writes_var.clone()).collect();
        assert!(a_vars.is_disjoint(&b_vars));
    }

    #[test]
    fn isolated_programs_still_validate() {
        let isolated = isolate_user_program(&cms_ir("cms"), "kvs_0", 7);
        assert!(isolated.validate().is_ok(), "{}", isolated.dump());
        assert_eq!(isolated.name, "kvs_0");
        assert!(isolated.owners().contains("kvs_0"));
    }

    #[test]
    fn every_instruction_gets_the_user_id_match() {
        let isolated = isolate_user_program(&cms_ir("cms"), "u", 42);
        for instr in &isolated.instructions {
            let guard = instr.guard.as_ref().expect("every instruction guarded");
            let first = &guard.all[0];
            assert_eq!(first.lhs, Operand::Meta("inc_user".into()));
            assert_eq!(first.rhs, Operand::int(42));
        }
    }

    #[test]
    fn existing_guards_are_preserved_after_the_user_match() {
        let t = kvs_template("kvs", KvsParams::default());
        let ir = compile_source("kvs", &t.source).unwrap();
        let guarded_before = ir.instructions.iter().filter(|i| i.guard.is_some()).count();
        let isolated = isolate_user_program(&ir, "kvs_0", 3);
        for (orig, new) in ir.instructions.iter().zip(&isolated.instructions) {
            let new_len = new.guard.as_ref().unwrap().all.len();
            let orig_len = orig.guard.as_ref().map(|g| g.all.len()).unwrap_or(0);
            assert_eq!(new_len, orig_len + 1);
        }
        assert!(guarded_before > 0);
    }

    #[test]
    fn renaming_is_idempotent() {
        let once = isolate_user_program(&cms_ir("cms"), "u1", 1);
        let twice = isolate_user_program(&once, "u1", 1);
        let names_once: Vec<_> = once.objects.iter().map(|o| o.name.clone()).collect();
        let names_twice: Vec<_> = twice.objects.iter().map(|o| o.name.clone()).collect();
        assert_eq!(names_once, names_twice, "no double prefixing");
    }

    #[test]
    fn user_guard_shape() {
        let g = user_guard(9);
        assert_eq!(g.all.len(), 1);
        assert_eq!(g.all[0].op, CmpOp::Eq);
    }
}
