//! Flow-level sharding and bounded-ingress guarantees:
//!
//! 1. **Flow-sharding invariance** — a flow-sharded tenant's merged counter
//!    totals (goodput, hit ratio, per-link bytes, every aggregate) at 1, 2
//!    and 8 shards equal the `ByTenant` totals, and the flow-partitioned
//!    stores re-merge to the same fingerprints — property-tested over random
//!    workload shapes.
//! 2. **Live add/remove** — a flow-sharded tenant quiesces on *every* shard:
//!    its objects vanish from every replica, post-removal traffic is shed
//!    silently, and co-resident tenants are bit-for-bit undisturbed.
//! 3. **Bounded ingress** — drop-tail sheds exactly the overrun of the
//!    per-shard bound; backpressure spends credits instead and sheds only
//!    when they run out.  Both are deterministic at the injection boundary
//!    and observable in the per-tenant telemetry.

use clickinc_device::DeviceModel;
use clickinc_frontend::compile_source;
use clickinc_ir::Value;
use clickinc_lang::templates::{kvs_template, KvsParams};
use clickinc_runtime::workload::{KvsWorkload, KvsWorkloadConfig};
use clickinc_runtime::{
    EngineConfig, OverloadPolicy, ShardingMode, TenantHop, TenantStats, TrafficEngine,
};
use clickinc_synthesis::isolate_user_program;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn kvs_tenant(name: &str, id: i64, cache_depth: u32) -> Vec<TenantHop> {
    let t = kvs_template(name, KvsParams { cache_depth, ..Default::default() });
    let ir = compile_source(name, &t.source).unwrap();
    vec![TenantHop {
        device: "tor0".to_string(),
        model: DeviceModel::tofino(),
        snippets: vec![isolate_user_program(&ir, name, id)],
    }]
}

fn by_key() -> ShardingMode {
    ShardingMode::ByFlow { key_fields: vec!["key".to_string()] }
}

fn populate_cache(handle: &clickinc_runtime::EngineHandle, name: &str, hot_keys: i64) {
    for key in 0..hot_keys {
        handle.populate_table(
            name,
            "tor0",
            &format!("{name}_cache"),
            vec![Value::Int(key)],
            vec![Value::Int(key * 1000 + 7)],
        );
    }
}

/// Run one KVS tenant to completion and return its stats plus the final
/// store fingerprints.
fn run_kvs(
    shards: usize,
    mode: ShardingMode,
    keys: usize,
    requests: usize,
    hot_keys: i64,
    seed: u64,
) -> (TenantStats, BTreeMap<String, u64>) {
    let engine = TrafficEngine::new(EngineConfig { shards, batch_size: 32, ..Default::default() });
    let handle = engine.handle();
    handle.add_tenant_sharded("hot", kvs_tenant("hot", 1, 4096), mode);
    populate_cache(&handle, "hot", hot_keys);
    let mut wl = KvsWorkload::new(KvsWorkloadConfig {
        tenant: "hot".to_string(),
        user_id: 1,
        keys,
        skew: 1.1,
        requests,
        rate_pps: 10_000_000.0,
        seed,
    });
    let report = handle.run_workload(&mut wl, usize::MAX, 48);
    assert_eq!(report.shed, 0, "ample default queues shed nothing");
    handle.flush();
    let outcome = engine.finish();
    let fingerprints = outcome.stores.iter().map(|(d, s)| (d.clone(), s.fingerprint())).collect();
    (outcome.telemetry.tenant("hot").expect("served").clone(), fingerprints)
}

/// The cross-mode comparable view: everything except the per-counter-block
/// vector (whose length tracks the engine sizing by design).
fn normalized(mut stats: TenantStats) -> TenantStats {
    stats.per_shard_packets.clear();
    stats
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The satellite invariant: the union of per-shard merged counters under
    /// `ByFlow` at 1/2/8 shards equals the `ByTenant` totals — goodput, hit
    /// ratio, per-link bytes and all — and the flow-partitioned stores
    /// re-merge to the `ByTenant` fingerprints.
    #[test]
    fn flow_sharded_totals_equal_by_tenant_totals(
        keys in 200usize..800,
        requests in 100usize..400,
        hot in 16i64..96,
        seed in 0u64..1000,
    ) {
        let (baseline, stores_baseline) =
            run_kvs(1, ShardingMode::ByTenant, keys, requests, hot, seed);
        prop_assert_eq!(baseline.packets, requests as u64);
        let baseline = normalized(baseline);
        for shards in [1usize, 2, 8] {
            let (stats, stores) = run_kvs(shards, by_key(), keys, requests, hot, seed);
            let stats = normalized(stats);
            prop_assert_eq!(&stats, &baseline, "ByFlow totals diverged at {} shard(s)", shards);
            prop_assert_eq!(&stores, &stores_baseline, "stores diverged at {} shard(s)", shards);
        }
    }
}

/// Run the same KVS tenant, but live-reshard it mid-workload following
/// `schedule`: the request stream is cut into `schedule.len() + 1` equal
/// phases with one mode transition applied between consecutive phases.
fn run_kvs_resharding(
    shards: usize,
    schedule: &[ShardingMode],
    keys: usize,
    requests: usize,
    hot_keys: i64,
    seed: u64,
) -> (TenantStats, BTreeMap<String, u64>) {
    let engine = TrafficEngine::new(EngineConfig { shards, batch_size: 32, ..Default::default() });
    let handle = engine.handle();
    handle.add_tenant("hot", kvs_tenant("hot", 1, 4096));
    populate_cache(&handle, "hot", hot_keys);
    let mut wl = KvsWorkload::new(KvsWorkloadConfig {
        tenant: "hot".to_string(),
        user_id: 1,
        keys,
        skew: 1.1,
        requests,
        rate_pps: 10_000_000.0,
        seed,
    });
    let chunk = (requests / (schedule.len() + 1)).max(1);
    for mode in schedule {
        let report = handle.run_workload(&mut wl, chunk, 48);
        assert_eq!(report.shed, 0, "ample default queues shed nothing");
        assert!(handle.reshard_tenant("hot", mode.clone()), "reshard applies live");
    }
    let report = handle.run_workload(&mut wl, usize::MAX, 48);
    assert_eq!(report.shed, 0, "ample default queues shed nothing");
    handle.flush();
    let outcome = engine.finish();
    let fingerprints = outcome.stores.iter().map(|(d, s)| (d.clone(), s.fingerprint())).collect();
    (outcome.telemetry.tenant("hot").expect("served").clone(), fingerprints)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The adaptive-runtime safety invariant: live-resharding
    /// `ByTenant → ByFlow` mid-workload — and optionally back again — yields
    /// bit-identical per-tenant totals and store fingerprints to never
    /// resharding at all.
    #[test]
    fn live_resharding_mid_workload_preserves_results_bit_identically(
        keys in 200usize..800,
        requests in 100usize..400,
        hot in 16i64..96,
        seed in 0u64..1000,
        shard_choice in 0usize..3,
        and_back in any::<bool>(),
    ) {
        let shards = [2usize, 4, 8][shard_choice];
        let (baseline, stores_baseline) =
            run_kvs(shards, ShardingMode::ByTenant, keys, requests, hot, seed);
        let baseline = normalized(baseline);
        let schedule: Vec<ShardingMode> = if and_back {
            vec![by_key(), ShardingMode::ByTenant]
        } else {
            vec![by_key()]
        };
        let (stats, stores) = run_kvs_resharding(shards, &schedule, keys, requests, hot, seed);
        prop_assert_eq!(
            normalized(stats), baseline,
            "resharded totals diverged (shards={}, and_back={})", shards, and_back
        );
        prop_assert_eq!(
            &stores, &stores_baseline,
            "resharded stores diverged (shards={}, and_back={})", shards, and_back
        );
    }
}

/// Run a `ByTenant` resident alongside a second tenant; in the disrupted
/// variant the neighbour is live-resharded twice mid-run.
fn run_resident_beside_resharding_neighbour(disrupt: bool) -> clickinc_runtime::TelemetryReport {
    let engine =
        TrafficEngine::new(EngineConfig { shards: 4, batch_size: 16, ..Default::default() });
    let handle = engine.handle();
    handle.add_tenant("resident", kvs_tenant("resident", 1, 2048));
    populate_cache(&handle, "resident", 64);
    handle.add_tenant("neighbour", kvs_tenant("neighbour", 2, 2048));
    populate_cache(&handle, "neighbour", 32);
    let mut resident = KvsWorkload::new(KvsWorkloadConfig {
        tenant: "resident".to_string(),
        user_id: 1,
        keys: 500,
        skew: 1.2,
        requests: 900,
        rate_pps: 10_000_000.0,
        seed: 5,
    });
    let mut neighbour = KvsWorkload::new(KvsWorkloadConfig {
        tenant: "neighbour".to_string(),
        user_id: 2,
        keys: 300,
        skew: 1.1,
        requests: 400,
        rate_pps: 10_000_000.0,
        seed: 6,
    });
    handle.run_workload(&mut resident, 300, 64);
    handle.run_workload(&mut neighbour, 200, 64);
    if disrupt {
        assert!(handle.reshard_tenant("neighbour", by_key()));
    }
    handle.run_workload(&mut neighbour, 100, 64);
    handle.run_workload(&mut resident, 300, 64);
    if disrupt {
        assert!(handle.reshard_tenant("neighbour", ShardingMode::ByTenant));
    }
    handle.run_workload(&mut neighbour, usize::MAX, 64);
    handle.run_workload(&mut resident, usize::MAX, 64);
    handle.flush();
    let outcome = engine.finish();
    outcome.telemetry
}

#[test]
fn live_resharding_leaves_co_resident_telemetry_undisturbed() {
    let disrupted = run_resident_beside_resharding_neighbour(true);
    let quiet = run_resident_beside_resharding_neighbour(false);
    assert_eq!(
        disrupted.tenant("resident"),
        quiet.tenant("resident"),
        "the co-resident tenant never noticed the neighbour's reshards"
    );
    // and the resharded tenant itself ends with the same totals either way
    let a = normalized(disrupted.tenant("neighbour").expect("served").clone());
    let b = normalized(quiet.tenant("neighbour").expect("served").clone());
    assert_eq!(a, b, "resharding changed the neighbour's own results");
}

#[test]
fn a_flow_sharded_hot_tenant_actually_uses_multiple_shards() {
    let (stats, _) = run_kvs(8, by_key(), 600, 400, 64, 11);
    let utilized = stats.per_shard_packets.iter().filter(|&&p| p > 0).count();
    assert_eq!(stats.per_shard_packets.len(), 8, "one counter block per shard");
    assert!(utilized > 1, "one hot tenant spreads past one shard: {:?}", stats.per_shard_packets);
    assert_eq!(stats.per_shard_packets.iter().sum::<u64>(), stats.packets);
}

/// Drive a co-resident `ByTenant` tenant in phases; in the middle phase
/// optionally add a flow-sharded tenant on the same device, run its traffic,
/// and remove it again.
fn run_phased(disrupt: bool) -> clickinc_runtime::TelemetryReport {
    let engine =
        TrafficEngine::new(EngineConfig { shards: 4, batch_size: 16, ..Default::default() });
    let handle = engine.handle();
    handle.add_tenant("resident", kvs_tenant("resident", 1, 2048));
    populate_cache(&handle, "resident", 64);
    let mut resident = KvsWorkload::new(KvsWorkloadConfig {
        tenant: "resident".to_string(),
        user_id: 1,
        keys: 500,
        skew: 1.2,
        requests: 900,
        rate_pps: 10_000_000.0,
        seed: 5,
    });

    handle.run_workload(&mut resident, 300, 64);

    if disrupt {
        handle.add_tenant_sharded("burst", kvs_tenant("burst", 2, 2048), by_key());
        populate_cache(&handle, "burst", 32);
        let mut burst = KvsWorkload::new(KvsWorkloadConfig {
            tenant: "burst".to_string(),
            user_id: 2,
            keys: 300,
            skew: 1.1,
            requests: 400,
            rate_pps: 10_000_000.0,
            seed: 6,
        });
        let report = handle.run_workload(&mut burst, usize::MAX, 64);
        assert_eq!(report.admitted, 400);
        handle.remove_tenant("burst");
        // traffic injected after the removal is shed silently on every shard
        let mut late = KvsWorkload::new(KvsWorkloadConfig {
            tenant: "burst".to_string(),
            user_id: 2,
            keys: 300,
            skew: 1.1,
            requests: 100,
            rate_pps: 10_000_000.0,
            seed: 7,
        });
        handle.run_workload(&mut late, usize::MAX, 64);
    }

    handle.run_workload(&mut resident, usize::MAX, 64);
    handle.flush();
    let outcome = engine.finish();
    if disrupt {
        // the flow-sharded tenant's objects are gone from every shard replica
        for store in outcome.stores.values() {
            assert!(!store.contains("burst_cache"), "burst state must quiesce on every shard");
        }
    }
    outcome.telemetry
}

#[test]
fn flow_sharded_tenants_quiesce_on_every_shard_without_disturbing_residents() {
    let disrupted = run_phased(true);
    let quiet = run_phased(false);

    let burst = disrupted.tenant("burst").expect("burst ran");
    assert_eq!(burst.packets, 400, "pre-removal traffic was served");
    assert!(burst.hits > 0, "the flow-sharded tenant hit its cache");
    let utilized = burst.per_shard_packets.iter().filter(|&&p| p > 0).count();
    assert!(utilized > 1, "burst really spread across shards");

    assert_eq!(
        disrupted.tenant("resident"),
        quiet.tenant("resident"),
        "the co-resident tenant never noticed the flow-sharded add/remove"
    );
}

#[test]
fn droptail_sheds_exactly_the_overrun_at_the_injection_boundary() {
    let engine = TrafficEngine::new(EngineConfig {
        shards: 1,
        batch_size: 16,
        queue_capacity: 10,
        overload: OverloadPolicy::DropTail,
        ..Default::default()
    });
    let handle = engine.handle();
    // pass-through tenant: no hops, packets complete at the server
    handle.add_tenant("t", Vec::new());
    let mut wl = KvsWorkload::new(KvsWorkloadConfig {
        tenant: "t".to_string(),
        user_id: 1,
        requests: 100,
        ..Default::default()
    });
    // one inject call of 100 packets against an empty 10-deep queue: the
    // first 10 are admitted, the rest shed — deterministically
    let report = handle.run_workload(&mut wl, usize::MAX, 100);
    assert_eq!((report.generated, report.admitted, report.shed), (100, 10, 90));
    handle.flush();
    let outcome = engine.finish();
    let stats = outcome.telemetry.tenant("t").expect("served");
    assert_eq!(stats.packets, 10, "only admitted packets count as injected");
    assert_eq!(stats.completed, 10);
    assert_eq!(stats.shed_packets, 90);
    assert_eq!(stats.to_server, 10);
}

#[test]
fn backpressure_spends_credits_then_sheds_the_rest() {
    let engine = TrafficEngine::new(EngineConfig {
        shards: 1,
        batch_size: 16,
        queue_capacity: 10,
        overload: OverloadPolicy::Backpressure { credits: 3 },
        ..Default::default()
    });
    let handle = engine.handle();
    handle.add_tenant("t", Vec::new());
    let mut wl = KvsWorkload::new(KvsWorkloadConfig {
        tenant: "t".to_string(),
        user_id: 1,
        requests: 100,
        ..Default::default()
    });
    // one inject call of 100 packets, 10 admitted per credit cycle (each
    // wait drains the shard fully): 10 + 3×10 admitted, 60 shed
    let report = handle.run_workload(&mut wl, usize::MAX, 100);
    assert_eq!((report.generated, report.admitted, report.shed), (100, 40, 60));
    handle.flush();
    let outcome = engine.finish();
    let stats = outcome.telemetry.tenant("t").expect("served");
    assert_eq!(stats.packets, 40);
    assert_eq!(stats.shed_packets, 60);
    assert_eq!(stats.backpressure_waits, 3, "every credit was spent");
    // a generous credit budget admits everything
    let engine = TrafficEngine::new(EngineConfig {
        shards: 1,
        batch_size: 16,
        queue_capacity: 10,
        overload: OverloadPolicy::Backpressure { credits: 16 },
        ..Default::default()
    });
    let handle = engine.handle();
    handle.add_tenant("t", Vec::new());
    let mut wl = KvsWorkload::new(KvsWorkloadConfig {
        tenant: "t".to_string(),
        user_id: 1,
        requests: 100,
        ..Default::default()
    });
    let report = handle.run_workload(&mut wl, usize::MAX, 100);
    assert_eq!((report.admitted, report.shed), (100, 0));
    handle.flush();
    engine.finish();
}
