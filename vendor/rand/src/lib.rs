//! Offline stand-in for `rand` (see `vendor/README.md`).
//!
//! Provides the subset of the rand 0.8 API the workspace uses: a seedable
//! `StdRng` (splitmix64 — statistically fine for workload generation, not
//! cryptographic), `Rng::gen_range` over half-open ranges, and
//! `Rng::gen_bool`.

use std::ops::Range;

pub mod prelude {
    pub use crate::{rngs::StdRng, Rng, RngCore, SeedableRng};
}

pub mod rngs {
    /// Splitmix64-based deterministic RNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        // splitmix64 (Vigna)
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed ^ 0x5DEE_CE66_D1CE_4E5B }
    }
}

pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample(self, range.start, range.end)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform in [0, 1)
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types `gen_range` can sample uniformly.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + unit_f64(rng.next_u64()) as $t * (hi - lo)
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = a.gen_range(1..100);
            assert_eq!(x, b.gen_range(1..100));
            assert!((1..100).contains(&x));
            let f = a.gen_range(0.0..3.5);
            assert_eq!(f, b.gen_range(0.0..3.5));
            assert!((0.0..3.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        let mut rng = StdRng::seed_from_u64(42);
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
    }
}
