//! Control-loop thresholds and per-epoch telemetry deltas.

use crate::telemetry::TelemetryReport;
use std::collections::BTreeMap;

/// Thresholds governing when the [`AdaptiveController`] acts.
///
/// The defaults are deliberately conservative: a tenant must offer a
/// meaningful amount of traffic in an epoch before its congestion ratios are
/// trusted, and every reshard is followed by a cooldown so the loop cannot
/// flap between modes on a single noisy epoch.
///
/// [`AdaptiveController`]: crate::adaptive::AdaptiveController
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivePolicy {
    /// Ignore tenants that offered fewer packets than this in an epoch —
    /// their ratios are too noisy to act on.
    pub min_epoch_packets: u64,
    /// Congestion ratio (sheds + backpressure waits per offered packet)
    /// above which a tenant counts as saturated.
    pub congestion_saturation: f64,
    /// Queue high-water mark as a fraction of `queue_capacity` above which a
    /// tenant counts as saturated even without sheds.
    pub hwm_saturation: f64,
    /// Epochs a tenant is left alone after a reshard before the loop may
    /// reshard it again.
    pub cooldown_epochs: u64,
    /// Consecutive saturated epochs (with resharding and budget resizing
    /// already exhausted) before a [`Replan`](crate::adaptive::AdaptAction::Replan)
    /// is emitted.
    pub replan_epochs: u64,
    /// Minimum per-tenant ingress budget the fair-share rebalance may assign.
    pub budget_floor: u64,
    /// Consecutive idle epochs (zero offered packets) after which a tenant
    /// the loop had flow-sharded is consolidated back to `ByTenant`,
    /// releasing its per-shard replicas.  `0` disables reclamation.
    pub reclaim_idle_epochs: u64,
    /// Packets lost to a device fault in one epoch at which a
    /// [`Replan`](crate::adaptive::AdaptAction::Replan) fires *immediately*
    /// — fault losses mean a device on the tenant's route is dead or
    /// dropping, which congestion levers (resharding, budgets) cannot fix,
    /// so the escalation ladder and its cooldowns are bypassed.  `0`
    /// disables the fault trigger.
    pub fault_replan_lost: u64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            min_epoch_packets: 64,
            congestion_saturation: 0.05,
            hwm_saturation: 0.9,
            cooldown_epochs: 1,
            replan_epochs: 3,
            budget_floor: 16,
            reclaim_idle_epochs: 0,
            fault_replan_lost: 1,
        }
    }
}

/// One tenant's telemetry movement between two snapshots.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TenantDelta {
    /// Packets admitted this epoch.
    pub packets: u64,
    /// Packets completed this epoch.
    pub completed: u64,
    /// Packets shed at ingress this epoch.
    pub shed: u64,
    /// Backpressure wait cycles spent this epoch.
    pub backpressure_waits: u64,
    /// Queue-depth high-water mark as of the newer snapshot (a lifetime
    /// maximum, not a delta).
    pub queue_depth_hwm: u64,
    /// Packets lost to injected device faults this epoch.
    pub fault_lost: u64,
}

impl TenantDelta {
    /// Packets the tenant offered this epoch: admitted plus shed.
    pub fn offered(&self) -> u64 {
        self.packets + self.shed
    }
}

/// The per-tenant deltas between two telemetry snapshots, ordered by their
/// sequence numbers.  Tenants absent from the older snapshot contribute
/// their full counters (they appeared this epoch).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochDelta {
    /// Sequence number of the older snapshot.
    pub from_seq: u64,
    /// Sequence number of the newer snapshot.
    pub to_seq: u64,
    /// Virtual nanoseconds the newer snapshot advanced past the older one.
    pub vtime_delta_ns: u64,
    /// Per-tenant movement.
    pub tenants: BTreeMap<String, TenantDelta>,
}

impl EpochDelta {
    /// Compute the movement from `prev` to `next`.  Counters are monotone,
    /// so saturating subtraction is exact; a tenant missing from `prev`
    /// yields its full counters.
    pub fn between(prev: &TelemetryReport, next: &TelemetryReport) -> EpochDelta {
        let tenants = next
            .tenants
            .iter()
            .map(|(name, now)| {
                let before = prev.tenants.get(name);
                let sub = |now_v: u64, before_v: fn(&crate::telemetry::TenantStats) -> u64| {
                    now_v.saturating_sub(before.map(before_v).unwrap_or(0))
                };
                let delta = TenantDelta {
                    packets: sub(now.packets, |s| s.packets),
                    completed: sub(now.completed, |s| s.completed),
                    shed: sub(now.shed_packets, |s| s.shed_packets),
                    backpressure_waits: sub(now.backpressure_waits, |s| s.backpressure_waits),
                    queue_depth_hwm: now.queue_depth_hwm,
                    fault_lost: sub(now.fault_lost_packets, |s| s.fault_lost_packets),
                };
                (name.clone(), delta)
            })
            .collect();
        EpochDelta {
            from_seq: prev.snapshot_seq,
            to_seq: next.snapshot_seq,
            vtime_delta_ns: next.vtime_ns.saturating_sub(prev.vtime_ns),
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{TelemetryRegistry, TenantCounters};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    fn registry_with(tenant: &str) -> (TelemetryRegistry, Arc<TenantCounters>) {
        let registry = TelemetryRegistry::default();
        let counters = Arc::new(TenantCounters::new(1));
        registry.register(tenant, Arc::clone(&counters));
        (registry, counters)
    }

    #[test]
    fn deltas_subtract_counters_between_snapshots() {
        let (registry, counters) = registry_with("t");
        counters.packets.fetch_add(10, Ordering::Relaxed);
        counters.shed.fetch_add(2, Ordering::Relaxed);
        let first = registry.snapshot();
        counters.packets.fetch_add(5, Ordering::Relaxed);
        counters.shed.fetch_add(1, Ordering::Relaxed);
        counters.backpressure_waits.fetch_add(4, Ordering::Relaxed);
        counters.queue_depth_hwm.fetch_max(33, Ordering::Relaxed);
        counters.record_completion(100.0, 2_000);
        counters.note_fault_loss(1_500);
        counters.note_fault_loss(1_600);
        let second = registry.snapshot();

        let delta = EpochDelta::between(&first, &second);
        assert_eq!(delta.from_seq + 1, delta.to_seq);
        assert_eq!(delta.vtime_delta_ns, 2_100);
        let t = &delta.tenants["t"];
        assert_eq!(t.packets, 5);
        assert_eq!(t.shed, 1);
        assert_eq!(t.backpressure_waits, 4);
        assert_eq!(t.completed, 1);
        assert_eq!(t.fault_lost, 2);
        assert_eq!(t.queue_depth_hwm, 33, "hwm is the newer snapshot's maximum");
        assert_eq!(t.offered(), 6);
    }

    #[test]
    fn tenants_appearing_mid_run_contribute_their_full_counters() {
        let registry = TelemetryRegistry::default();
        let first = registry.snapshot();
        let counters = Arc::new(TenantCounters::new(1));
        counters.packets.fetch_add(7, Ordering::Relaxed);
        registry.register("late", counters);
        let second = registry.snapshot();
        let delta = EpochDelta::between(&first, &second);
        assert_eq!(delta.tenants["late"].packets, 7);
    }
}
