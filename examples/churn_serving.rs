//! Tenant-churn demo: 1000 arrivals cycle through a capped resident set
//! while the engine serves traffic.
//!
//! The arrivals reuse a small pool of program shapes under fresh tenant
//! names, so after the first lap the placement memo answers every
//! segment-allocation subproblem from cache — the per-admission latency
//! collapses from the cold opening to a sub-millisecond steady state.  The
//! resident cap keeps the admission pipeline reactive: refused arrivals
//! park in the retry queue and are admitted — highest priority first — by
//! the departures' auto-drain.
//!
//! Run with: `cargo run --release --example churn_serving`
//!
//! Set `CHURN_TENANTS` to change the arrival count (default 1000).

use clickinc_apps::churn::{run_churn_scenario, ChurnConfig};
use std::time::Instant;

fn main() {
    let tenants =
        std::env::var("CHURN_TENANTS").ok().and_then(|v| v.parse().ok()).unwrap_or(1000usize);
    let config = ChurnConfig { tenants, ..Default::default() };
    println!(
        "=== Tenant churn: {} arrivals over a {}-resident cap, {} program shapes ===\n",
        config.tenants, config.resident_cap, config.shape_pool
    );

    let started = Instant::now();
    let report = run_churn_scenario(&config).expect("churn scenario runs");
    let elapsed = started.elapsed().as_secs_f64();

    println!(
        "admitted {} directly + {} from the retry queue; {} departures, {} still queued, {} \
         failed",
        report.admitted_directly,
        report.admitted_from_queue,
        report.departures,
        report.left_queued,
        report.failed
    );
    println!(
        "admission latency: p50 {:.3} ms | p99 {:.3} ms | mean {:.3} ms",
        report.admit_p50_ms, report.admit_p99_ms, report.admit_mean_ms
    );
    println!(
        "placement memo: {} hits / {} misses ({:.1}% hit ratio)",
        report.solve_cache_hits,
        report.solve_cache_misses,
        report.solve_cache_hit_ratio * 100.0
    );
    println!("served {} packets during the churn", report.packets_served);
    println!("\nwhole scenario: {elapsed:.2}s wall-clock");

    assert!(report.failed == 0, "every churn arrival must place");
    assert!(report.admitted_from_queue > 0, "the retry queue must admit waiters");
    assert!(report.packets_served > 0, "the engine must serve during the churn");
}
