//! Forward taint lattice over header-field provenance, shared by the runtime's
//! flow-sharding decision and the verifier's mutation classification.
//!
//! The lattice tracks, for every variable, which packet header fields its
//! value is derived from: constants, header reads, ALU/compare/hash
//! combinations and reads of stateful objects at already-derivable indices all
//! stay derivable ([`Taint::Fields`]); anything else — metadata besides
//! `inc_user`/`step`, variables imported from outside the analyzed snippets,
//! reads of header fields the program itself rewrote — is [`Taint::Tainted`].
//!
//! [`state_profile`] walks a deployment's snippets once and produces a
//! [`StateProfile`]: the per-access flow-key candidates, every state mutation
//! classified as commutative or not, and the first reason (if any) the
//! deployment is pinned to a single shard.  `clickinc::sharding_mode_for` and
//! the verifier's non-commutative-mutation pass both consume this one
//! analysis, so the runtime can never shard a tenant the verifier would call
//! untearable (or vice versa).

use crate::instr::{Instruction, OpCode, Operand};
use crate::object::{ObjectKind, SketchKind};
use crate::program::IrProgram;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What a variable's value can depend on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Taint {
    /// Derivable from the given packet header fields (possibly none — a
    /// constant) and partition-local state.
    Fields(BTreeSet<String>),
    /// Not derivable from the inject-time packet alone (e.g. imported from
    /// an upstream device's Param export, or read from a header field the
    /// program rewrote).
    Tainted,
}

impl Taint {
    /// Join two lattice points; `Tainted` absorbs.
    pub fn union(self, other: Taint) -> Taint {
        match (self, other) {
            (Taint::Fields(mut a), Taint::Fields(b)) => {
                a.extend(b);
                Taint::Fields(a)
            }
            _ => Taint::Tainted,
        }
    }
}

/// Why a deployment cannot be flow-sharded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PinReason {
    /// A stateful access with a constant index: every packet may touch the
    /// same cell.
    ConstantIndex {
        /// The accessed object.
        object: String,
    },
    /// A stateful access whose index is not derivable from the inject-time
    /// packet.
    TaintedIndex {
        /// The accessed object.
        object: String,
    },
    /// A register/sequence overwrite: no order-free merge exists.
    Overwrite {
        /// The written object.
        object: String,
    },
    /// A data-plane write to a match-action table.
    TableWrite {
        /// The written object.
        object: String,
    },
    /// A data-plane delete.
    Delete {
        /// The deleted-from object.
        object: String,
    },
    /// A data-plane clear of a stateful object (whole-object effect).
    Clear {
        /// The cleared object.
        object: String,
    },
    /// A `randint` draw from the tenant's order-dependent stream.
    RandomDraw,
    /// Stateful accesses with no common key field.
    DisjointKeys,
}

impl fmt::Display for PinReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinReason::ConstantIndex { object } => {
                write!(f, "constant-indexed access to `{object}`")
            }
            PinReason::TaintedIndex { object } => {
                write!(f, "underivable index into `{object}`")
            }
            PinReason::Overwrite { object } => write!(f, "register overwrite of `{object}`"),
            PinReason::TableWrite { object } => write!(f, "data-plane table write to `{object}`"),
            PinReason::Delete { object } => write!(f, "data-plane delete from `{object}`"),
            PinReason::Clear { object } => write!(f, "data-plane clear of `{object}`"),
            PinReason::RandomDraw => write!(f, "randint draw from the tenant stream"),
            PinReason::DisjointKeys => write!(f, "stateful accesses share no key field"),
        }
    }
}

/// The kind of state mutation an instruction performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Counter increment (`count`): sums exactly across partitions.
    Count,
    /// Bloom filter set: ORs exactly across partitions.
    BloomSet,
    /// Register/sequence overwrite: order-dependent, no exact merge.
    Overwrite,
    /// Match-action table write from the data plane.
    TableWrite,
    /// Entry delete.
    Delete,
    /// Whole-object clear.
    Clear,
    /// Random draw advancing the tenant's stream.
    RandomDraw,
}

impl MutationKind {
    /// Whether partitions of this mutation merge exactly in any order.
    pub fn is_commutative(&self) -> bool {
        matches!(self, MutationKind::Count | MutationKind::BloomSet)
    }

    /// Stable lowercase name used in diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            MutationKind::Count => "count",
            MutationKind::BloomSet => "bloom-set",
            MutationKind::Overwrite => "overwrite",
            MutationKind::TableWrite => "table-write",
            MutationKind::Delete => "delete",
            MutationKind::Clear => "clear",
            MutationKind::RandomDraw => "random-draw",
        }
    }
}

/// One classified state mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationRecord {
    /// Name of the snippet (program) containing the mutation.
    pub snippet: String,
    /// Id of the mutating instruction within the snippet.
    pub instr: u32,
    /// The mutated object, if the mutation targets one (`randint` does not).
    pub object: Option<String>,
    /// What the mutation does.
    pub kind: MutationKind,
}

/// How a deployment may be spread over engine shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardingDecision {
    /// No inter-packet state: shard by the full flow identity.
    Stateless,
    /// Every stateful access is keyed by (at least) these header fields:
    /// hashing flows by them co-locates all sharers of any state cell.
    ByKey(Vec<String>),
    /// Pinned to a single shard, for the given reason.
    Pinned(PinReason),
}

/// The result of the taint walk over a deployment's snippets.
#[derive(Debug, Clone, Default)]
pub struct StateProfile {
    /// Per stateful access, the header fields its index derives from.
    pub access_keys: Vec<BTreeSet<String>>,
    /// The first reason (in walk order) the deployment was pinned, if any.
    pub pinned: Option<PinReason>,
    /// Every state mutation, classified.
    pub mutations: Vec<MutationRecord>,
}

impl StateProfile {
    /// Derive the sharding decision: pinned reasons win, then statelessness,
    /// then the intersection of all access keys (empty intersection pins).
    pub fn sharding_decision(&self) -> ShardingDecision {
        if let Some(reason) = &self.pinned {
            return ShardingDecision::Pinned(reason.clone());
        }
        if self.access_keys.is_empty() {
            return ShardingDecision::Stateless;
        }
        let mut keys = self.access_keys.clone();
        let mut common = keys.pop().expect("non-empty");
        for set in keys {
            common = common.intersection(&set).cloned().collect();
        }
        if common.is_empty() {
            ShardingDecision::Pinned(PinReason::DisjointKeys)
        } else {
            ShardingDecision::ByKey(common.into_iter().collect())
        }
    }

    /// The mutations with no order-free merge.
    pub fn non_commutative_mutations(&self) -> impl Iterator<Item = &MutationRecord> {
        self.mutations.iter().filter(|m| !m.kind.is_commutative())
    }
}

struct Walker {
    vars: BTreeMap<String, Taint>,
    rewritten_headers: BTreeSet<String>,
    kinds: BTreeMap<String, ObjectKind>,
    profile: StateProfile,
    snippet: String,
}

impl Walker {
    fn operand_taint(&self, operand: &Operand) -> Taint {
        match operand {
            Operand::Const(_) => Taint::Fields(BTreeSet::new()),
            Operand::Header(field) => {
                if self.rewritten_headers.contains(field) {
                    Taint::Tainted
                } else {
                    Taint::Fields(BTreeSet::from([field.clone()]))
                }
            }
            // `meta.inc_user` is constant per tenant; `meta.step` advances
            // identically for every packet at a given execution point.
            Operand::Meta(field) if field == "inc_user" || field == "step" => {
                Taint::Fields(BTreeSet::new())
            }
            Operand::Meta(_) => Taint::Tainted,
            Operand::Var(name) => self.vars.get(name).cloned().unwrap_or(Taint::Tainted),
        }
    }

    fn operands_taint(&self, operands: &[Operand]) -> Taint {
        operands
            .iter()
            .fold(Taint::Fields(BTreeSet::new()), |acc, op| acc.union(self.operand_taint(op)))
    }

    fn is_stateful(&self, object: &str) -> bool {
        self.kinds.get(object).is_some_and(|k| k.is_stateful())
    }

    fn pin(&mut self, reason: PinReason) {
        if self.profile.pinned.is_none() {
            self.profile.pinned = Some(reason);
        }
    }

    /// Record a read/count access to `object` indexed by `index`.
    /// Non-stateful objects (pure hashes, control-plane tables) constrain
    /// nothing; stateful ones must have a derivable, non-constant index.
    fn record_access(&mut self, object: &str, index: &[Operand]) -> Taint {
        let taint = self.operands_taint(index);
        if self.is_stateful(object) {
            match &taint {
                Taint::Fields(fields) if !fields.is_empty() => {
                    self.profile.access_keys.push(fields.clone());
                }
                // constant or tainted index: every packet may touch the same
                // cell — only safe with all traffic on one shard
                Taint::Fields(_) => self.pin(PinReason::ConstantIndex { object: to_s(object) }),
                Taint::Tainted => self.pin(PinReason::TaintedIndex { object: to_s(object) }),
            }
        }
        taint
    }

    fn assign(&mut self, dest: &str, taint: Taint) {
        self.vars.insert(dest.to_string(), taint);
    }

    fn mutation(&mut self, instr: &Instruction, object: Option<&str>, kind: MutationKind) {
        self.profile.mutations.push(MutationRecord {
            snippet: self.snippet.clone(),
            instr: instr.id.0,
            object: object.map(to_s),
            kind,
        });
    }

    fn analyze(&mut self, instruction: &Instruction) {
        match &instruction.op {
            OpCode::Assign { dest, src } => {
                let taint = self.operand_taint(src);
                self.assign(dest, taint);
            }
            OpCode::Alu { dest, lhs, rhs, .. } | OpCode::Cmp { dest, lhs, rhs, .. } => {
                let taint = self.operand_taint(lhs).union(self.operand_taint(rhs));
                self.assign(dest, taint);
            }
            OpCode::Hash { dest, keys, .. } => {
                let taint = self.operands_taint(keys);
                self.assign(dest, taint);
            }
            OpCode::Checksum { dest, inputs } => {
                let taint = self.operands_taint(inputs);
                self.assign(dest, taint);
            }
            OpCode::Crypto { dest, input, .. } => {
                let taint = self.operand_taint(input);
                self.assign(dest, taint);
            }
            OpCode::ReadState { dest, object, index } => {
                let taint = self.record_access(object, index);
                self.assign(dest, taint);
            }
            OpCode::CountState { dest, object, index, .. } => {
                // a counter increment: commutative, sums exactly across flow
                // partitions even when two flows collide on one cell
                let taint = self.record_access(object, index);
                if self.is_stateful(object) {
                    self.mutation(instruction, Some(object), MutationKind::Count);
                }
                if let Some(dest) = dest {
                    self.assign(dest, taint);
                }
            }
            OpCode::WriteState { object, index, .. } => {
                // overwrites are only mergeable when they are idempotent: a
                // Bloom set ORs exactly.  Register/table overwrites have no
                // order-free merge — two flows colliding on a hash-modulo slot
                // from different shards would tear the cell — so they pin the
                // tenant to one shard.
                match self.kinds.get(object).cloned() {
                    Some(ObjectKind::Sketch { kind: SketchKind::Bloom, .. }) => {
                        self.record_access(object, index);
                        self.mutation(instruction, Some(object), MutationKind::BloomSet);
                    }
                    Some(kind) if kind.is_stateful() => {
                        self.pin(PinReason::Overwrite { object: to_s(object) });
                        self.mutation(instruction, Some(object), MutationKind::Overwrite);
                    }
                    // control-plane-only tables are written by the data plane
                    // in no template, and replicated writes could shadow them:
                    // treat any data-plane write as disqualifying
                    Some(ObjectKind::Table { .. }) => {
                        self.pin(PinReason::TableWrite { object: to_s(object) });
                        self.mutation(instruction, Some(object), MutationKind::TableWrite);
                    }
                    _ => {}
                }
            }
            OpCode::DeleteState { object, .. } => {
                // deleting from a replicated/partitioned object resurrects or
                // tears entries on merge
                if self.kinds.contains_key(object.as_str()) {
                    self.pin(PinReason::Delete { object: to_s(object) });
                    self.mutation(instruction, Some(object), MutationKind::Delete);
                }
            }
            OpCode::ClearState { object } => {
                // a data-plane clear is a whole-object effect: replicas would
                // clear only their own partition
                if self.is_stateful(object) {
                    self.pin(PinReason::Clear { object: to_s(object) });
                    self.mutation(instruction, Some(object), MutationKind::Clear);
                }
            }
            OpCode::RandInt { .. } => {
                // per-tenant draw streams are order-dependent across the
                // whole tenant, not per flow
                self.pin(PinReason::RandomDraw);
                self.mutation(instruction, None, MutationKind::RandomDraw);
            }
            OpCode::SetHeader { field, .. } => {
                self.rewritten_headers.insert(field.clone());
            }
            OpCode::Back { updates } => {
                // `back()` rewrites the live packet's header before bouncing
                // it, and subsequent (guarded) instructions still execute —
                // the same laundering hazard as SetHeader
                for (field, _) in updates {
                    self.rewritten_headers.insert(field.clone());
                }
            }
            OpCode::Drop
            | OpCode::Forward
            | OpCode::Mirror { .. }
            | OpCode::Multicast { .. }
            | OpCode::CopyTo { .. }
            | OpCode::NoOp => {}
        }
    }
}

fn to_s(s: &str) -> String {
    s.to_string()
}

/// Run the taint walk over a deployment's snippets (in deployment order) and
/// return its [`StateProfile`].  Object declarations are collected across all
/// snippets first, so a snippet may reference an object declared by a
/// co-located slice of the same program.
pub fn state_profile(snippets: &[&IrProgram]) -> StateProfile {
    let mut walker = Walker {
        vars: BTreeMap::new(),
        rewritten_headers: BTreeSet::new(),
        kinds: BTreeMap::new(),
        profile: StateProfile::default(),
        snippet: String::new(),
    };
    for snippet in snippets {
        for object in &snippet.objects {
            walker.kinds.entry(object.name.clone()).or_insert_with(|| object.kind.clone());
        }
    }
    for snippet in snippets {
        walker.snippet = snippet.name.clone();
        for instruction in &snippet.instructions {
            walker.analyze(instruction);
        }
    }
    walker.profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::object::{HashAlgo, SketchKind};

    #[test]
    fn keyed_counts_are_commutative_and_keyed() {
        let mut b = ProgramBuilder::new("kvs");
        b.sketch("cms", SketchKind::CountMin, 3, 64, 32);
        b.count(None, "cms", vec![Operand::hdr("key")], Operand::int(1));
        b.forward();
        let p = b.build().unwrap();
        let profile = state_profile(&[&p]);
        assert_eq!(profile.pinned, None);
        assert_eq!(profile.sharding_decision(), ShardingDecision::ByKey(vec!["key".to_string()]));
        assert_eq!(profile.mutations.len(), 1);
        assert!(profile.mutations[0].kind.is_commutative());
        assert_eq!(profile.non_commutative_mutations().count(), 0);
    }

    #[test]
    fn register_overwrite_pins_and_classifies() {
        let mut b = ProgramBuilder::new("agg");
        b.array("reg", 1, 64, 32);
        b.write("reg", vec![Operand::hdr("key")], vec![Operand::hdr("seq")]);
        b.forward();
        let p = b.build().unwrap();
        let profile = state_profile(&[&p]);
        assert_eq!(profile.pinned, Some(PinReason::Overwrite { object: "reg".into() }));
        assert!(matches!(profile.sharding_decision(), ShardingDecision::Pinned(_)));
        assert_eq!(profile.non_commutative_mutations().count(), 1);
        assert_eq!(profile.mutations[0].kind, MutationKind::Overwrite);
    }

    #[test]
    fn walk_continues_past_a_pin_and_keeps_the_first_reason() {
        let mut b = ProgramBuilder::new("p");
        b.array("a", 1, 8, 32);
        b.array("b", 1, 8, 32);
        b.count(None, "a", vec![Operand::int(0)], Operand::int(1)); // pins: constant index
        b.write("b", vec![Operand::hdr("k")], vec![Operand::int(1)]); // later overwrite still classified
        let p = b.build().unwrap();
        let profile = state_profile(&[&p]);
        assert_eq!(profile.pinned, Some(PinReason::ConstantIndex { object: "a".into() }));
        assert_eq!(profile.mutations.len(), 2, "mutations after the pin are still recorded");
    }

    #[test]
    fn stateless_and_disjoint_key_decisions() {
        let mut b = ProgramBuilder::new("fwd");
        b.forward();
        let p = b.build().unwrap();
        assert_eq!(state_profile(&[&p]).sharding_decision(), ShardingDecision::Stateless);

        let mut b = ProgramBuilder::new("dj");
        b.array("a", 1, 8, 32);
        b.array("b", 1, 8, 32);
        b.count(None, "a", vec![Operand::hdr("key")], Operand::int(1));
        b.count(None, "b", vec![Operand::hdr("seq")], Operand::int(1));
        let p = b.build().unwrap();
        assert_eq!(
            state_profile(&[&p]).sharding_decision(),
            ShardingDecision::Pinned(PinReason::DisjointKeys)
        );
    }

    #[test]
    fn hash_objects_stay_pure_and_propagate_fields() {
        let mut b = ProgramBuilder::new("p");
        b.hash_fn("h", HashAlgo::Crc16, Some(64));
        b.array("acc", 1, 64, 32);
        b.hash("slot", "h", vec![Operand::hdr("key")]);
        b.count(None, "acc", vec![Operand::var("slot")], Operand::int(1));
        let p = b.build().unwrap();
        assert_eq!(
            state_profile(&[&p]).sharding_decision(),
            ShardingDecision::ByKey(vec!["key".to_string()])
        );
    }

    #[test]
    fn rewritten_header_taints_later_reads() {
        let mut b = ProgramBuilder::new("p");
        b.array("acc", 1, 64, 32);
        b.set_header("key", Operand::int(0));
        b.count(None, "acc", vec![Operand::hdr("key")], Operand::int(1));
        let p = b.build().unwrap();
        assert_eq!(
            state_profile(&[&p]).pinned,
            Some(PinReason::TaintedIndex { object: "acc".into() })
        );
    }
}
