//! Shard workers: each owns a partition of the data-plane state and drains
//! per-device ingress queues in batches.
//!
//! The engine partitions traffic across shards by a stable hash — of the
//! tenant id for [`ShardingMode::ByTenant`] tenants, of the per-packet flow
//! key for [`ShardingMode::ByFlow`] tenants (see `crate::tenant`).  A shard
//! owns private replicas of the device planes its residents traverse, so the
//! packet hot path touches no shared mutable state at all — the only
//! cross-thread traffic is the inbound message channel, the relaxed atomic
//! telemetry counters, and the shard's in-flight depth gauge the engine's
//! admission control reads.  Tenant isolation renames every stateful object
//! with the owner's prefix and guards every instruction with a user-id
//! match, so partitioning state *by tenant* is semantically identical to the
//! single shared store a real device would hold; partitioning *by flow* is
//! identical for flow-keyed state because every packet that can touch a
//! given state cell carries the same flow key and therefore lands on the
//! same shard.
//!
//! Control messages (tenant add/remove, table writes, flush) travel on the
//! same FIFO channel as traffic batches, so a reconfiguration is naturally
//! quiesced: by the time a `RemoveTenant` is handled, every batch injected
//! before it has fully drained, and the removal touches only the departing
//! tenant's snippets and tables ([`DevicePlane::uninstall`]).
//!
//! [`ShardingMode::ByTenant`]: crate::tenant::ShardingMode::ByTenant
//! [`ShardingMode::ByFlow`]: crate::tenant::ShardingMode::ByFlow

use crate::faults::DeviceHealth;
use crate::telemetry::TenantCounters;
use crate::tenant::TenantHop;
use clickinc_emulator::{DevicePlane, ExecMode, Fnv, ObjectStore, Packet, PacketAction};
use clickinc_ir::Value;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// A packet in flight inside a shard, with its route and accumulated clock.
struct Job {
    counters: Arc<TenantCounters>,
    route: Arc<Vec<String>>,
    hop: usize,
    vtime_ns: u64,
    latency_ns: f64,
    packet: Packet,
}

/// A tenant resident on a shard.
struct TenantState {
    route: Arc<Vec<String>>,
    counters: Arc<TenantCounters>,
}

/// Messages a shard worker consumes.  The channel is FIFO, which is what
/// serializes traffic against reconfiguration.
pub(crate) enum ShardMsg {
    /// Install a tenant: create/extend device planes, install snippets.
    /// Flow-sharded tenants are installed on every shard, each with its own
    /// counter block.
    AddTenant { user: String, hops: Vec<TenantHop>, counters: Arc<TenantCounters> },
    /// Quiesce and remove a tenant's snippets and state.
    RemoveTenant { user: String },
    /// Quiesce a tenant, remove its snippets, and ship back its
    /// exclusively-owned state per device — the extraction half of a live
    /// reshard.  The FIFO channel guarantees every batch injected before
    /// this message has fully drained first.
    ExtractTenant { user: String, ack: Sender<BTreeMap<String, ObjectStore>> },
    /// Merge extracted state into one device replica's store — the seeding
    /// half of a live reshard.  Ordered after the `AddTenant` that
    /// re-installed the tenant (same FIFO channel), so the objects are
    /// already declared; the merge is additive/idempotent per object kind.
    SeedState { device: String, store: ObjectStore },
    /// A batch of packets for one tenant, in stream order, already admitted
    /// against the shard's bounded ingress queue.
    Inject { user: Arc<str>, jobs: Vec<(u64, Packet)> },
    /// Control-plane table write (e.g. pre-populating a KVS cache).
    TableWrite { device: String, table: String, key: Vec<Value>, value: Vec<Value> },
    /// Apply an injected fault (or a restore) to one device: `Down` devices
    /// lose every packet reaching them, `Flaky` ones drop a deterministic
    /// fraction, `Degraded` ones scale their latency.  Ordered on the FIFO
    /// channel like every other control message.
    SetDeviceHealth { device: String, health: DeviceHealth },
    /// Barrier: acknowledge once every queued packet has drained.
    Flush(Sender<()>),
    /// Drain, ship the final planes back, and exit.
    Stop(Sender<ShardFinal>),
}

/// What a shard hands back when it stops: its device-plane replicas, whose
/// stores the engine merges into the network-wide final state.
pub(crate) struct ShardFinal {
    pub planes: BTreeMap<String, DevicePlane>,
}

/// The worker loop: owned by one OS thread per shard.
pub(crate) struct ShardWorker {
    batch_size: usize,
    planes: BTreeMap<String, DevicePlane>,
    tenants: BTreeMap<String, TenantState>,
    queues: BTreeMap<String, VecDeque<Job>>,
    /// Devices with queued jobs, drained round-robin.  May transiently hold
    /// a duplicate entry (skipped on pop when its queue is already empty);
    /// batch selection stays O(1) amortized either way.
    active: VecDeque<String>,
    /// In-flight packet count shared with the engine's admission control:
    /// the injector increments it per admitted packet, this worker
    /// decrements it as packets reach a terminal outcome.
    depth: Arc<AtomicU64>,
    /// Execution tier applied to every device-plane replica this shard owns
    /// (from [`crate::EngineConfig::exec_mode`]).
    exec_mode: ExecMode,
    /// Injected device faults in effect (sparse: healthy devices are
    /// absent).  Applied in `pump` before the device processes a batch.
    device_health: BTreeMap<String, DeviceHealth>,
}

impl ShardWorker {
    pub(crate) fn run(
        rx: Receiver<ShardMsg>,
        batch_size: usize,
        depth: Arc<AtomicU64>,
        exec_mode: ExecMode,
    ) {
        let mut worker = ShardWorker {
            batch_size: batch_size.max(1),
            planes: BTreeMap::new(),
            tenants: BTreeMap::new(),
            queues: BTreeMap::new(),
            active: VecDeque::new(),
            depth,
            exec_mode,
            device_health: BTreeMap::new(),
        };
        while let Ok(msg) = rx.recv() {
            match msg {
                ShardMsg::AddTenant { user, hops, counters } => {
                    worker.add_tenant(user, hops, counters)
                }
                ShardMsg::RemoveTenant { user } => worker.remove_tenant(&user),
                ShardMsg::ExtractTenant { user, ack } => {
                    let _ = ack.send(worker.extract_tenant(&user));
                }
                ShardMsg::SeedState { device, store } => {
                    if let Some(plane) = worker.planes.get_mut(&device) {
                        plane.store_mut().merge_shard_from(&store, |_| true);
                    }
                }
                ShardMsg::Inject { user, jobs } => {
                    worker.inject(&user, jobs);
                    worker.pump();
                }
                ShardMsg::TableWrite { device, table, key, value } => {
                    if let Some(plane) = worker.planes.get_mut(&device) {
                        plane.store_mut().table_write(&table, &key, value);
                    }
                }
                ShardMsg::SetDeviceHealth { device, health } => {
                    if health == DeviceHealth::Up {
                        worker.device_health.remove(&device);
                    } else {
                        worker.device_health.insert(device, health);
                    }
                }
                ShardMsg::Flush(ack) => {
                    worker.pump();
                    let _ = ack.send(());
                }
                ShardMsg::Stop(ack) => {
                    worker.pump();
                    let _ = ack.send(ShardFinal { planes: std::mem::take(&mut worker.planes) });
                    break;
                }
            }
        }
    }

    fn add_tenant(&mut self, user: String, hops: Vec<TenantHop>, counters: Arc<TenantCounters>) {
        let route: Vec<String> = hops.iter().map(|h| h.device.clone()).collect();
        for hop in hops {
            let exec_mode = self.exec_mode;
            let plane = self.planes.entry(hop.device.clone()).or_insert_with(|| {
                let mut p = DevicePlane::new(&hop.device, hop.model.clone());
                p.set_exec_mode(exec_mode);
                p
            });
            for snippet in hop.snippets {
                plane.install(snippet);
            }
        }
        self.tenants.insert(user, TenantState { route: Arc::new(route), counters });
    }

    fn remove_tenant(&mut self, user: &str) {
        // the FIFO channel already quiesced this tenant's traffic; drop its
        // snippets and exclusively-owned state, leaving co-resident tenants'
        // tables untouched
        let Some(state) = self.tenants.remove(user) else { return };
        for device in state.route.iter() {
            if let Some(plane) = self.planes.get_mut(device) {
                plane.uninstall(user);
            }
        }
    }

    /// Remove a tenant like [`ShardWorker::remove_tenant`], but extract its
    /// exclusively-owned per-device state instead of dropping it.
    fn extract_tenant(&mut self, user: &str) -> BTreeMap<String, ObjectStore> {
        let mut extracted = BTreeMap::new();
        let Some(state) = self.tenants.remove(user) else { return extracted };
        for device in state.route.iter() {
            if let Some(plane) = self.planes.get_mut(device) {
                if let Some(store) = plane.uninstall_extract(user) {
                    extracted.insert(device.clone(), store);
                }
            }
        }
        extracted
    }

    fn inject(&mut self, user: &str, jobs: Vec<(u64, Packet)>) {
        let Some(state) = self.tenants.get(user) else {
            // tenant unknown (never added, or already removed): drop silently —
            // the engine only routes here between add and remove.  The packets
            // were admitted against the depth gauge, so give the credit back.
            self.depth.fetch_sub(jobs.len() as u64, Ordering::Relaxed);
            return;
        };
        let route = Arc::clone(&state.route);
        let counters = Arc::clone(&state.counters);
        counters.packets.fetch_add(jobs.len() as u64, Ordering::Relaxed);
        for (vtime_ns, packet) in jobs {
            let job = Job {
                counters: Arc::clone(&counters),
                route: Arc::clone(&route),
                hop: 0,
                vtime_ns,
                latency_ns: 0.0,
                packet,
            };
            self.enqueue(job);
        }
    }

    fn enqueue(&mut self, job: Job) {
        match job.route.get(job.hop) {
            Some(device) => {
                let queue = self.queues.entry(device.clone()).or_default();
                if queue.is_empty() {
                    self.active.push_back(device.clone());
                }
                queue.push_back(job);
            }
            None => self.complete_at_server(job),
        }
    }

    /// Drain the ingress queues round-robin, `batch_size` packets per device
    /// per turn, until the shard is idle.  The rotating cursor (`active`)
    /// makes batch selection O(1) amortized — no per-round scan over every
    /// device the shard has ever hosted.
    fn pump(&mut self) {
        while let Some(device) = self.active.pop_front() {
            let mut batch: Vec<Job> = {
                let Some(queue) = self.queues.get_mut(&device) else { continue };
                if queue.is_empty() {
                    // stale cursor entry (duplicate); nothing to do
                    continue;
                }
                let take = queue.len().min(self.batch_size);
                queue.drain(..take).collect()
            };
            // injected faults intercept the batch before the device runs:
            // a dead device swallows everything reaching it, a flaky one
            // drops a deterministic (hash-keyed, not wall-clock) fraction
            let health = self.device_health.get(&device).copied().unwrap_or_default();
            match health {
                DeviceHealth::Down => {
                    for job in batch {
                        self.fault_lose(job);
                    }
                    self.requeue_if_backlogged(device);
                    continue;
                }
                DeviceHealth::Flaky { drop_prob } => {
                    let mut kept = Vec::with_capacity(batch.len());
                    for job in batch {
                        if Self::flaky_drops(&device, &job, drop_prob) {
                            self.fault_lose(job);
                        } else {
                            kept.push(job);
                        }
                    }
                    batch = kept;
                    if batch.is_empty() {
                        self.requeue_if_backlogged(device);
                        continue;
                    }
                }
                DeviceHealth::Up | DeviceHealth::Degraded { .. } => {}
            }
            let latency_scale = match health {
                DeviceHealth::Degraded { factor } => factor.max(1.0),
                _ => 1.0,
            };
            let Some(plane) = self.planes.get_mut(&device) else {
                // no replica for this device (snippet-less hop): traverse free
                for mut job in batch {
                    job.hop += 1;
                    self.enqueue(job);
                }
                self.requeue_if_backlogged(device);
                continue;
            };
            // account ingress bytes, lift the packets out, run the whole
            // batch through the device in one call, then re-attach outcomes
            let mut packets: Vec<Packet> = batch
                .iter_mut()
                .map(|job| {
                    if let Some(link) = job.counters.link_bytes.get(job.hop) {
                        link.fetch_add(job.packet.wire_bytes() as u64, Ordering::Relaxed);
                    }
                    std::mem::replace(&mut job.packet, Packet::new("", "", 0, BTreeMap::new()))
                })
                .collect();
            let outcomes = plane.process_batch(&mut packets);
            for ((mut job, packet), outcome) in batch.into_iter().zip(packets).zip(outcomes) {
                job.packet = packet;
                job.latency_ns += outcome.latency_ns * latency_scale;
                match outcome.action {
                    PacketAction::Forward => {
                        job.hop += 1;
                        self.enqueue(job);
                    }
                    PacketAction::Back => {
                        job.counters.hits.fetch_add(1, Ordering::Relaxed);
                        self.finish(job);
                    }
                    PacketAction::Drop => {
                        job.counters.drops.fetch_add(1, Ordering::Relaxed);
                        self.finish(job);
                    }
                }
            }
            self.requeue_if_backlogged(device);
        }
    }

    /// Rotate a device with remaining backlog to the back of the cursor.
    fn requeue_if_backlogged(&mut self, device: String) {
        if self.queues.get(&device).is_some_and(|q| !q.is_empty()) {
            self.active.push_back(device);
        }
    }

    /// A packet lost to an injected fault: counted as `fault_lost` (never as
    /// an in-network drop), with the gauges returned like any terminal
    /// outcome so admission control keeps an accurate in-flight view.
    fn fault_lose(&self, job: Job) {
        job.counters.note_fault_loss(job.vtime_ns);
        let inflight = &job.counters.in_flight;
        let _ = inflight.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Terminal accounting shared by every outcome.
    fn finish(&self, job: Job) {
        let payload = job.packet.wire_bytes().saturating_sub(job.packet.base_bytes) as u64;
        job.counters.payload_bytes.fetch_add(payload, Ordering::Relaxed);
        job.counters.record_completion(job.latency_ns, job.vtime_ns);
        // return the tenant's ingress credit before the shard's depth so the
        // budget admission never observes the gauges crossed
        let inflight = &job.counters.in_flight;
        let _ = inflight.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Deterministic flaky-device drop decision: a stable hash of the device
    /// and the packet's identity mapped to the unit interval, so the same
    /// stream through the same fault plan loses the same packets on every
    /// run and any shard layout.
    fn flaky_drops(device: &str, job: &Job, drop_prob: f64) -> bool {
        let mut h = Fnv::new();
        h.write_str(device);
        h.write_u64(job.vtime_ns);
        h.write_str(&job.packet.src);
        h.write_str(&job.packet.dst);
        let unit = (h.finish() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < drop_prob
    }

    /// The packet traversed every hop: it crosses the final link into the
    /// server.
    fn complete_at_server(&self, job: Job) {
        let wire = job.packet.wire_bytes() as u64;
        job.counters.to_server.fetch_add(1, Ordering::Relaxed);
        job.counters.server_bytes.fetch_add(wire, Ordering::Relaxed);
        if let Some(link) = job.counters.link_bytes.get(job.route.len()) {
            link.fetch_add(wire, Ordering::Relaxed);
        }
        self.finish(job);
    }
}
