//! Greedy single-device / single-path baseline.
//!
//! The naïve strategies discussed in §5.1 — "greedily choosing a single path
//! cannot utilize the multi-path resources; simply replicating the program on
//! all paths could lead to device overload" — are represented here by the
//! simplest of them: walk the devices along one path in traffic order and put
//! the whole remaining program on the first device where it fits, falling back
//! to splitting off the largest feasible prefix when it does not.  Tests and
//! benches use it as the quality floor the DP must meet or beat.

use crate::intra::allocate_stages;
use crate::network::PlacementNetwork;
use crate::objective::{cut_costs, Weights};
use crate::plan::{Assignment, PlacementError, PlacementPlan};
use clickinc_blockdag::{BlockDag, BlockId};
use clickinc_ir::IrProgram;
use std::time::Instant;

/// Place the program greedily along the first client branch.
pub fn place_greedy(
    program: &IrProgram,
    dag: &BlockDag,
    net: &PlacementNetwork,
) -> Result<PlacementPlan, PlacementError> {
    let start = Instant::now();
    if program.is_empty() || dag.is_empty() {
        return Err(PlacementError::EmptyProgram);
    }
    if net.is_empty() {
        return Err(PlacementError::EmptyNetwork);
    }
    let order = dag.blocks_by_step();
    let n = order.len();
    let cuts = cut_costs(program, dag, &order);
    let weights = Weights::default();
    let cap_norm = net.total_available().total().max(1.0);

    let leaf = *net.client_leaves().first().unwrap_or(&net.client_root);
    let path: Vec<_> = net.path_through(leaf).into_iter().cloned().collect();

    let mut assignments = Vec::new();
    let mut placed = 0usize;
    let mut comm_cost = 0.0;
    for device in &path {
        if placed == n {
            break;
        }
        // largest feasible extension on this device
        let mut best: Option<(usize, crate::intra::StageAllocation)> = None;
        for k in (placed + 1..=n).rev() {
            let instrs: Vec<usize> =
                order[placed..k].iter().flat_map(|b| dag.blocks()[*b].instrs.clone()).collect();
            if let Some(alloc) = allocate_stages(device, program, &instrs) {
                best = Some((k, alloc));
                break;
            }
        }
        if let Some((k, alloc)) = best {
            let blocks: Vec<BlockId> =
                order[placed..k].iter().map(|b| dag.blocks()[*b].id).collect();
            let mut instrs: Vec<usize> =
                order[placed..k].iter().flat_map(|b| dag.blocks()[*b].instrs.clone()).collect();
            instrs.sort_unstable();
            assignments.push(Assignment {
                device: device.name.clone(),
                members: device.members.clone(),
                kind: device.kind,
                blocks,
                instrs,
                stage_of: alloc.stage_of.clone(),
                stages_used: alloc.stages_used,
                demand: alloc.demand,
                step_range: (placed, k),
            });
            if k < n {
                comm_cost += cuts[k];
            }
            placed = k;
        }
    }
    if placed != n {
        return Err(PlacementError::NoFeasiblePlacement);
    }
    let resource_cost = assignments
        .iter()
        .map(|a: &Assignment| a.demand.scaled(a.members.len().max(1) as f64).total())
        .sum::<f64>()
        / cap_norm;
    let gain = weights.traffic - weights.resource * resource_cost - weights.comm * comm_cost;
    Ok(PlacementPlan {
        program: program.name.clone(),
        assignments,
        gain,
        traffic_served: 1.0,
        resource_cost,
        comm_cost,
        weights,
        solve_time: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ResourceLedger;
    use clickinc_blockdag::{build_block_dag, BlockConfig};
    use clickinc_device::DeviceKind;
    use clickinc_frontend::compile_source;
    use clickinc_lang::templates::{kvs_template, KvsParams};
    use clickinc_topology::{reduce_for_traffic, Topology};

    fn chain_net(n: usize) -> PlacementNetwork {
        let topo = Topology::chain(n, DeviceKind::Tofino);
        let servers = topo.servers();
        let reduced = reduce_for_traffic(&topo, &[servers[0]], servers[1], &[]);
        PlacementNetwork::from_reduced(&topo, &reduced, &ResourceLedger::new())
    }

    #[test]
    fn greedy_places_kvs_mostly_on_the_first_device() {
        let t = kvs_template("kvs", KvsParams::default());
        let ir = compile_source("kvs", &t.source).unwrap();
        let dag = build_block_dag(&ir, &BlockConfig::default());
        let net = chain_net(3);
        let plan = place_greedy(&ir, &dag, &net).expect("greedy places kvs");
        assert_eq!(plan.traffic_served, 1.0);
        assert!(!plan.devices_used().is_empty());
        // the first device takes the biggest share
        let per_device = plan.instructions_per_device();
        assert!(per_device[0] >= *per_device.last().unwrap());
    }

    #[test]
    fn greedy_fails_when_nothing_fits() {
        let t = kvs_template("kvs", KvsParams { cache_depth: 500_000, ..Default::default() });
        let ir = compile_source("kvs", &t.source).unwrap();
        let dag = build_block_dag(&ir, &BlockConfig::default());
        let net = chain_net(2);
        assert_eq!(place_greedy(&ir, &dag, &net).unwrap_err(), PlacementError::NoFeasiblePlacement);
    }
}
