//! HLS C++ backend for Xilinx FPGA smartNICs and accelerator cards.

use crate::emit::{args, compute_expr, guard_expr, operand, sanitize};
use clickinc_ir::{IrProgram, ObjectKind, OpCode};
use std::fmt::Write as _;

/// Generate an HLS C++ kernel for the merged device image.
pub fn generate(image: &IrProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// Auto-generated Vitis HLS kernel for program `{}`", image.name);
    let _ = writeln!(out, "#include <ap_int.h>");
    let _ = writeln!(out, "#include <hls_stream.h>");
    out.push('\n');
    let _ = writeln!(out, "struct inc_packet_t {{");
    let _ = writeln!(out, "    ap_uint<8> inc_user;");
    let _ = writeln!(out, "    ap_uint<16> step;");
    let _ = writeln!(out, "    ap_uint<32> param;");
    for field in &image.headers {
        let _ = writeln!(
            out,
            "    ap_uint<{}> {};",
            field.ty.width_bits().max(1),
            sanitize(&field.name)
        );
    }
    let _ = writeln!(out, "    bool drop;");
    let _ = writeln!(out, "}};");
    out.push('\n');

    for obj in &image.objects {
        let name = sanitize(&obj.name);
        match &obj.kind {
            ObjectKind::Array { rows, size, width } => {
                let _ = writeln!(out, "static ap_uint<{width}> {name}[{rows}][{size}];");
                let _ =
                    writeln!(out, "#pragma HLS BIND_STORAGE variable={name} type=ram_2p impl=uram");
            }
            ObjectKind::Sketch { rows, cols, width, .. } => {
                let _ = writeln!(out, "static ap_uint<{width}> {name}[{rows}][{cols}];");
                let _ =
                    writeln!(out, "#pragma HLS BIND_STORAGE variable={name} type=ram_2p impl=bram");
            }
            ObjectKind::Seq { size, width } => {
                let _ = writeln!(out, "static ap_uint<{width}> {name}[{size}];");
            }
            ObjectKind::Table { key_width, value_width, depth, .. } => {
                let _ = writeln!(out, "struct {name}_entry {{ ap_uint<{key_width}> key; ap_uint<{value_width}> value; bool valid; }};");
                let _ = writeln!(out, "static {name}_entry {name}[{depth}];");
                let _ =
                    writeln!(out, "#pragma HLS BIND_STORAGE variable={name} type=ram_2p impl=uram");
            }
            ObjectKind::Hash { algo, .. } => {
                let _ = writeln!(
                    out,
                    "// hash `{name}`: crc{} implemented in fabric",
                    algo.output_bits()
                );
            }
            ObjectKind::Crypto { algo } => {
                let _ = writeln!(
                    out,
                    "// crypto `{name}`: {algo:?} core instantiated from the Vitis library"
                );
            }
        }
    }
    out.push('\n');

    let _ = writeln!(
        out,
        "void {}(hls::stream<inc_packet_t>& in, hls::stream<inc_packet_t>& out) {{",
        sanitize(&image.name)
    );
    let _ = writeln!(out, "#pragma HLS INTERFACE axis port=in");
    let _ = writeln!(out, "#pragma HLS INTERFACE axis port=out");
    let _ = writeln!(out, "#pragma HLS PIPELINE II=1");
    let _ = writeln!(out, "    inc_packet_t pkt = in.read();");
    let mut declared = std::collections::BTreeSet::new();
    for instr in &image.instructions {
        if let Some(dest) = instr.dest() {
            let d = sanitize(dest);
            if declared.insert(d.clone()) {
                let _ = writeln!(out, "    ap_uint<32> {d} = 0;");
            }
        }
    }
    for instr in &image.instructions {
        let line = instruction_line(instr);
        match &instr.guard {
            Some(g) => {
                let _ = writeln!(
                    out,
                    "    if ({}) {{ {line} }}",
                    guard_expr(g).replace("hdr.inc.", "pkt.")
                );
            }
            None => {
                let _ = writeln!(out, "    {line}");
            }
        }
    }
    let _ = writeln!(out, "    if (!pkt.drop) out.write(pkt);");
    let _ = writeln!(out, "}}");
    out.replace("hdr.inc.", "pkt.")
}

fn instruction_line(instr: &clickinc_ir::Instruction) -> String {
    if let Some((dest, expr)) = compute_expr(&instr.op) {
        return format!("{dest} = {expr};");
    }
    match &instr.op {
        OpCode::Hash { dest, object, keys } => {
            format!("{} = crc16({}); /* {} */", sanitize(dest), args(keys), sanitize(object))
        }
        OpCode::ReadState { dest, object, index } => {
            format!("{} = {}[{}];", sanitize(dest), sanitize(object), args(index).replace(", ", "]["))
        }
        OpCode::WriteState { object, index, value } => {
            format!("{}[{}] = {};", sanitize(object), args(index).replace(", ", "]["), args(value))
        }
        OpCode::CountState { dest, object, index, delta } => {
            let idx = args(index).replace(", ", "][");
            match dest {
                Some(d) => format!(
                    "{obj}[{idx}] += {dlt}; {d} = {obj}[{idx}];",
                    obj = sanitize(object),
                    idx = idx,
                    dlt = operand(delta),
                    d = sanitize(d)
                ),
                None => format!("{}[{}] += {};", sanitize(object), idx, operand(delta)),
            }
        }
        OpCode::ClearState { object } => format!("clear_loop: for (int i = 0; i < (int)(sizeof({obj})/sizeof({obj}[0])); i++) {obj}[i] = 0;", obj = sanitize(object)),
        OpCode::DeleteState { object, index } => {
            format!("{}[{}] = 0;", sanitize(object), args(index).replace(", ", "]["))
        }
        OpCode::Drop => "pkt.drop = true;".to_string(),
        OpCode::Forward => "/* pass through */".to_string(),
        OpCode::Back { .. } => "pkt.step = 0xffff; /* bounce to sender */".to_string(),
        OpCode::Mirror { .. } => "/* mirror to host DMA */".to_string(),
        OpCode::Multicast { group } => format!("/* multicast group {} */", operand(group)),
        OpCode::CopyTo { target, values } => format!("/* copy to {}: {} */", sanitize(target), args(values)),
        OpCode::SetHeader { field, value } => format!("pkt.{} = {};", sanitize(field), operand(value)),
        OpCode::NoOp => "/* removed */".to_string(),
        other => format!("/* {} */", other.mnemonic()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_frontend::compile_source;
    use clickinc_lang::templates::{mlagg_template, MlAggParams};

    #[test]
    fn float_mlagg_hls_has_pipeline_pragma_and_uram_storage() {
        let t = mlagg_template(
            "mlagg_f",
            MlAggParams { dims: 4, is_float: true, num_aggregators: 256, ..Default::default() },
        );
        let ir = compile_source("mlagg_f", &t.source).unwrap();
        let hls = generate(&ir);
        assert!(hls.contains("#pragma HLS PIPELINE II=1"));
        assert!(hls.contains("BIND_STORAGE"));
        assert!(hls.contains("ap_uint<32> agg_data_t[4][256];"));
        assert!(hls.contains("pkt.drop"));
        assert!(!hls.contains("hdr.inc."), "header accesses are rewritten to the packet struct");
    }
}
