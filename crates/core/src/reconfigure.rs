//! Live-reconfiguration events emitted by the [`Controller`].
//!
//! INC as a service means tenants come and go while other tenants' traffic
//! keeps flowing (paper §6, Fig. 14).  The controller performs the
//! control-plane half of that — incremental synthesis, resource accounting,
//! snippet installation — and publishes each change as a [`ReconfigureEvent`]
//! so a serving layer (e.g. `clickinc-runtime`'s sharded traffic engine) can
//! quiesce exactly the affected tables and swap programs without disturbing
//! co-resident tenants.
//!
//! [`Controller`]: crate::Controller

/// Re-exported from `clickinc-runtime`, where the engine's shards consume
/// them directly; the controller produces hop lists from its placement plans
/// and derives the sharding mode from the deployed IR's state profile
/// ([`crate::sharding::sharding_mode_for`]).
pub use clickinc_runtime::{ShardingMode, TenantHop};

/// A change to the set of deployed tenant programs.
#[derive(Debug, Clone)]
pub enum ReconfigureEvent {
    /// A tenant's program was deployed.
    TenantAdded {
        /// The user id.
        user: String,
        /// Numeric id matched by the isolation guards; traffic must carry it.
        numeric_id: i64,
        /// The programmable hops of the deployment, in traffic order.
        hops: Vec<TenantHop>,
        /// How a serving engine should partition the tenant's traffic,
        /// derived from the deployment's state profile.
        mode: ShardingMode,
    },
    /// A tenant's program was removed.
    TenantRemoved {
        /// The user id.
        user: String,
    },
    /// A live tenant's traffic partitioning changed without redeploying its
    /// program — the adaptive runtime moved it between `ByTenant` and
    /// `ByFlow` in response to observed saturation.  The controller's
    /// ledger, planes and deployment record are untouched; only the serving
    /// engine's partitioning moved.
    TenantResharded {
        /// The user id.
        user: String,
        /// The sharding mode the tenant now runs under.
        mode: ShardingMode,
    },
}

/// Callback registered with [`Controller::add_reconfigure_hook`]; invoked
/// after every successful deploy/remove, in registration order.
///
/// [`Controller::add_reconfigure_hook`]: crate::Controller::add_reconfigure_hook
pub type ReconfigureHook = Box<dyn FnMut(&ReconfigureEvent) + Send>;
