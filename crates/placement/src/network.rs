//! The placement view of the network: devices, remaining resources, and the
//! multi-tenant resource ledger.

use clickinc_device::{DeviceKind, DeviceModel};
use clickinc_ir::ResourceVector;
use clickinc_topology::{NodeId, ReducedTopology, Tier, Topology};
use std::collections::BTreeMap;

/// Tracks the resources already consumed on every physical device by previously
/// deployed programs, so later placements see only what is left (the dynamic
/// multi-user scenario of §7.4/§7.5).
#[derive(Debug, Clone, Default)]
pub struct ResourceLedger {
    used: BTreeMap<NodeId, ResourceVector>,
    /// Monotone clock of ledger movements; [`versions`](Self::version_of)
    /// stamp each device with the clock value of its last move.
    clock: u64,
    versions: BTreeMap<NodeId, u64>,
}

impl ResourceLedger {
    /// A fresh ledger: everything is free.
    pub fn new() -> ResourceLedger {
        ResourceLedger::default()
    }

    /// Resources already consumed on a device.
    pub fn used(&self, node: NodeId) -> ResourceVector {
        self.used.get(&node).copied().unwrap_or_default()
    }

    /// Record additional consumption on a device.
    pub fn consume(&mut self, node: NodeId, demand: ResourceVector) {
        let entry = self.used.entry(node).or_default();
        *entry += demand;
        self.clock += 1;
        self.versions.insert(node, self.clock);
    }

    /// Release resources previously consumed on a device (program removal).
    pub fn release(&mut self, node: NodeId, demand: ResourceVector) {
        let entry = self.used.entry(node).or_default();
        *entry = entry.saturating_sub(&demand);
        self.clock += 1;
        self.versions.insert(node, self.clock);
    }

    /// Version stamp of a device: the global move-clock value at its last
    /// `consume`/`release` (0 if it never moved).  Two equal stamps bracket a
    /// window in which the device's ledger entry was provably untouched —
    /// the structural-invalidation primitive the plan cache builds on.
    pub fn version_of(&self, node: NodeId) -> u64 {
        self.versions.get(&node).copied().unwrap_or(0)
    }

    /// Fraction of total capacity still available across the given devices
    /// (the `r` that drives the adaptive weights).
    pub fn remaining_ratio(&self, topo: &Topology) -> f64 {
        let mut total_util = 0.0;
        let mut count = 0usize;
        for node in topo.nodes() {
            if !node.tier.is_network_device() || node.kind == DeviceKind::Server {
                continue;
            }
            let model = node.kind.model();
            let cap = model.total_capacity();
            let used = self.used(node.id);
            total_util += used.mean_utilization(&cap).min(1.0);
            count += 1;
        }
        if count == 0 {
            1.0
        } else {
            (1.0 - total_util / count as f64).clamp(0.0, 1.0)
        }
    }
}

/// One placeable device (an equivalence class of physical devices).
#[derive(Debug, Clone)]
pub struct PlacementDevice {
    /// Display name, e.g. `Agg[Agg0,Agg1]`.
    pub name: String,
    /// The physical devices this placement device represents.
    pub members: Vec<NodeId>,
    /// Device family.
    pub kind: DeviceKind,
    /// Resource / capability model.
    pub model: DeviceModel,
    /// Bypass accelerator model, if one is attached (its capacity and
    /// capability set extend the base device).
    pub bypass: Option<DeviceModel>,
    /// Tier in the topology.
    pub tier: Tier,
    /// Fraction of the application traffic crossing this device.
    pub traffic: f64,
    /// Remaining (free) resources, already netted against the ledger.
    pub available: ResourceVector,
}

impl PlacementDevice {
    /// Build from a reduced-topology EC node and the ledger.
    fn from_reduced(
        topo: &Topology,
        node: &clickinc_topology::ReducedNode,
        ledger: &ResourceLedger,
    ) -> PlacementDevice {
        let model = node.kind.model();
        let bypass = node.bypass.map(|k| k.model());
        // EC members are symmetric; the usable capacity is bounded by the most
        // loaded member.
        let mut worst_used = ResourceVector::zero();
        for (i, m) in node.members.iter().enumerate() {
            let used = ledger.used(*m);
            if i == 0 || used.total() > worst_used.total() {
                worst_used = used;
            }
        }
        let mut capacity = model.total_capacity();
        if let Some(b) = &bypass {
            capacity += b.total_capacity();
        }
        let available = capacity.saturating_sub(&worst_used);
        PlacementDevice {
            name: node.label(topo),
            members: node.members.clone(),
            kind: node.kind,
            model,
            bypass,
            tier: node.tier,
            traffic: node.traffic,
            available,
        }
    }

    /// Whether the device (or its bypass accelerator) supports a capability
    /// class.
    pub fn supports(&self, class: clickinc_ir::CapabilityClass) -> bool {
        self.model.supports(class)
            || self.bypass.as_ref().map(|b| b.supports(class)).unwrap_or(false)
    }

    /// Whether every class in the iterator is supported.
    pub fn supports_all<'a>(
        &self,
        classes: impl IntoIterator<Item = &'a clickinc_ir::CapabilityClass>,
    ) -> bool {
        classes.into_iter().all(|c| self.supports(*c))
    }

    /// Total capacity (base + bypass), ignoring the ledger.
    pub fn total_capacity(&self) -> ResourceVector {
        let mut cap = self.model.total_capacity();
        if let Some(b) = &self.bypass {
            cap += b.total_capacity();
        }
        cap
    }

    /// Number of physical devices represented (replication factor for resource
    /// accounting).
    pub fn replication(&self) -> usize {
        self.members.len().max(1)
    }
}

/// The network as the placement DP sees it: a client-side tree (children point
/// towards the traffic sources) plus the server-side chain after the root.
#[derive(Debug, Clone)]
pub struct PlacementNetwork {
    /// Client-side devices (arena).
    pub client: Vec<PlacementDevice>,
    /// Children of each client-side device.
    pub client_children: Vec<Vec<usize>>,
    /// Root of the client-side tree.
    pub client_root: usize,
    /// Server-side chain in traffic order (first device after the root first).
    pub server: Vec<PlacementDevice>,
}

impl PlacementNetwork {
    /// Build the placement network from a reduced topology and the current
    /// resource ledger.
    pub fn from_reduced(
        topo: &Topology,
        reduced: &ReducedTopology,
        ledger: &ResourceLedger,
    ) -> PlacementNetwork {
        let client: Vec<PlacementDevice> =
            reduced.client.iter().map(|n| PlacementDevice::from_reduced(topo, n, ledger)).collect();
        let client_children: Vec<Vec<usize>> =
            reduced.client.iter().map(|n| n.children.clone()).collect();
        let server: Vec<PlacementDevice> =
            reduced.server.iter().map(|n| PlacementDevice::from_reduced(topo, n, ledger)).collect();
        PlacementNetwork { client, client_children, client_root: reduced.client_root, server }
    }

    /// All devices: client tree first, then the server chain.
    pub fn all_devices(&self) -> impl Iterator<Item = &PlacementDevice> {
        self.client.iter().chain(self.server.iter())
    }

    /// Total number of placement devices.
    pub fn len(&self) -> usize {
        self.client.len() + self.server.len()
    }

    /// Whether there is no placeable device.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sequence of devices along one source path: from the given client
    /// leaf up to the root, then down the server chain.  Used to validate plans
    /// and by the synthesizer to assign step numbers.
    pub fn path_through(&self, leaf: usize) -> Vec<&PlacementDevice> {
        let mut up = Vec::new();
        // walk from leaf to root by following parent links
        let mut current = leaf;
        up.push(&self.client[current]);
        'outer: while current != self.client_root {
            for (parent, children) in self.client_children.iter().enumerate() {
                if children.contains(&current) {
                    current = parent;
                    up.push(&self.client[current]);
                    continue 'outer;
                }
            }
            break;
        }
        up.extend(self.server.iter());
        up
    }

    /// Indices of the client-tree leaves.
    pub fn client_leaves(&self) -> Vec<usize> {
        (0..self.client.len()).filter(|i| self.client_children[*i].is_empty()).collect()
    }

    /// Total free capacity across all devices (used for normalizing h_r).
    pub fn total_available(&self) -> ResourceVector {
        let mut v = ResourceVector::zero();
        for d in self.all_devices() {
            v += d.available.scaled(d.replication() as f64);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_ir::Resource;
    use clickinc_topology::reduce_for_traffic;

    fn chain_net(n: usize) -> (Topology, PlacementNetwork) {
        let topo = Topology::chain(n, DeviceKind::Tofino);
        let servers = topo.servers();
        let reduced = reduce_for_traffic(&topo, &[servers[0]], servers[1], &[]);
        let ledger = ResourceLedger::new();
        let net = PlacementNetwork::from_reduced(&topo, &reduced, &ledger);
        (topo, net)
    }

    #[test]
    fn chain_network_has_one_device_per_switch() {
        let (_, net) = chain_net(4);
        assert_eq!(net.len(), 4);
        assert_eq!(net.client.len(), 1);
        assert_eq!(net.server.len(), 3);
        assert!(!net.is_empty());
        let path = net.path_through(net.client_root);
        assert_eq!(path.len(), 4);
    }

    #[test]
    fn ledger_reduces_availability() {
        let topo = Topology::chain(1, DeviceKind::Tofino);
        let sw = topo.find("SW0").unwrap();
        let servers = topo.servers();
        let reduced = reduce_for_traffic(&topo, &[servers[0]], servers[1], &[]);
        let mut ledger = ResourceLedger::new();
        let before = PlacementNetwork::from_reduced(&topo, &reduced, &ledger);
        ledger.consume(sw, ResourceVector::zero().with(Resource::SramBlocks, 100.0));
        let after = PlacementNetwork::from_reduced(&topo, &reduced, &ledger);
        assert!(
            after.client[0].available[Resource::SramBlocks]
                < before.client[0].available[Resource::SramBlocks]
        );
        // release restores it
        ledger.release(sw, ResourceVector::zero().with(Resource::SramBlocks, 100.0));
        let restored = PlacementNetwork::from_reduced(&topo, &reduced, &ledger);
        assert_eq!(
            restored.client[0].available[Resource::SramBlocks],
            before.client[0].available[Resource::SramBlocks]
        );
    }

    #[test]
    fn remaining_ratio_decreases_with_use() {
        let topo = Topology::chain(2, DeviceKind::Tofino);
        let mut ledger = ResourceLedger::new();
        assert!((ledger.remaining_ratio(&topo) - 1.0).abs() < 1e-9);
        let sw = topo.find("SW0").unwrap();
        let cap = DeviceModel::tofino().total_capacity();
        ledger.consume(sw, cap);
        let r = ledger.remaining_ratio(&topo);
        assert!((0.45..1.0).contains(&r), "one of two devices fully used: r = {r}");
    }

    #[test]
    fn bypass_extends_capability_and_capacity() {
        let topo = Topology::emulation_topology();
        let src = topo.find("pod0a").unwrap();
        let dst = topo.find("pod2b").unwrap();
        let reduced = reduce_for_traffic(&topo, &[src], dst, &[]);
        let net = PlacementNetwork::from_reduced(&topo, &reduced, &ResourceLedger::new());
        let dst_agg = net.server.iter().find(|d| d.tier == Tier::Agg).expect("server-side agg EC");
        assert!(dst_agg.bypass.is_some());
        // the TD4 base model cannot do floating point, the attached FPGA can
        assert!(dst_agg.supports(clickinc_ir::CapabilityClass::Bca));
        assert!(!DeviceModel::trident4().supports(clickinc_ir::CapabilityClass::Bca));
        // capacity is the sum of both
        assert!(
            dst_agg.total_capacity()[Resource::SramBlocks]
                > DeviceModel::trident4().total_capacity()[Resource::SramBlocks]
        );
    }

    #[test]
    fn fat_tree_paths_enumerate_client_leaves() {
        let topo = Topology::device_equal_fat_tree(4, DeviceKind::Tofino);
        let s0 = topo.find("pod0_s0").unwrap();
        let s1 = topo.find("pod1_s0").unwrap();
        let dst = topo.find("pod2_s0").unwrap();
        let reduced = reduce_for_traffic(&topo, &[s0, s1], dst, &[]);
        let net = PlacementNetwork::from_reduced(&topo, &reduced, &ResourceLedger::new());
        let leaves = net.client_leaves();
        assert_eq!(leaves.len(), 2);
        for leaf in leaves {
            let path = net.path_through(leaf);
            // ToR -> Agg -> Core -> Agg -> ToR
            assert_eq!(path.len(), 5);
            assert_eq!(path.last().unwrap().tier, Tier::ToR);
        }
        assert!(net.total_available()[Resource::SramBlocks] > 0.0);
    }
}
