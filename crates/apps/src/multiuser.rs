//! Multi-user program sets: the instances of Tables 3, 5 and 6.

use clickinc::ServiceRequest;
use clickinc_lang::templates::{
    dqacc_template, kvs_template, mlagg_template, DqAccParams, KvsParams, MlAggParams,
};

fn kvs(name: &str, depth: u32) -> clickinc_lang::templates::Template {
    kvs_template(name, KvsParams { cache_depth: depth, ..Default::default() })
}

fn mlagg(name: &str, dims: u32, is_float: bool) -> clickinc_lang::templates::Template {
    mlagg_template(
        name,
        MlAggParams { dims, num_aggregators: 2048, is_float, ..Default::default() },
    )
}

fn dqacc(name: &str, depth: u32) -> clickinc_lang::templates::Template {
    dqacc_template(name, DqAccParams { depth, ways: 4 })
}

/// The six program instances of Table 3, with the traffic endpoints the paper
/// lists (pods of the Fig. 11 emulation topology).
pub fn table3_requests() -> Vec<ServiceRequest> {
    vec![
        ServiceRequest::from_template(kvs("KVS0", 5000), &["pod0a", "pod1a"], "pod2b"),
        ServiceRequest::from_template(dqacc("DQAcc0", 5000), &["pod0a", "pod0b"], "pod2b"),
        ServiceRequest::from_template(mlagg("MLAgg0", 24, false), &["pod0b", "pod1b"], "pod2b"),
        ServiceRequest::from_template(dqacc("DQAcc1", 5000), &["pod0b", "pod1a"], "pod2b"),
        ServiceRequest::from_template(mlagg("MLAgg1", 24, false), &["pod1a", "pod1b"], "pod2b"),
        ServiceRequest::from_template(kvs("KVS1", 5000), &["pod0b", "pod1b"], "pod2b"),
    ]
}

/// The seven-instance sequence of Table 5 (all traffic from pod0(a) to
/// pod2(b)), used for the fixed-vs-adaptive weight comparison.
pub fn table5_requests() -> Vec<ServiceRequest> {
    vec![
        ServiceRequest::from_template(mlagg("MLAgg0", 16, false), &["pod0a"], "pod2b"),
        ServiceRequest::from_template(kvs("KVS0", 5000), &["pod0a"], "pod2b"),
        ServiceRequest::from_template(dqacc("DQAcc0", 4000), &["pod0a"], "pod2b"),
        ServiceRequest::from_template(mlagg("MLAgg1", 16, false), &["pod0a"], "pod2b"),
        ServiceRequest::from_template(kvs("KVS1", 5000), &["pod0a"], "pod2b"),
        ServiceRequest::from_template(dqacc("DQAcc1", 4000), &["pod0a"], "pod2b"),
        ServiceRequest::from_template(mlagg("MLAgg2", 16, false), &["pod0a"], "pod2b"),
    ]
}

/// One step of the Table 6 incremental-vs-monolithic comparison.
#[derive(Debug, Clone)]
pub struct Table6Step {
    /// Row label ("+KVS", "+DQAcc", "+MLAgg1", "+MLAgg2", "-MLAgg1").
    pub label: &'static str,
    /// The request to add (None for the removal step).
    pub request: Option<ServiceRequest>,
    /// The user to remove (None for the add steps).
    pub remove: Option<&'static str>,
}

/// The deployment sequence of Table 6 with the paper's resource-intensive
/// configurations: a 100K-entry KVS, a 16-dimension floating-point MLAgg1 (its
/// float arithmetic needs the FPGA-backed devices) and a 16-dimension integer
/// MLAgg2.
pub fn table6_steps() -> Vec<Table6Step> {
    vec![
        Table6Step {
            label: "+KVS",
            request: Some(ServiceRequest::from_template(
                kvs("KVS", 100_000),
                &["pod0a", "pod0b", "pod1a"],
                "pod2a",
            )),
            remove: None,
        },
        Table6Step {
            label: "+DQAcc",
            request: Some(ServiceRequest::from_template(
                dqacc("DQAcc", 5000),
                &["pod1a", "pod1b"],
                "pod2b",
            )),
            remove: None,
        },
        Table6Step {
            label: "+MLAgg1",
            request: Some(ServiceRequest::from_template(
                mlagg("MLAgg1", 16, true),
                &["pod1a", "pod1b"],
                "pod2b",
            )),
            remove: None,
        },
        Table6Step {
            label: "+MLAgg2",
            request: Some(ServiceRequest::from_template(
                mlagg("MLAgg2", 16, false),
                &["pod0a", "pod0b"],
                "pod2a",
            )),
            remove: None,
        },
        Table6Step { label: "-MLAgg1", request: None, remove: Some("MLAgg1") },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc::Controller;
    use clickinc_topology::Topology;

    #[test]
    fn table3_instances_deploy_on_the_all_tofino_emulation_topology() {
        let mut controller = Controller::new(Topology::emulation_topology_all_tofino());
        for request in table3_requests() {
            let user = request.user.clone();
            let deployment =
                controller.deploy(request).unwrap_or_else(|e| panic!("{user} should deploy: {e}"));
            assert!(!deployment.plan.devices_used().is_empty());
            assert!(deployment.plan.solve_time.as_secs_f64() < 10.0, "paper: < 10 s for all six");
        }
        assert_eq!(controller.active_users().len(), 6);
    }

    #[test]
    fn table6_sequence_deploys_on_the_heterogeneous_topology() {
        let mut controller = Controller::new(Topology::emulation_topology());
        for step in table6_steps() {
            match (step.request, step.remove) {
                (Some(request), _) => {
                    let user = request.user.clone();
                    controller
                        .deploy(request)
                        .unwrap_or_else(|e| panic!("{} ({user}) should deploy: {e}", step.label));
                }
                (None, Some(user)) => {
                    controller.remove(user).expect("removal succeeds");
                }
                _ => unreachable!(),
            }
        }
        // MLAgg1 was removed again; the other three remain
        assert_eq!(controller.active_users().len(), 3);
    }

    #[test]
    fn table5_sequence_has_seven_instances_from_one_pod() {
        let reqs = table5_requests();
        assert_eq!(reqs.len(), 7);
        assert!(reqs.iter().all(|r| r.sources == vec!["pod0a".to_string()]));
        assert!(reqs.iter().all(|r| r.destination == "pod2b"));
    }
}
