//! Error type for IR construction and validation.

use std::fmt;

/// Errors produced while constructing or validating an [`crate::IrProgram`].
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// An instruction references a stateful object that was never declared.
    UnknownObject {
        /// Name of the missing object.
        object: String,
        /// Index of the offending instruction in the program.
        instr: usize,
    },
    /// An instruction reads a variable that is never written and is not a
    /// header field or declared constant.
    UndefinedVariable {
        /// The variable name.
        var: String,
        /// Index of the offending instruction in the program.
        instr: usize,
    },
    /// A variable is assigned more than once after SSA conversion.
    DuplicateAssignment {
        /// The variable name.
        var: String,
    },
    /// Two object declarations share the same name.
    DuplicateObject {
        /// The duplicated object name.
        object: String,
    },
    /// An object is used in a way incompatible with its kind (e.g. a `Hash`
    /// object used as the target of a `WriteState`).
    ObjectKindMismatch {
        /// Name of the object.
        object: String,
        /// What the instruction attempted to do.
        usage: String,
    },
    /// Two instructions share the same id (snippet merging gone wrong).
    DuplicateInstrId {
        /// The duplicated instruction id.
        id: u32,
    },
    /// The program is empty.
    EmptyProgram,
    /// Generic invariant violation with a description.
    Invalid(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownObject { object, instr } => {
                write!(f, "instruction {instr} references undeclared object `{object}`")
            }
            IrError::UndefinedVariable { var, instr } => {
                write!(f, "instruction {instr} reads undefined variable `{var}`")
            }
            IrError::DuplicateAssignment { var } => {
                write!(f, "variable `{var}` assigned more than once in SSA form")
            }
            IrError::DuplicateObject { object } => {
                write!(f, "object `{object}` declared more than once")
            }
            IrError::ObjectKindMismatch { object, usage } => {
                write!(f, "object `{object}` cannot be used for {usage}")
            }
            IrError::DuplicateInstrId { id } => {
                write!(f, "instruction id {id} assigned to more than one instruction")
            }
            IrError::EmptyProgram => write!(f, "IR program contains no instructions"),
            IrError::Invalid(msg) => write!(f, "invalid IR: {msg}"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_identifiers() {
        let e = IrError::UnknownObject { object: "cms".into(), instr: 3 };
        assert!(e.to_string().contains("cms"));
        assert!(e.to_string().contains('3'));

        let e = IrError::UndefinedVariable { var: "idx".into(), instr: 1 };
        assert!(e.to_string().contains("idx"));

        let e = IrError::DuplicateObject { object: "cache".into() };
        assert!(e.to_string().contains("cache"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&IrError::EmptyProgram);
    }
}
