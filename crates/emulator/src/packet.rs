//! Packets and the ClickINC INC header.

use clickinc_ir::Value;
use std::collections::BTreeMap;

/// The generic internal INC header maintained by the INC layer on end hosts
/// (paper §4.1 "Transparent Network"): the user id used for traffic isolation,
/// the step number used to coordinate replicated blocks, the Param field
/// carrying cross-device temporaries, and the application fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IncHeader {
    /// Numeric id of the owning user program.
    pub user: i64,
    /// Current step number (advanced by devices as blocks execute).
    pub step: i64,
    /// Cross-device temporaries (variable name → value).
    pub param: BTreeMap<String, Value>,
    /// Application header fields (e.g. `key`, `seq`, `data_0` …).  A field set
    /// to [`Value::None`] is treated as removed from the wire format (the
    /// sparse-block deletion of Fig. 7) and does not count towards the packet
    /// size.
    pub fields: BTreeMap<String, Value>,
}

impl IncHeader {
    /// Read a field (removed / absent fields read as [`Value::None`]).
    pub fn get(&self, field: &str) -> Value {
        self.fields.get(field).cloned().unwrap_or(Value::None)
    }

    /// Set a field.
    pub fn set(&mut self, field: &str, value: Value) {
        // overwrite in place when the field exists — the common case on the
        // packet hot path — so no key string is allocated per write
        if let Some(slot) = self.fields.get_mut(field) {
            *slot = value;
        } else {
            self.fields.insert(field.to_string(), value);
        }
    }

    /// Number of live (non-removed) application fields.
    pub fn live_fields(&self) -> usize {
        self.fields.values().filter(|v| !v.is_none()).count()
    }
}

/// A packet travelling through the emulated network.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Source host name.
    pub src: String,
    /// Destination host name.
    pub dst: String,
    /// The INC header.
    pub inc: IncHeader,
    /// Base encapsulation bytes (Ethernet + IPv4 + UDP).
    pub base_bytes: usize,
    /// Bytes per live application field.
    pub bytes_per_field: usize,
}

impl Packet {
    /// Standard encapsulation overhead: 14 (Ethernet) + 20 (IPv4) + 8 (UDP) +
    /// 8 (INC header: user, step, param length).
    pub const BASE_BYTES: usize = 14 + 20 + 8 + 8;

    /// Create a packet for a user program with the given application fields.
    pub fn new(src: &str, dst: &str, user: i64, fields: BTreeMap<String, Value>) -> Packet {
        Packet {
            src: src.to_string(),
            dst: dst.to_string(),
            inc: IncHeader { user, step: 0, param: BTreeMap::new(), fields },
            base_bytes: Packet::BASE_BYTES,
            bytes_per_field: 4,
        }
    }

    /// Current wire size in bytes: encapsulation + live fields + Param field.
    pub fn wire_bytes(&self) -> usize {
        self.base_bytes + self.inc.live_fields() * self.bytes_per_field + self.inc.param.len() * 4
    }

    /// Swap source and destination (the `back()` primitive).
    pub fn bounce(&mut self) {
        std::mem::swap(&mut self.src, &mut self.dst);
    }
}

/// Build a gradient packet for the MLAgg workload: a sequence number, worker
/// bitmap and `dims` data fields, of which a `sparsity` fraction of
/// `block_size`-sized blocks are all zero.
pub fn gradient_packet(
    src: &str,
    dst: &str,
    user: i64,
    seq: i64,
    worker: usize,
    dims: usize,
    values: &[i64],
) -> Packet {
    let mut fields = BTreeMap::new();
    fields.insert("op".to_string(), Value::Int(0));
    fields.insert("seq".to_string(), Value::Int(seq));
    fields.insert("bitmap".to_string(), Value::Int(1 << worker));
    fields.insert("overflow".to_string(), Value::Int(0));
    for d in 0..dims {
        fields.insert(format!("data_{d}"), Value::Int(values.get(d).copied().unwrap_or(0)));
    }
    Packet::new(src, dst, user, fields)
}

/// Build a KVS request packet.
pub fn kvs_request(src: &str, dst: &str, user: i64, key: i64) -> Packet {
    let mut fields = BTreeMap::new();
    fields.insert("op".to_string(), Value::Int(1));
    fields.insert("key".to_string(), Value::Int(key));
    fields.insert("vals".to_string(), Value::None);
    Packet::new(src, dst, user, fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_tracks_live_fields() {
        let mut p = gradient_packet("w0", "ps", 1, 7, 0, 4, &[1, 2, 3, 4]);
        let before = p.wire_bytes();
        // deleting two sparse fields shrinks the packet
        p.inc.set("data_2", Value::None);
        p.inc.set("data_3", Value::None);
        assert_eq!(p.wire_bytes(), before - 2 * p.bytes_per_field);
        assert!(p.wire_bytes() >= Packet::BASE_BYTES);
    }

    #[test]
    fn header_get_set_roundtrip() {
        let mut h = IncHeader::default();
        assert_eq!(h.get("missing"), Value::None);
        h.set("seq", Value::Int(9));
        assert_eq!(h.get("seq"), Value::Int(9));
        assert_eq!(h.live_fields(), 1);
        h.set("seq", Value::None);
        assert_eq!(h.live_fields(), 0);
    }

    #[test]
    fn bounce_swaps_endpoints() {
        let mut p = kvs_request("client", "server", 2, 42);
        p.bounce();
        assert_eq!(p.src, "server");
        assert_eq!(p.dst, "client");
        assert_eq!(p.inc.get("key"), Value::Int(42));
    }

    #[test]
    fn gradient_packet_carries_bitmap_and_data() {
        let p = gradient_packet("w1", "ps", 3, 5, 1, 3, &[10, 0, 30]);
        assert_eq!(p.inc.get("bitmap"), Value::Int(2));
        assert_eq!(p.inc.get("data_0"), Value::Int(10));
        assert_eq!(p.inc.get("data_2"), Value::Int(30));
        assert_eq!(p.inc.get("seq"), Value::Int(5));
    }
}
