//! Run the static-verification pipeline in **deny-warnings mode** over every
//! provider-template program the other examples deploy, and export the full
//! diagnostic set as JSON — the CI verification step.
//!
//! Every `plan` already runs the verifier pipeline and refuses error-severity
//! findings as `ClickIncError::Verification`; this example additionally
//! treats warnings as fatal (CI keeps the template library warning-free) and
//! prints the JSON artifact CI archives.
//!
//! Run with: `cargo run --example verify_programs`

use clickinc::lang::templates::{
    count_min_sketch, dqacc_template, kvs_template, mlagg_template, DqAccParams, KvsParams,
    MlAggParams,
};
use clickinc::topology::Topology;
use clickinc::{ClickIncService, ServiceRequest};
use clickinc_ir::{DiagnosticSet, Severity};

fn main() {
    let service = ClickIncService::new(Topology::emulation_topology_all_tofino())
        .expect("default engine config is valid");
    let programs: Vec<(&str, String)> = vec![
        (
            "kvs_srv",
            kvs_template("kvs_srv", KvsParams { cache_depth: 2000, ..Default::default() }).source,
        ),
        (
            "mlagg",
            mlagg_template(
                "mlagg",
                MlAggParams { dims: 32, num_workers: 4, num_aggregators: 4096, is_float: false },
            )
            .source,
        ),
        ("dqacc", dqacc_template("dqacc", DqAccParams::default()).source),
        ("cms", count_min_sketch("cms", 3, 512).source),
    ];

    println!("=== static verification (deny-warnings) ===\n");
    let mut merged = DiagnosticSet::new();
    let mut failed = false;
    for (user, source) in &programs {
        let request = ServiceRequest::builder(*user)
            .source(source)
            .from_("pod0a")
            .to("pod2b")
            .build()
            .expect("well-formed request");
        let diags = match service.plan(&request) {
            Ok(plan) => plan.diagnostics().clone(),
            Err(err) => {
                // error-severity findings surface here as typed Verification
                // errors; anything else is a toolchain bug worth failing on
                println!("{user}: REFUSED — {err}");
                failed = true;
                continue;
            }
        };
        let verdict = if diags.has_warnings() {
            failed = true;
            "FAIL (warnings denied)"
        } else {
            "ok"
        };
        println!(
            "{user}: {verdict} — {} error(s), {} warning(s), {} info(s)",
            diags.at(Severity::Error).count(),
            diags.at(Severity::Warning).count(),
            diags.at(Severity::Info).count(),
        );
        merged.merge(diags);
    }

    println!("\n--- diagnostics JSON export ({} findings) ---", merged.len());
    let json = merged.to_json();
    println!("{json}");
    let parsed = DiagnosticSet::from_json(&json).expect("export round-trips");
    assert_eq!(parsed, merged, "JSON export must round-trip losslessly");

    if failed {
        println!("\nverification FAILED");
        std::process::exit(1);
    }
    println!("\nall programs verified clean");
}
