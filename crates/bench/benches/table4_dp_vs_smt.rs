//! Table 4 — DP vs SMT-style placement on a chain of four 8-stage Tofino
//! switches: dependency depth, per-device stages and instructions, solve time.

use clickinc_blockdag::{build_block_dag, BlockConfig};
use clickinc_frontend::compile_source;
use clickinc_lang::templates::{
    dqacc_template, kvs_template, mlagg_template, DqAccParams, KvsParams, MlAggParams,
};
use clickinc_placement::{
    place, place_smt, PlacementConfig, PlacementNetwork, ResourceLedger, SmtConfig,
};
use clickinc_topology::{reduce_for_traffic, Topology};
use std::time::Duration;

fn main() {
    println!("== Table 4: placement plans from the DP and SMT-style algorithms ==");
    println!("(chain of 4 Tofino switches; paper solve times: SMT 160-961 s, DP 0.08-1.3 s)");
    println!(
        "{:<7} {:>5} {:<14} {:<18} {:>12} {:<14} {:<18} {:>12}",
        "App", "dep", "DP stages", "DP instrs", "DP time", "SMT stages", "SMT instrs", "SMT time"
    );
    let topo = Topology::chain(4, clickinc_device::DeviceKind::Tofino);
    let servers = topo.servers();
    let reduced = reduce_for_traffic(&topo, &[servers[0]], servers[1], &[]);
    let apps = [
        ("KVS", kvs_template("kvs", KvsParams::default()).source),
        ("MLAgg", mlagg_template("mlagg", MlAggParams { dims: 16, ..Default::default() }).source),
        // ways=4 keeps the rolling-cache critical path within one Tofino pipeline
        // under this model's stricter predication-depth accounting
        ("DQAcc", dqacc_template("dqacc", DqAccParams { depth: 5000, ways: 4 }).source),
    ];
    for (name, source) in apps {
        let ir = compile_source(name, &source).expect("compiles");
        let dag = build_block_dag(&ir, &BlockConfig::default());
        let net = PlacementNetwork::from_reduced(&topo, &reduced, &ResourceLedger::new());

        let dp = place(&ir, &dag, &net, &PlacementConfig::default()).expect("DP places");
        let smt = place_smt(
            &ir,
            &dag,
            &net,
            &SmtConfig { time_limit: Duration::from_secs(60), ..Default::default() },
        );
        let (smt_stages, smt_instrs, smt_time) = match &smt {
            Ok((plan, _)) => (
                format!("{:?}", plan.stages_per_device()),
                format!("{:?}", plan.instructions_per_device()),
                format!("{:.2?}", plan.solve_time),
            ),
            Err(e) => ("-".into(), format!("{e}"), "-".into()),
        };
        println!(
            "{:<7} {:>5} {:<14} {:<18} {:>12} {:<14} {:<18} {:>12}",
            name,
            ir.dependency_depth(),
            format!("{:?}", dp.stages_per_device()),
            format!("{:?}", dp.instructions_per_device()),
            format!("{:.2?}", dp.solve_time),
            smt_stages,
            smt_instrs,
            smt_time,
        );
    }
}
