//! Tenant routing material shared between the control plane and the engine.
//!
//! A tenant's deployment, from the engine's point of view, is nothing more
//! than an ordered list of programmable hops: which device, which model (for
//! latency accounting on the shard's plane replicas), and which isolated IR
//! snippets to install there.  The controller (`clickinc`) produces these
//! from a placement plan; hand-built hop lists (as the benches and the
//! engine-invariance tests do) work just as well.

use clickinc_device::DeviceModel;
use clickinc_ir::IrProgram;

/// One programmable hop of a tenant's deployment: the physical device, its
/// model (for latency accounting on replicas of the plane), and the isolated
/// IR snippets installed there.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantHop {
    /// Topology node name of the device.
    pub device: String,
    /// The device model.
    pub model: DeviceModel,
    /// The snippets installed on this device for the tenant, in install order.
    pub snippets: Vec<IrProgram>,
}

/// How a tenant's traffic (and therefore its data-plane state) is
/// partitioned across engine shards.
///
/// * [`ByTenant`](ShardingMode::ByTenant) pins everything on one shard picked
///   by a stable hash of the tenant id.  This is always safe — the tenant's
///   state lives in exactly one place — and is bit-identical in the shard
///   count, but caps a single tenant at one worker thread.
/// * [`ByFlow`](ShardingMode::ByFlow) installs the tenant's program on
///   *every* shard and spreads its packets by a stable FNV hash of the flow
///   key, so one hot tenant can use every core.  Sound only for tenants whose
///   inter-packet state is *flow-keyed*: every stateful access must be
///   indexed by the `key_fields` (then all packets sharing a state cell land
///   on the same shard) or the tenant must carry no inter-packet state at
///   all.  Merged telemetry totals match the `ByTenant` run; per-shard state
///   partitions re-merge additively when the engine finishes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ShardingMode {
    /// All traffic and state on one shard (hash of the tenant id).
    #[default]
    ByTenant,
    /// Flows spread across every shard by a stable FNV flow hash.
    ByFlow {
        /// INC header fields forming the flow key.  Empty means the full
        /// flow identity: source, destination and every application field.
        key_fields: Vec<String>,
    },
}

impl ShardingMode {
    /// Whether this mode spreads a single tenant across every shard.
    pub fn is_by_flow(&self) -> bool {
        matches!(self, ShardingMode::ByFlow { .. })
    }

    /// Schema-stable label for telemetry export: `"by_tenant"`, `"by_flow"`
    /// (full flow identity) or `"by_flow:<field>+<field>"`.
    pub fn label(&self) -> String {
        match self {
            ShardingMode::ByTenant => "by_tenant".to_string(),
            ShardingMode::ByFlow { key_fields } if key_fields.is_empty() => "by_flow".to_string(),
            ShardingMode::ByFlow { key_fields } => format!("by_flow:{}", key_fields.join("+")),
        }
    }
}
