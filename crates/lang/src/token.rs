//! Tokens of the ClickINC language.

use crate::error::Span;
use std::fmt;

/// Kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (variable, function, module name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (without quotes).
    Str(String),
    /// Keyword `if`.
    If,
    /// Keyword `elif`.
    Elif,
    /// Keyword `else`.
    Else,
    /// Keyword `for`.
    For,
    /// Keyword `in`.
    In,
    /// Keyword `and`.
    And,
    /// Keyword `or`.
    Or,
    /// Keyword `not`.
    Not,
    /// Keyword `from`.
    From,
    /// Keyword `import`.
    Import,
    /// Keyword `def`.
    Def,
    /// Keyword `return`.
    Return,
    /// Keyword `None`.
    None,
    /// Keyword `True`.
    True,
    /// Keyword `False`.
    False,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `//`
    SlashSlash,
    /// `%`
    Percent,
    /// `**`
    StarStar,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// End of a logical line.
    Newline,
    /// Increase of indentation level.
    Indent,
    /// Decrease of indentation level.
    Dedent,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Map an identifier to a keyword token if it is one.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "if" => TokenKind::If,
            "elif" => TokenKind::Elif,
            "else" => TokenKind::Else,
            "for" => TokenKind::For,
            "in" => TokenKind::In,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            "from" => TokenKind::From,
            "import" => TokenKind::Import,
            "def" => TokenKind::Def,
            "return" => TokenKind::Return,
            "None" => TokenKind::None,
            "True" => TokenKind::True,
            "False" => TokenKind::False,
            _ => return Option::None,
        })
    }

    /// Short description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("float `{v}`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::Newline => "newline".to_string(),
            TokenKind::Indent => "indent".to_string(),
            TokenKind::Dedent => "dedent".to_string(),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::If => "if",
            TokenKind::Elif => "elif",
            TokenKind::Else => "else",
            TokenKind::For => "for",
            TokenKind::In => "in",
            TokenKind::And => "and",
            TokenKind::Or => "or",
            TokenKind::Not => "not",
            TokenKind::From => "from",
            TokenKind::Import => "import",
            TokenKind::Def => "def",
            TokenKind::Return => "return",
            TokenKind::None => "None",
            TokenKind::True => "True",
            TokenKind::False => "False",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::SlashSlash => "//",
            TokenKind::Percent => "%",
            TokenKind::StarStar => "**",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Assign => "=",
            TokenKind::PlusAssign => "+=",
            TokenKind::MinusAssign => "-=",
            TokenKind::Amp => "&",
            TokenKind::Pipe => "|",
            TokenKind::Caret => "^",
            TokenKind::Tilde => "~",
            TokenKind::Shl => "<<",
            TokenKind::Shr => ">>",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::Comma => ",",
            TokenKind::Colon => ":",
            TokenKind::Dot => ".",
            _ => "?",
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Source position.
    pub span: Span,
}

impl Token {
    /// Create a token.
    pub fn new(kind: TokenKind, span: Span) -> Token {
        Token { kind, span }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_recognized() {
        assert_eq!(TokenKind::keyword("if"), Some(TokenKind::If));
        assert_eq!(TokenKind::keyword("for"), Some(TokenKind::For));
        assert_eq!(TokenKind::keyword("None"), Some(TokenKind::None));
        assert_eq!(TokenKind::keyword("hdr"), None);
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(TokenKind::Ident("cache".into()).describe(), "identifier `cache`");
        assert_eq!(TokenKind::Shl.describe(), "`<<`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
        assert_eq!(TokenKind::Int(5).describe(), "integer `5`");
    }

    #[test]
    fn token_display_uses_describe() {
        let t = Token::new(TokenKind::Colon, Span::new(1, 1));
        assert_eq!(t.to_string(), "`:`");
    }
}
