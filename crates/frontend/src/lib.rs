//! # clickinc-frontend — the compiler frontend
//!
//! The frontend lowers a parsed ClickINC program into the platform-independent
//! IR, performing the four passes described in §4.2 of the paper:
//!
//! 1. **Inlining** — user-defined helper functions (`def`) and provider
//!    templates instantiated in the program (e.g. `agg = MLAgg(...)`; `agg(hdr)`)
//!    are expanded at their call sites;
//! 2. **Loop unrolling** — `for i in range(N)` with a compile-time constant trip
//!    count is fully unrolled (a non-constant bound is a compile error, matching
//!    the paper);
//! 3. **If-conversion** — branches become predicated (guarded) straight-line
//!    code: each condition is materialized into a boolean temporary and the
//!    branch bodies execute under a guard on that temporary, with φ-style merge
//!    copies emitted at the join;
//! 4. **SSA / single-operand form** — every temporary gets a fresh version per
//!    assignment so the IR has no write-after-read or write-after-write
//!    dependencies, which the block-DAG construction relies on.
//!
//! The entry points are [`compile_source`] (text → IR) and [`compile_ast`].

mod error;
mod lower;

pub use error::FrontendError;
pub use lower::{CompileOptions, Frontend};

use clickinc_ir::IrProgram;
use clickinc_lang::Program;

/// Compile ClickINC source text into an IR program named `name`.
pub fn compile_source(name: &str, source: &str) -> Result<IrProgram, FrontendError> {
    Frontend::new().compile_source(name, source, &CompileOptions::default())
}

/// Compile a parsed AST into an IR program named `name`.
pub fn compile_ast(name: &str, program: &Program) -> Result<IrProgram, FrontendError> {
    Frontend::new().compile_ast(name, program, &CompileOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_ir::CapabilityClass;

    #[test]
    fn compiles_a_minimal_program() {
        let ir = compile_source("p", "x = 1 + 2\nforward()\n").unwrap();
        assert!(ir.validate().is_ok());
        assert!(ir.required_capabilities().contains(&CapabilityClass::Bbpf));
    }

    #[test]
    fn reports_parse_errors() {
        assert!(matches!(compile_source("p", "if x\n    y = 1\n"), Err(FrontendError::Lang(_))));
    }
}
