//! The failover-serving scenario: a device failure survived mid-run.
//!
//! A victim KVS tenant and a co-resident background MLAgg tenant (on
//! disjoint routes) are deployed and driven through four phases:
//!
//! 1. **pre** — both tenants serve; a baseline admit ratio is recorded;
//! 2. **fault window** — a seeded [`FaultPlan`] marks one of the victim's
//!    devices [`DeviceDown`](clickinc_runtime::FaultKind::DeviceDown) on the
//!    workload's virtual clock, mid-injection: packets that reach the dead
//!    device from that instant on are lost and surface as the victim's
//!    `fault_lost_packets`;
//! 3. **failover** — the controller is told
//!    ([`ClickIncService::fail_device`]): the device is marked down in the
//!    topology, the victim is quiesced through the uninstall path and
//!    re-placed through the full plan → verify → admission → commit chain
//!    with a denylist seeded from the failed-device set.  If no placement
//!    avoiding the failure exists, the victim parks in the typed
//!    [`Degraded`](clickinc::ClickIncError::Degraded) state instead;
//! 4. **restore** — the device returns, parked tenants are retried, and the
//!    victim's post-restore admit ratio is compared against the baseline
//!    ([`FailoverServingReport::recovery_ratio`]).
//!
//! Throughout, the background tenant never routes through the failed device,
//! so its stats and its devices' store fingerprints must be bit-identical to
//! a fault-free run — the blast-radius invariant the failover property tests
//! assert over *generated* fault schedules.

use crate::adaptive::PhaseStats;
use clickinc::{ClickIncError, ClickIncService, ServiceRequest};
use clickinc_emulator::kvs_backend_value;
use clickinc_ir::Value;
use clickinc_lang::templates::{kvs_template, mlagg_template, KvsParams, MlAggParams};
use clickinc_runtime::workload::{
    KvsWorkload, KvsWorkloadConfig, MlAggWorkload, MlAggWorkloadConfig, Workload,
};
use clickinc_runtime::{
    EngineConfig, FaultInjector, FaultKind, FaultPlan, OverloadPolicy, TenantStats, WorkloadReport,
};
use clickinc_topology::Topology;
use std::collections::{BTreeMap, BTreeSet};

/// Sizing of the failover-serving scenario.
#[derive(Debug, Clone)]
pub struct FailoverServingConfig {
    /// Engine shard worker threads.
    pub shards: usize,
    /// Packets per device-queue drain batch.
    pub batch_size: usize,
    /// Per-shard bound on in-flight packets.
    pub queue_capacity: usize,
    /// What the engine does at the bound.
    pub overload: OverloadPolicy,
    /// Victim requests per phase.
    pub requests_per_phase: usize,
    /// Packets handed to the engine per injection round.
    pub inject_batch: usize,
    /// Victim key universe.
    pub keys: usize,
    /// Keys pre-installed in the victim's in-network cache.
    pub cached_keys: i64,
    /// Offered load in packets per second (virtual clock).
    pub rate_pps: f64,
    /// Background gradient-aggregation rounds (spread across the phases).
    pub background_rounds: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Whether the fault fires.  `false` is the fault-free control: same
    /// phases, same traffic, no fault, no failover — the baseline the
    /// faulted run's co-resident results must match bit-identically.
    pub fail: bool,
}

impl Default for FailoverServingConfig {
    fn default() -> Self {
        FailoverServingConfig {
            shards: 4,
            batch_size: 64,
            queue_capacity: 96,
            // backpressure makes admission (and the recovery ratio) exact:
            // a fault costs the victim lost packets, never shed ones
            overload: OverloadPolicy::Backpressure { credits: 256 },
            requests_per_phase: 1024,
            inject_batch: 64,
            keys: 2000,
            cached_keys: 128,
            rate_pps: 50_000_000.0,
            background_rounds: 60,
            seed: 31,
            fail: true,
        }
    }
}

/// What the failover-serving scenario leaves behind.
#[derive(Debug, Clone)]
pub struct FailoverServingReport {
    /// Victim admission before the fault.
    pub pre: PhaseStats,
    /// Victim admission during the fault window (packets past the fault
    /// instant are admitted at ingress but lost at the dead device).
    pub faulted: PhaseStats,
    /// Victim admission after the failover re-placement, while the device
    /// is still down.  `None` when the victim parked `Degraded` (no
    /// alternative placement existed until the restore).
    pub recovered: Option<PhaseStats>,
    /// Victim admission after the restore.
    pub post: PhaseStats,
    /// The failed device, when [`FailoverServingConfig::fail`] was set.
    pub failed_device: Option<String>,
    /// Whether the failover re-placed the victim immediately (vs parking it
    /// `Degraded` until the restore).
    pub recovered_immediately: bool,
    /// Final telemetry of the victim (`victim_kvs`), fault metrics included.
    pub victim: TenantStats,
    /// Final telemetry of the co-resident background tenant (`bg_agg`).
    pub bystander: TenantStats,
    /// Physical devices the victim occupied at any point (pre-fault and
    /// every re-placement) — the fault's maximum blast radius.
    pub victim_devices: BTreeSet<String>,
    /// Physical devices hosting the background tenant.
    pub bystander_devices: BTreeSet<String>,
    /// Final object-store fingerprints per device, merged across shards.
    pub store_fingerprints: BTreeMap<String, u64>,
}

impl FailoverServingReport {
    /// Post-restore admits over pre-fault admits (both phases offer the
    /// same request count): ≈ 1 when the failover fully restored service.
    pub fn recovery_ratio(&self) -> f64 {
        if self.pre.admitted == 0 {
            return 1.0;
        }
        self.post.admitted as f64 / self.pre.admitted as f64
    }

    /// Store fingerprints of the devices that host the background tenant
    /// and were never touched by the victim — the set that must match a
    /// fault-free run bit-identically.
    pub fn bystander_fingerprints(&self) -> BTreeMap<String, u64> {
        self.store_fingerprints
            .iter()
            .filter(|(device, _)| {
                self.bystander_devices.contains(*device) && !self.victim_devices.contains(*device)
            })
            .map(|(device, fp)| (device.clone(), *fp))
            .collect()
    }
}

fn phase(report: &WorkloadReport) -> PhaseStats {
    PhaseStats { offered: report.generated, admitted: report.admitted, shed: report.shed }
}

fn physical_devices_of(service: &ClickIncService, user: &str) -> BTreeSet<String> {
    let controller = service.controller();
    controller
        .devices_of(user)
        .into_iter()
        .map(|id| controller.topology().node(id).name.clone())
        .collect()
}

/// Run the device-failure scenario; see the [module docs](self) for the
/// phases.
pub fn serve_failover_scenario(
    config: &FailoverServingConfig,
) -> Result<FailoverServingReport, ClickIncError> {
    let service = ClickIncService::with_config(
        Topology::emulation_topology_all_tofino(),
        EngineConfig {
            shards: config.shards,
            batch_size: config.batch_size,
            queue_capacity: config.queue_capacity,
            overload: config.overload.clone(),
            ..Default::default()
        },
    )?;
    let handles = service.deploy_all(vec![
        ServiceRequest::builder("victim_kvs")
            .template(kvs_template(
                "victim_kvs",
                KvsParams { cache_depth: 2000, ..Default::default() },
            ))
            .from_("pod0a")
            .from_("pod1a")
            .to("pod2b")
            .build()?,
        ServiceRequest::builder("bg_agg")
            .template(mlagg_template(
                "bg_agg",
                MlAggParams { dims: 16, num_workers: 4, num_aggregators: 1024, is_float: false },
            ))
            .from_("pod0b")
            .from_("pod1b")
            .to("pod2a")
            .build()?,
    ])?;
    let victim = &handles[0];
    for key in 0..config.cached_keys {
        victim.populate_table(
            "victim_kvs_cache",
            vec![Value::Int(key)],
            vec![Value::Int(kvs_backend_value(key))],
        );
    }
    let mut victim_devices = physical_devices_of(&service, "victim_kvs");
    let bystander_devices = physical_devices_of(&service, "bg_agg");

    // one victim workload per phase: a failover re-placement mints a fresh
    // numeric id, so each phase stamps the id the isolation guard currently
    // matches.  A parked victim has no id and the phase is skipped.
    let engine = service.engine_handle();
    let run_victim = |seed_offset: u64, injector: Option<&mut FaultInjector>| {
        let numeric_id = service.controller().numeric_id_of("victim_kvs")?;
        let mut wl = KvsWorkload::new(KvsWorkloadConfig {
            tenant: "victim_kvs".to_string(),
            user_id: numeric_id,
            keys: config.keys,
            skew: 1.1,
            requests: config.requests_per_phase,
            rate_pps: config.rate_pps,
            seed: config.seed + seed_offset,
        });
        let wl: &mut dyn Workload = &mut wl;
        let report = match injector {
            Some(injector) => {
                engine.run_workload_with_faults(wl, usize::MAX, config.inject_batch, injector)
            }
            None => engine.run_workload(wl, usize::MAX, config.inject_batch),
        };
        service.flush();
        Some(report)
    };
    let mut bg_wl = MlAggWorkload::new(MlAggWorkloadConfig {
        tenant: "bg_agg".to_string(),
        user_id: handles[1].numeric_id(),
        workers: 4,
        rounds: config.background_rounds,
        dims: 16,
        sparsity: 0.5,
        block_size: 8,
        rate_pps: config.rate_pps / 10.0,
        seed: config.seed + 1,
    });
    let bg_chunk = (config.background_rounds * 4).div_ceil(4);
    let mut run_bystander = |limit: usize| {
        engine.run_workload(&mut bg_wl, limit, 32);
        service.flush();
    };

    // the fault target: a victim device the background tenant never routes
    // through, so the blast radius is the victim alone by construction
    let fault_device = victim_devices
        .iter()
        .find(|d| !bystander_devices.contains(*d))
        .cloned()
        .expect("the disjoint-route tenants share no device");

    // phase 1: pre-fault baseline
    let pre = run_victim(0, None).expect("victim serves");
    run_bystander(bg_chunk);

    // phase 2: the fault window — the device dies mid-injection on the
    // virtual clock; every later packet crossing it is lost
    let fault_vtime_ns = (config.requests_per_phase as f64 / config.rate_pps * 1e9 / 4.0) as u64;
    let faulted = if config.fail {
        let plan = FaultPlan::new().at(fault_vtime_ns, fault_device.clone(), FaultKind::DeviceDown);
        let mut injector = FaultInjector::new(plan);
        let report = run_victim(2, Some(&mut injector)).expect("victim still deployed");
        phase(&report)
    } else {
        phase(&run_victim(2, None).expect("victim serves"))
    };
    run_bystander(bg_chunk);

    // phase 3: controller failover — quiesce, re-place (or park Degraded)
    let mut failed_device = None;
    let mut recovered_immediately = true;
    if config.fail {
        let report = service.fail_device(&fault_device)?;
        recovered_immediately = report.fully_recovered();
        victim_devices.extend(physical_devices_of(&service, "victim_kvs"));
        failed_device = Some(fault_device.clone());
    }
    let recovered = run_victim(3, None).map(|r| phase(&r));
    run_bystander(bg_chunk);

    // phase 4: restore — parked tenants retry; service is whole again
    if config.fail {
        let report = service.restore_device(&fault_device)?;
        if !report.fully_recovered() {
            // a restored full topology re-places everything it could place
            // before the fault; anything else is a real error worth surfacing
            return Err(report.degraded.into_iter().next().expect("non-empty"));
        }
        victim_devices.extend(physical_devices_of(&service, "victim_kvs"));
    }
    let post = run_victim(4, None).expect("victim serves after restore");
    run_bystander(usize::MAX);

    let outcome = service.finish();
    let stats = |user: &str| {
        outcome.telemetry.tenant(user).cloned().unwrap_or_else(|| panic!("{user} was served"))
    };
    Ok(FailoverServingReport {
        pre: phase(&pre),
        faulted,
        recovered,
        post: phase(&post),
        failed_device,
        recovered_immediately,
        victim: stats("victim_kvs"),
        bystander: stats("bg_agg"),
        victim_devices,
        bystander_devices,
        store_fingerprints: outcome
            .stores
            .iter()
            .map(|(device, store)| (device.clone(), store.fingerprint()))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_failover_restores_the_victims_service() {
        let report = serve_failover_scenario(&FailoverServingConfig::default())
            .expect("failover scenario serves");
        let device = report.failed_device.clone().expect("a device failed");
        assert!(report.victim.fault_lost_packets > 0, "the dead device lost packets");
        assert!(!report.victim_devices.is_empty(), "victim occupied devices");
        assert!(
            !physical_intersects(&report.bystander_devices, &device),
            "the fault never touched the bystander's route"
        );
        assert!(
            report.recovery_ratio() >= 0.9,
            "post-restore service recovered: {:.3} (pre {:?}, post {:?})",
            report.recovery_ratio(),
            report.pre,
            report.post
        );
        assert_eq!(report.bystander.fault_lost_packets, 0, "no bystander losses");
        assert!(!report.bystander_fingerprints().is_empty(), "comparable bystander devices exist");
    }

    #[test]
    fn the_bystander_is_bit_identical_to_a_fault_free_run() {
        let faulted =
            serve_failover_scenario(&FailoverServingConfig::default()).expect("faulted run serves");
        let clean =
            serve_failover_scenario(&FailoverServingConfig { fail: false, ..Default::default() })
                .expect("clean run serves");
        assert_eq!(
            faulted.bystander, clean.bystander,
            "co-resident stats diverged under the fault"
        );
        assert_eq!(
            faulted.bystander_fingerprints(),
            clean.bystander_fingerprints(),
            "co-resident store fingerprints diverged under the fault"
        );
        assert!(faulted.victim.fault_lost_packets > 0);
        assert_eq!(clean.victim.fault_lost_packets, 0);
    }

    fn physical_intersects(devices: &BTreeSet<String>, device: &str) -> bool {
        devices.contains(device)
    }
}
