//! Admission control: provider policy between a solved plan and its commit.
//!
//! INC as a service means the provider — not the tenant — decides what runs
//! on the shared data plane (paper §3.2; cf. NetRPC's shared-INC admission
//! model).  Feasibility alone ("the program compiles and places") is not
//! admission: a provider also enforces resource headroom for residents,
//! tenant quotas, and device carve-outs.  This module is that layer.
//!
//! An [`AdmissionPolicy`] inspects an [`AdmissionContext`] — the solved
//! [`DeploymentPlan`] plus the controller facts at the would-be commit — and
//! returns an [`AdmissionDecision`].  Policies compose with [`PolicyChain`]
//! (first rejection wins).  Every commit path of the service threads through
//! the installed chain **before the first mutation**, so a rejection leaves
//! the ledger, the planes and the engine bit-identical to before the call
//! and surfaces as [`ClickIncError::Rejected`].
//!
//! [`ClickIncError::Rejected`]: crate::ClickIncError::Rejected

use crate::controller::DeploymentPlan;
use std::collections::BTreeSet;
use std::fmt;

/// What a policy sees when a plan asks to commit: the plan itself plus the
/// controller-wide facts of the moment.  For a batch, each member is gated
/// at *its own* commit — `active_tenants` and `remaining_ratio` already
/// include the batch members committed before it.
#[derive(Clone, Copy)]
pub struct AdmissionContext<'a> {
    /// The solved plan asking to commit.
    pub plan: &'a DeploymentPlan,
    /// Number of tenants currently deployed (not counting this plan).
    pub active_tenants: usize,
    /// Network-wide remaining resource ratio *before* this plan commits.
    pub remaining_ratio: f64,
}

/// The structured outcome of an admission check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The plan may commit.
    Admit,
    /// The plan must not commit.
    Reject {
        /// Name of the policy that refused (for a chain, the first refuser).
        policy: String,
        /// Human-readable grounds.
        reason: String,
    },
}

impl AdmissionDecision {
    /// Build a rejection carrying the refusing policy's name.
    pub fn reject(policy: &impl AdmissionPolicy, reason: impl Into<String>) -> AdmissionDecision {
        AdmissionDecision::Reject { policy: policy.name().to_string(), reason: reason.into() }
    }

    /// Whether the decision admits the plan.
    pub fn is_admit(&self) -> bool {
        matches!(self, AdmissionDecision::Admit)
    }
}

impl fmt::Display for AdmissionDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionDecision::Admit => write!(f, "admit"),
            AdmissionDecision::Reject { policy, reason } => {
                write!(f, "reject by `{policy}`: {reason}")
            }
        }
    }
}

/// A composable admission rule.  `Send + Sync` because chains are installed
/// on the service and consulted from whatever thread commits.
pub trait AdmissionPolicy: Send + Sync {
    /// Stable policy name, quoted in [`AdmissionDecision::Reject`] and
    /// [`ClickIncError::Rejected`](crate::ClickIncError::Rejected).
    fn name(&self) -> &str;

    /// Judge one would-be commit.
    fn evaluate(&self, ctx: &AdmissionContext<'_>) -> AdmissionDecision;
}

/// Reject any plan whose *predicted* post-commit remaining resource ratio
/// falls below a floor — the provider's headroom guarantee for resident
/// tenants and future arrivals (the ROADMAP's "reject commits that would
/// push the remaining ratio below a floor" bullet, verbatim).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceFloor {
    /// Minimum acceptable network-wide remaining resource ratio after the
    /// commit, in `[0, 1]`.
    pub min_remaining_ratio: f64,
}

impl AdmissionPolicy for ResourceFloor {
    fn name(&self) -> &str {
        "resource_floor"
    }

    fn evaluate(&self, ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        let predicted = ctx.plan.predicted_remaining_ratio();
        if predicted < self.min_remaining_ratio {
            AdmissionDecision::reject(
                self,
                format!(
                    "predicted remaining ratio {predicted:.4} would fall below the \
                     {:.4} floor",
                    self.min_remaining_ratio
                ),
            )
        } else {
            AdmissionDecision::Admit
        }
    }
}

/// Cap the number of co-resident tenants (a provider quota).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxTenants {
    /// Maximum number of simultaneously deployed tenants.
    pub max_tenants: usize,
}

impl AdmissionPolicy for MaxTenants {
    fn name(&self) -> &str {
        "max_tenants"
    }

    fn evaluate(&self, ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        if ctx.active_tenants >= self.max_tenants {
            AdmissionDecision::reject(
                self,
                format!(
                    "{} tenant(s) already deployed, the cap is {}",
                    ctx.active_tenants, self.max_tenants
                ),
            )
        } else {
            AdmissionDecision::Admit
        }
    }
}

/// Cap the share of the network's *remaining* capacity a single commit may
/// consume — the fair-share rule of a multi-tenant provider: no arrival,
/// however legitimate, may swallow more than `max_fraction` of what is
/// currently left for everyone.  The consumed share is measured as the drop
/// from the pre-commit remaining ratio to the plan's predicted post-commit
/// ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairShare {
    /// Largest tolerated drop in the network-wide remaining resource ratio
    /// for one commit, in `[0, 1]`.
    pub max_fraction: f64,
}

impl AdmissionPolicy for FairShare {
    fn name(&self) -> &str {
        "fair_share"
    }

    fn evaluate(&self, ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        let consumed = ctx.remaining_ratio - ctx.plan.predicted_remaining_ratio();
        if consumed > self.max_fraction {
            AdmissionDecision::reject(
                self,
                format!(
                    "plan would consume {consumed:.4} of remaining capacity, above the \
                     {:.4} fair-share cap",
                    self.max_fraction
                ),
            )
        } else {
            AdmissionDecision::Admit
        }
    }
}

/// Under resource pressure, admit only high-priority tenants.  While the
/// network-wide remaining ratio stays at or above `pressure_threshold` every
/// priority is welcome; once it drops below, requests whose
/// [`priority`](crate::ServiceRequest::priority) is under `min_priority` are
/// turned away (and, through the service retry queue, re-tried when capacity
/// frees up).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityAdmission {
    /// Remaining-ratio level below which the priority gate engages.
    pub pressure_threshold: f64,
    /// Minimum request priority admitted while the gate is engaged.
    pub min_priority: u8,
}

impl AdmissionPolicy for PriorityAdmission {
    fn name(&self) -> &str {
        "priority_admission"
    }

    fn evaluate(&self, ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        let priority = ctx.plan.request().priority;
        if ctx.remaining_ratio < self.pressure_threshold && priority < self.min_priority {
            AdmissionDecision::reject(
                self,
                format!(
                    "remaining ratio {:.4} is under the {:.4} pressure threshold and \
                     priority {priority} is below the {} minimum",
                    ctx.remaining_ratio, self.pressure_threshold, self.min_priority
                ),
            )
        } else {
            AdmissionDecision::Admit
        }
    }
}

/// Reject plans that touch carved-out devices (maintenance windows,
/// devices reserved for provider infrastructure, failed devices awaiting
/// repair, …).  Matches both the display names reported by
/// [`DeploymentPlan::devices`] and the physical topology node names of
/// [`DeploymentPlan::physical_devices`], so the failover path can seed a
/// denylist directly with the failed-device set it reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceDenylist {
    denied: BTreeSet<String>,
}

impl DeviceDenylist {
    /// Deny the given device display names.
    pub fn new<I, S>(devices: I) -> DeviceDenylist
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        DeviceDenylist { denied: devices.into_iter().map(Into::into).collect() }
    }

    /// The denied device names.
    pub fn denied(&self) -> &BTreeSet<String> {
        &self.denied
    }
}

impl AdmissionPolicy for DeviceDenylist {
    fn name(&self) -> &str {
        "device_denylist"
    }

    fn evaluate(&self, ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        let hit: BTreeSet<String> = ctx
            .plan
            .devices()
            .into_iter()
            .chain(ctx.plan.physical_devices().iter().cloned())
            .filter(|d| self.denied.contains(d))
            .collect();
        if hit.is_empty() {
            AdmissionDecision::Admit
        } else {
            AdmissionDecision::reject(
                self,
                format!(
                    "plan occupies denylisted device(s): {}",
                    hit.into_iter().collect::<Vec<_>>().join(", ")
                ),
            )
        }
    }
}

/// An ordered conjunction of policies: every member must admit; the first
/// rejection wins and its member's name (not "chain") is what the decision
/// and the [`Rejected`](crate::ClickIncError::Rejected) error carry.  An
/// empty chain admits everything — it is the service default.
#[derive(Default)]
pub struct PolicyChain {
    policies: Vec<Box<dyn AdmissionPolicy>>,
}

impl PolicyChain {
    /// The empty (admit-everything) chain.
    pub fn new() -> PolicyChain {
        PolicyChain::default()
    }

    /// Append a policy (builder style).
    pub fn with(mut self, policy: impl AdmissionPolicy + 'static) -> PolicyChain {
        self.push(policy);
        self
    }

    /// Append a policy.
    pub fn push(&mut self, policy: impl AdmissionPolicy + 'static) {
        self.policies.push(Box::new(policy));
    }

    /// Number of member policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Whether the chain is empty (admits everything).
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }
}

impl AdmissionPolicy for PolicyChain {
    fn name(&self) -> &str {
        "policy_chain"
    }

    fn evaluate(&self, ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        for policy in &self.policies {
            let decision = policy.evaluate(ctx);
            if !decision.is_admit() {
                return decision;
            }
        }
        AdmissionDecision::Admit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Controller, ServiceRequest};
    use clickinc_lang::templates::{kvs_template, KvsParams};
    use clickinc_topology::Topology;

    fn planned() -> (Controller, DeploymentPlan) {
        let c = Controller::new(Topology::emulation_topology_all_tofino());
        let t = kvs_template("kvs0", KvsParams { cache_depth: 1000, ..Default::default() });
        let plan = c.plan(&ServiceRequest::from_template(t, &["pod0a"], "pod2b")).expect("plans");
        (c, plan)
    }

    fn ctx_of(plan: &DeploymentPlan, active: usize, remaining: f64) -> AdmissionContext<'_> {
        AdmissionContext { plan, active_tenants: active, remaining_ratio: remaining }
    }

    #[test]
    fn resource_floor_compares_the_predicted_ratio() {
        let (_c, plan) = planned();
        let predicted = plan.predicted_remaining_ratio();
        let lenient = ResourceFloor { min_remaining_ratio: predicted - 0.01 };
        assert!(lenient.evaluate(&ctx_of(&plan, 0, 1.0)).is_admit());
        let strict = ResourceFloor { min_remaining_ratio: predicted + 0.01 };
        match strict.evaluate(&ctx_of(&plan, 0, 1.0)) {
            AdmissionDecision::Reject { policy, reason } => {
                assert_eq!(policy, "resource_floor");
                assert!(reason.contains("floor"), "got: {reason}");
            }
            AdmissionDecision::Admit => panic!("the strict floor must reject"),
        }
    }

    #[test]
    fn max_tenants_counts_the_residents() {
        let (_c, plan) = planned();
        let cap = MaxTenants { max_tenants: 2 };
        assert!(cap.evaluate(&ctx_of(&plan, 1, 1.0)).is_admit());
        assert!(!cap.evaluate(&ctx_of(&plan, 2, 1.0)).is_admit());
    }

    #[test]
    fn fair_share_caps_the_per_commit_capacity_drop() {
        let (_c, plan) = planned();
        let consumed = 1.0 - plan.predicted_remaining_ratio();
        assert!(consumed > 0.0, "a real plan consumes something");
        let lenient = FairShare { max_fraction: consumed + 0.01 };
        assert!(lenient.evaluate(&ctx_of(&plan, 0, 1.0)).is_admit());
        let strict = FairShare { max_fraction: consumed / 2.0 };
        match strict.evaluate(&ctx_of(&plan, 0, 1.0)) {
            AdmissionDecision::Reject { policy, reason } => {
                assert_eq!(policy, "fair_share");
                assert!(reason.contains("fair-share"), "got: {reason}");
            }
            AdmissionDecision::Admit => panic!("the strict cap must reject"),
        }
    }

    #[test]
    fn priority_admission_gates_only_under_pressure() {
        let (_c, plan) = planned(); // priority 0 request
        let gate = PriorityAdmission { pressure_threshold: 0.5, min_priority: 3 };
        // no pressure: every priority admitted
        assert!(gate.evaluate(&ctx_of(&plan, 0, 0.9)).is_admit());
        // under pressure: priority 0 < 3 rejected
        match gate.evaluate(&ctx_of(&plan, 0, 0.2)) {
            AdmissionDecision::Reject { policy, reason } => {
                assert_eq!(policy, "priority_admission");
                assert!(reason.contains("pressure"), "got: {reason}");
            }
            AdmissionDecision::Admit => panic!("low priority under pressure must reject"),
        }
        // under pressure but important enough: admitted
        let (c, _old) = planned();
        let t = kvs_template("vip", KvsParams { cache_depth: 1000, ..Default::default() });
        let vip = c
            .plan(&ServiceRequest::from_template(t, &["pod0a"], "pod2b").with_priority(5))
            .expect("plans");
        assert!(gate.evaluate(&ctx_of(&vip, 0, 0.2)).is_admit());
    }

    #[test]
    fn device_denylist_matches_plan_devices() {
        let (_c, plan) = planned();
        let free = DeviceDenylist::new(["not-a-device"]);
        assert!(free.evaluate(&ctx_of(&plan, 0, 1.0)).is_admit());
        let first_device = plan.devices().first().cloned().expect("plan occupies devices");
        let carved = DeviceDenylist::new([first_device.clone()]);
        match carved.evaluate(&ctx_of(&plan, 0, 1.0)) {
            AdmissionDecision::Reject { policy, reason } => {
                assert_eq!(policy, "device_denylist");
                assert!(reason.contains(&first_device));
            }
            AdmissionDecision::Admit => panic!("the denylisted device must reject"),
        }
        // physical topology names match too — the failover path denies by
        // the same names a device failure reports
        let physical =
            plan.physical_devices().first().cloned().expect("plan occupies physical devices");
        let failed = DeviceDenylist::new([physical.clone()]);
        match failed.evaluate(&ctx_of(&plan, 0, 1.0)) {
            AdmissionDecision::Reject { policy, reason } => {
                assert_eq!(policy, "device_denylist");
                assert!(reason.contains(&physical), "got: {reason}");
            }
            AdmissionDecision::Admit => panic!("the physical device name must reject"),
        }
    }

    #[test]
    fn chains_admit_all_or_surface_the_first_rejection() {
        let (_c, plan) = planned();
        assert!(PolicyChain::new().evaluate(&ctx_of(&plan, 5, 0.1)).is_admit(), "empty = open");
        let chain = PolicyChain::new()
            .with(MaxTenants { max_tenants: 10 })
            .with(ResourceFloor { min_remaining_ratio: 2.0 }) // impossible: always rejects
            .with(MaxTenants { max_tenants: 0 }); // would also reject, but never runs
        match chain.evaluate(&ctx_of(&plan, 0, 1.0)) {
            AdmissionDecision::Reject { policy, .. } => {
                assert_eq!(policy, "resource_floor", "first rejection wins");
            }
            AdmissionDecision::Admit => panic!("the chain must reject"),
        }
    }
}
