//! Quickstart: write a ClickINC program, dry-run it with `plan`, commit it
//! through the `ClickIncService`, and inspect what the toolchain produced.
//!
//! Run with: `cargo run --example quickstart`

use clickinc::topology::Topology;
use clickinc::{ClickIncService, ServiceRequest};

fn main() {
    // The count-min-sketch module program of the paper's Fig. 1, written in the
    // Python-style ClickINC language.
    let source = "\
mem = Sketch(type=\"count-min\", rows=3, cols=65536, w=32)
vals = list()
for i in range(3):
    vals.append(count(mem, hdr.key, 1))
relt = min(vals)
hdr.estimate = relt
forward()
";
    println!("=== ClickINC quickstart ===\n");
    println!("user program ({} LoC):\n{source}", clickinc::lang::lines_of_code(source));

    // Serve the paper's Fig. 11 emulation topology.
    let topology = Topology::emulation_topology();
    let service = ClickIncService::new(topology).expect("default engine config is valid");

    // Describe the deployment with the validating builder: traffic flows
    // from pod0(a) to pod2(b).
    let request = ServiceRequest::builder("heavyhitter_0")
        .source(source)
        .from_("pod0a")
        .to("pod2b")
        .build()
        .expect("well-formed request");

    // Plan: a pure dry-run — nothing is booked or installed yet.
    let plan = service.plan(&request).expect("planning succeeds");
    println!("compiled to {} IR instructions", plan.program().len());
    println!("grouped into {} blocks", plan.dag().len());
    println!(
        "placement gain: {:.4} (solve time {:.2?})",
        plan.placement().gain,
        plan.placement().solve_time
    );
    for assignment in plan.placement().assignments.iter().filter(|a| !a.is_empty()) {
        println!(
            "  -> {}: {} instructions in {} pipeline stages (steps {}..{})",
            assignment.device,
            assignment.instrs.len(),
            assignment.stages_used,
            assignment.step_range.0,
            assignment.step_range.1,
        );
    }
    println!(
        "predicted remaining resources after commit: {:.1}%",
        plan.predicted_remaining_ratio() * 100.0
    );

    // Commit: book resources, install snippets, mirror onto the engine.
    let tenant = service.commit(plan).expect("commit succeeds");
    println!("\ncommitted as tenant `{}` (numeric id {})", tenant.user(), tenant.numeric_id());

    println!("\ngenerated device programs:");
    {
        let controller = service.controller();
        let deployment = controller.deployment("heavyhitter_0").expect("tenant is active");
        for (node, program) in &deployment.device_programs {
            println!(
                "  {} ({}): {} lines of {}",
                controller.topology().node(*node).name,
                controller.topology().node(*node).kind,
                program.lines_of_code(),
                program.language
            );
        }
    }
    println!(
        "\nremaining network resources: {:.1}% (the plan's prediction was exact)",
        service.remaining_resource_ratio() * 100.0
    );
}
