//! Ergonomic builder for IR programs.
//!
//! The templates (KVS, MLAgg, DQAcc), the tests, and the examples construct IR
//! programs either by running the frontend on ClickINC source or directly through
//! this builder, which keeps instruction ids consistent and offers one-line
//! helpers for the common operations.

use crate::error::IrError;
use crate::instr::{AluOp, CmpOp, Guard, Instruction, OpCode, Operand, Predicate};
use crate::object::{HashAlgo, MatchKind, ObjectDecl, ObjectKind, SketchKind};
use crate::program::{HeaderFieldDecl, IrProgram};
use crate::types::ValueType;
use std::collections::BTreeSet;

/// Incrementally builds an [`IrProgram`].
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    program: IrProgram,
    next_id: u32,
    current_guard: Option<Guard>,
    owner: Option<String>,
}

impl ProgramBuilder {
    /// Start a new program.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            program: IrProgram::new(name),
            next_id: 0,
            current_guard: None,
            owner: None,
        }
    }

    /// Mark every subsequently added instruction and object as owned by `user`.
    pub fn owned_by(mut self, user: impl Into<String>) -> ProgramBuilder {
        self.owner = Some(user.into());
        self
    }

    /// Declare a header field.
    pub fn header(&mut self, name: &str, ty: ValueType) -> &mut Self {
        self.program.headers.push(HeaderFieldDecl::new(name, ty));
        self
    }

    /// Declare a register array object.
    pub fn array(&mut self, name: &str, rows: u32, size: u32, width: u16) -> &mut Self {
        self.object(name, ObjectKind::Array { rows, size, width })
    }

    /// Declare a match-action table object.
    pub fn table(
        &mut self,
        name: &str,
        match_kind: MatchKind,
        key_width: u16,
        value_width: u16,
        depth: u32,
        stateful: bool,
    ) -> &mut Self {
        self.object(name, ObjectKind::Table { match_kind, key_width, value_width, depth, stateful })
    }

    /// Declare a sketch object.
    pub fn sketch(
        &mut self,
        name: &str,
        kind: SketchKind,
        rows: u32,
        cols: u32,
        width: u16,
    ) -> &mut Self {
        self.object(name, ObjectKind::Sketch { kind, rows, cols, width })
    }

    /// Declare a sequence object.
    pub fn seq(&mut self, name: &str, size: u32, width: u16) -> &mut Self {
        self.object(name, ObjectKind::Seq { size, width })
    }

    /// Declare a hash function object.
    pub fn hash_fn(&mut self, name: &str, algo: HashAlgo, modulus: Option<u32>) -> &mut Self {
        self.object(name, ObjectKind::Hash { algo, modulus })
    }

    /// Declare an arbitrary object.
    pub fn object(&mut self, name: &str, kind: ObjectKind) -> &mut Self {
        let decl = match &self.owner {
            Some(owner) => ObjectDecl::owned(name, kind, owner.clone()),
            None => ObjectDecl::new(name, kind),
        };
        self.program.objects.push(decl);
        self
    }

    /// Run `body` with every emitted instruction guarded by `pred` (in addition
    /// to any enclosing guard).  Guards nest by conjunction, mirroring the
    /// frontend's if-conversion of nested branches.
    pub fn guarded<F: FnOnce(&mut Self)>(&mut self, pred: Predicate, body: F) -> &mut Self {
        let saved = self.current_guard.clone();
        let mut g = saved.clone().unwrap_or_default();
        g.all.push(pred);
        self.current_guard = Some(g);
        body(self);
        self.current_guard = saved;
        self
    }

    /// Emit an instruction with the current guard and owner applied.
    pub fn emit(&mut self, op: OpCode) -> &mut Self {
        let id = self.next_id;
        self.next_id += 1;
        let mut instr = match &self.current_guard {
            Some(g) if !g.is_always() => Instruction::guarded(id, op, g.clone()),
            _ => Instruction::new(id, op),
        };
        if let Some(owner) = &self.owner {
            instr.owners.push(owner.clone());
        }
        self.program.instructions.push(instr);
        self
    }

    /// `dest = src`.
    pub fn assign(&mut self, dest: &str, src: Operand) -> &mut Self {
        self.emit(OpCode::Assign { dest: dest.into(), src })
    }

    /// `dest = lhs op rhs` on integers.
    pub fn alu(&mut self, dest: &str, op: AluOp, lhs: Operand, rhs: Operand) -> &mut Self {
        self.emit(OpCode::Alu { dest: dest.into(), op, lhs, rhs, float: false })
    }

    /// `dest = lhs op rhs` on floats.
    pub fn falu(&mut self, dest: &str, op: AluOp, lhs: Operand, rhs: Operand) -> &mut Self {
        self.emit(OpCode::Alu { dest: dest.into(), op, lhs, rhs, float: true })
    }

    /// `dest = (lhs cmp rhs)`.
    pub fn cmp(&mut self, dest: &str, op: CmpOp, lhs: Operand, rhs: Operand) -> &mut Self {
        self.emit(OpCode::Cmp { dest: dest.into(), op, lhs, rhs })
    }

    /// `dest = hash(object, keys...)`.
    pub fn hash(&mut self, dest: &str, object: &str, keys: Vec<Operand>) -> &mut Self {
        self.emit(OpCode::Hash { dest: dest.into(), object: object.into(), keys })
    }

    /// `dest = get(object, index...)`.
    pub fn get(&mut self, dest: &str, object: &str, index: Vec<Operand>) -> &mut Self {
        self.emit(OpCode::ReadState { dest: dest.into(), object: object.into(), index })
    }

    /// `write(object, index..., value...)`.
    pub fn write(&mut self, object: &str, index: Vec<Operand>, value: Vec<Operand>) -> &mut Self {
        self.emit(OpCode::WriteState { object: object.into(), index, value })
    }

    /// `dest = count(object, index, delta)`.
    pub fn count(
        &mut self,
        dest: Option<&str>,
        object: &str,
        index: Vec<Operand>,
        delta: Operand,
    ) -> &mut Self {
        self.emit(OpCode::CountState {
            dest: dest.map(str::to_string),
            object: object.into(),
            index,
            delta,
        })
    }

    /// `del(object, index)`.
    pub fn del(&mut self, object: &str, index: Vec<Operand>) -> &mut Self {
        self.emit(OpCode::DeleteState { object: object.into(), index })
    }

    /// `drop()`.
    pub fn drop_packet(&mut self) -> &mut Self {
        self.emit(OpCode::Drop)
    }

    /// `fwd()`.
    pub fn forward(&mut self) -> &mut Self {
        self.emit(OpCode::Forward)
    }

    /// `back(hdr={...})`.
    pub fn back(&mut self, updates: Vec<(&str, Operand)>) -> &mut Self {
        self.emit(OpCode::Back {
            updates: updates.into_iter().map(|(f, v)| (f.to_string(), v)).collect(),
        })
    }

    /// `mirror(hdr={...})`.
    pub fn mirror(&mut self, updates: Vec<(&str, Operand)>) -> &mut Self {
        self.emit(OpCode::Mirror {
            updates: updates.into_iter().map(|(f, v)| (f.to_string(), v)).collect(),
        })
    }

    /// `copyto(target, values...)`.
    pub fn copy_to(&mut self, target: &str, values: Vec<Operand>) -> &mut Self {
        self.emit(OpCode::CopyTo { target: target.into(), values })
    }

    /// `hdr.field = value`.
    pub fn set_header(&mut self, field: &str, value: Operand) -> &mut Self {
        self.emit(OpCode::SetHeader { field: field.into(), value })
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.program.instructions.len()
    }

    /// Whether no instruction has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.program.instructions.is_empty()
    }

    /// Finish and return the program.
    ///
    /// Rejects programs that would only fail later (as emulator panics or
    /// nonsense placements): an empty instruction stream, duplicate object
    /// declarations, and duplicate instruction ids.
    pub fn build(self) -> Result<IrProgram, IrError> {
        if self.program.instructions.is_empty() {
            return Err(IrError::EmptyProgram);
        }
        let mut objects = BTreeSet::new();
        for decl in &self.program.objects {
            if !objects.insert(decl.name.as_str()) {
                return Err(IrError::DuplicateObject { object: decl.name.clone() });
            }
        }
        let mut ids = BTreeSet::new();
        for instr in &self.program.instructions {
            if !ids.insert(instr.id.0) {
                return Err(IrError::DuplicateInstrId { id: instr.id.0 });
            }
        }
        Ok(self.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::CapabilityClass;
    use crate::types::Value;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = ProgramBuilder::new("p");
        b.assign("a", Operand::int(1)).assign("b", Operand::int(2)).forward();
        let p = b.build().unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.instructions[0].id.0, 0);
        assert_eq!(p.instructions[2].id.0, 2);
    }

    #[test]
    fn guarded_blocks_nest_by_conjunction() {
        let mut b = ProgramBuilder::new("p");
        b.assign("x", Operand::int(1));
        b.guarded(Predicate::new(Operand::hdr("op"), CmpOp::Eq, Operand::int(1)), |b| {
            b.assign("y", Operand::int(2));
            b.guarded(Predicate::new(Operand::var("x"), CmpOp::Gt, Operand::int(0)), |b| {
                b.drop_packet();
            });
            b.forward();
        });
        b.assign("z", Operand::int(3));
        let p = b.build().unwrap();
        assert!(p.instructions[0].guard.is_none());
        assert_eq!(p.instructions[1].guard.as_ref().unwrap().all.len(), 1);
        assert_eq!(p.instructions[2].guard.as_ref().unwrap().all.len(), 2);
        assert_eq!(p.instructions[3].guard.as_ref().unwrap().all.len(), 1);
        assert!(p.instructions[4].guard.is_none());
    }

    #[test]
    fn owner_propagates_to_instructions_and_objects() {
        let mut b = ProgramBuilder::new("kvs").owned_by("kvs_0");
        b.array("cache", 1, 8, 32);
        b.get("v", "cache", vec![Operand::int(0)]);
        let p = b.build().unwrap();
        assert_eq!(p.objects[0].owner.as_deref(), Some("kvs_0"));
        assert_eq!(p.instructions[0].owners, vec!["kvs_0".to_string()]);
        assert!(p.owners().contains("kvs_0"));
    }

    #[test]
    fn built_program_validates_and_classifies() {
        let mut b = ProgramBuilder::new("cms");
        b.header("key", ValueType::Bit(32));
        b.sketch("cms", SketchKind::CountMin, 3, 1024, 32);
        b.hash_fn("h0", HashAlgo::Crc16, Some(1024));
        b.hash("idx0", "h0", vec![Operand::hdr("key")]);
        b.count(Some("v0"), "cms", vec![Operand::int(0), Operand::var("idx0")], Operand::int(1));
        b.assign("relt", Operand::var("v0"));
        b.forward();
        let p = b.build().unwrap();
        assert_eq!(p.validate(), Ok(()));
        let caps = p.required_capabilities();
        assert!(caps.contains(&CapabilityClass::Baf));
        assert!(caps.contains(&CapabilityClass::Bso));
    }

    #[test]
    fn all_emit_helpers_produce_expected_opcodes() {
        let mut b = ProgramBuilder::new("all");
        b.table("t", MatchKind::Exact, 32, 32, 16, false);
        b.seq("s", 4, 8);
        b.assign("a", Operand::int(0));
        b.alu("b", AluOp::Add, Operand::var("a"), Operand::int(1));
        b.falu("c", AluOp::Mul, Operand::var("b"), Operand::int(2));
        b.cmp("d", CmpOp::Lt, Operand::var("c"), Operand::int(10));
        b.get("e", "t", vec![Operand::hdr("key")]);
        b.write("t", vec![Operand::hdr("key")], vec![Operand::var("e")]);
        b.del("s", vec![Operand::int(0)]);
        b.back(vec![("op", Operand::int(2))]);
        b.mirror(vec![("overflow", Operand::int(1))]);
        b.copy_to("CPU", vec![Operand::hdr("key")]);
        b.set_header("op", Operand::int(3));
        b.drop_packet();
        assert!(!b.is_empty());
        assert_eq!(b.len(), 12);
        let p = b.build().unwrap();
        let mnems: Vec<&str> = p.instructions.iter().map(|i| i.op.mnemonic()).collect();
        assert_eq!(
            mnems,
            vec![
                "mov", "alu", "alu", "cmp", "get", "write", "del", "back", "mirror", "copyto",
                "sethdr", "drop"
            ]
        );
        // float ALU carries the float flag
        match &p.instructions[2].op {
            OpCode::Alu { float, .. } => assert!(*float),
            _ => panic!("expected ALU"),
        }
        // constants preserved
        match &p.instructions[0].op {
            OpCode::Assign { src, .. } => assert_eq!(*src, Operand::Const(Value::Int(0))),
            _ => panic!("expected assign"),
        }
    }

    #[test]
    fn empty_program_is_rejected_at_build_time() {
        let b = ProgramBuilder::new("empty");
        assert_eq!(b.build().unwrap_err(), IrError::EmptyProgram);
        // declaring objects alone does not make a program
        let mut b = ProgramBuilder::new("objects_only");
        b.array("a", 1, 4, 32);
        assert_eq!(b.build().unwrap_err(), IrError::EmptyProgram);
    }

    #[test]
    fn duplicate_object_declaration_is_rejected_at_build_time() {
        let mut b = ProgramBuilder::new("p");
        b.array("a", 1, 4, 32);
        b.seq("a", 8, 16);
        b.forward();
        assert_eq!(b.build().unwrap_err(), IrError::DuplicateObject { object: "a".into() });
    }

    #[test]
    fn duplicate_instruction_ids_are_rejected_at_build_time() {
        let mut b = ProgramBuilder::new("p");
        b.forward();
        // splice a colliding id in behind the builder's back, as a buggy
        // snippet merge would
        let mut p = b.build().unwrap();
        p.instructions.push(Instruction::new(0, OpCode::Drop));
        let mut b = ProgramBuilder::new("spliced");
        b.program = p;
        assert_eq!(b.build().unwrap_err(), IrError::DuplicateInstrId { id: 0 });
    }
}
