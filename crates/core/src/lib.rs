//! # clickinc — In-network Computing as a Service
//!
//! This crate is the user-facing facade of the ClickINC reproduction: the
//! [`Controller`] implements the four-step workflow of paper §3.2 —
//!
//! 1. **write** a user program in the Python-style ClickINC language (or
//!    instantiate a provider template from a configuration profile);
//! 2. **compile** it to the platform-independent IR (`clickinc-frontend`);
//! 3. **place** it over the (reduced) topology with the DP algorithm
//!    (`clickinc-placement`), respecting the resources already consumed by
//!    other tenants;
//! 4. **deploy** it: isolate the user's state, synthesize it with the base
//!    program on every target device, generate device-language programs
//!    (`clickinc-backend`) and install the snippets on the emulated data plane
//!    (`clickinc-emulator`).
//!
//! Programs can be added and removed dynamically; the controller keeps the
//! per-device resource ledger and the running images so that later requests are
//! compiled incrementally (paper §6 / §7.5).
//!
//! ```
//! use clickinc::{Controller, ServiceRequest};
//! use clickinc_topology::Topology;
//!
//! let topo = Topology::emulation_topology_all_tofino();
//! let mut controller = Controller::new(topo);
//! let request = ServiceRequest::from_template(
//!     clickinc_lang::templates::count_min_sketch("cms_demo", 3, 1024),
//!     &["pod0a"],
//!     "pod2b",
//! );
//! let deployment = controller.deploy(request).expect("cms deploys");
//! assert!(!deployment.plan.devices_used().is_empty());
//! ```

mod controller;
pub mod reconfigure;
mod request;

pub use controller::{Controller, ControllerError, Deployment};
pub use reconfigure::{ReconfigureEvent, ReconfigureHook, TenantHop};
pub use request::ServiceRequest;

// Re-export the subsystem crates under stable names so downstream users need a
// single dependency.
pub use clickinc_backend as backend;
pub use clickinc_blockdag as blockdag;
pub use clickinc_device as device;
pub use clickinc_emulator as emulator;
pub use clickinc_frontend as frontend;
pub use clickinc_ir as ir;
pub use clickinc_lang as lang;
pub use clickinc_placement as placement;
pub use clickinc_synthesis as synthesis;
pub use clickinc_topology as topology;
