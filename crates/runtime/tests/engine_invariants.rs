//! The two load-bearing guarantees of the runtime:
//!
//! 1. **Shard-count invariance** — the engine is an optimization, not a
//!    semantics change: per-tenant telemetry and the final (merged) object
//!    stores are identical for 1, 2 and 8 shards.
//! 2. **Zero cross-tenant disruption** — adding and removing a tenant while
//!    other tenants' traffic flows leaves those tenants' telemetry
//!    *bit-for-bit* identical to a run where the reconfiguration never
//!    happened.

use clickinc_device::DeviceModel;
use clickinc_frontend::compile_source;
use clickinc_ir::Value;
use clickinc_lang::templates::{kvs_template, mlagg_template, KvsParams, MlAggParams};
use clickinc_runtime::workload::{
    KvsWorkload, KvsWorkloadConfig, MixedWorkload, MlAggWorkload, MlAggWorkloadConfig, Workload,
};
use clickinc_runtime::{
    EngineConfig, EngineError, OverloadPolicy, TelemetryReport, TenantHop, TrafficEngine,
};
use clickinc_synthesis::isolate_user_program;
use std::collections::BTreeMap;

/// A KVS tenant on the shared ToR: isolated program (renamed tables, user-id
/// guards) on device `tor0`.
fn kvs_tenant(name: &str, id: i64) -> Vec<TenantHop> {
    let t = kvs_template(name, KvsParams { cache_depth: 1024, ..Default::default() });
    let ir = compile_source(name, &t.source).unwrap();
    vec![TenantHop {
        device: "tor0".to_string(),
        model: DeviceModel::tofino(),
        snippets: vec![isolate_user_program(&ir, name, id)],
    }]
}

/// An MLAgg tenant whose path crosses the shared ToR (no snippet there) and
/// aggregates on `agg0`.
fn mlagg_tenant(name: &str, id: i64, dims: u32, workers: u32) -> Vec<TenantHop> {
    let t = mlagg_template(
        name,
        MlAggParams { dims, num_workers: workers, num_aggregators: 1024, ..Default::default() },
    );
    let ir = compile_source(name, &t.source).unwrap();
    vec![
        TenantHop { device: "tor0".to_string(), model: DeviceModel::tofino(), snippets: vec![] },
        TenantHop {
            device: "agg0".to_string(),
            model: DeviceModel::tofino(),
            snippets: vec![isolate_user_program(&ir, name, id)],
        },
    ]
}

fn kvs_workload(name: &str, id: i64, requests: usize, seed: u64) -> KvsWorkload {
    KvsWorkload::new(KvsWorkloadConfig {
        tenant: name.to_string(),
        user_id: id,
        keys: 500,
        skew: 1.2,
        requests,
        rate_pps: 10_000_000.0,
        seed,
    })
}

fn populate_cache(handle: &clickinc_runtime::EngineHandle, name: &str, hot_keys: i64) {
    for key in 0..hot_keys {
        handle.populate_table(
            name,
            "tor0",
            &format!("{name}_cache"),
            vec![Value::Int(key)],
            vec![Value::Int(key * 1000 + 7)],
        );
    }
}

fn run_mixed(shards: usize) -> (TelemetryReport, BTreeMap<String, u64>) {
    let engine = TrafficEngine::new(EngineConfig { shards, batch_size: 16, ..Default::default() });
    let handle = engine.handle();
    handle.add_tenant("alpha", kvs_tenant("alpha", 1));
    handle.add_tenant("beta", kvs_tenant("beta", 2));
    handle.add_tenant("gamma", mlagg_tenant("gamma", 3, 8, 4));
    populate_cache(&handle, "alpha", 64);
    populate_cache(&handle, "beta", 64);

    let mut mixed = MixedWorkload::new(vec![
        Box::new(kvs_workload("alpha", 1, 1200, 11)) as Box<dyn Workload>,
        Box::new(kvs_workload("beta", 2, 1200, 22)),
        Box::new(MlAggWorkload::new(MlAggWorkloadConfig {
            tenant: "gamma".to_string(),
            user_id: 3,
            workers: 4,
            rounds: 150,
            dims: 8,
            sparsity: 0.5,
            block_size: 4,
            rate_pps: 10_000_000.0,
            seed: 33,
        })),
    ]);
    handle.run_workload(&mut mixed, usize::MAX, 32);
    handle.flush();
    let outcome = engine.finish();
    let fingerprints = outcome.stores.iter().map(|(d, s)| (d.clone(), s.fingerprint())).collect();
    (outcome.telemetry, fingerprints)
}

#[test]
fn per_tenant_results_are_invariant_in_the_shard_count() {
    let (stats1, stores1) = run_mixed(1);
    let (stats2, stores2) = run_mixed(2);
    let (stats8, stores8) = run_mixed(8);

    // the workload actually exercised every mechanism
    let alpha = stats1.tenant("alpha").expect("alpha served");
    assert_eq!(alpha.packets, 1200);
    assert_eq!(alpha.completed, 1200);
    assert!(alpha.hit_ratio > 0.3, "skewed stream hits the cache: {}", alpha.hit_ratio);
    assert!(alpha.goodput_gbps > 0.0);
    assert!(alpha.latency_p99_ns >= alpha.latency_p50_ns);
    let gamma = stats1.tenant("gamma").expect("gamma served");
    assert!(gamma.hits > 0, "completed aggregations bounce back");
    assert!(gamma.drops > 0, "partial aggregations are absorbed");
    assert_eq!(gamma.link_bytes.len(), 3, "two hops + server link");

    // identical per-tenant aggregate counters, bit for bit
    assert_eq!(stats1, stats2);
    assert_eq!(stats1, stats8);
    // identical final object stores (merged across shards)
    assert_eq!(stores1, stores2);
    assert_eq!(stores1, stores8);
}

/// Drive alpha and beta in three phases; in the middle phase, optionally add
/// a third tenant (co-resident on the same shared device), run its traffic,
/// and remove it again.
fn run_phased(shards: usize, disrupt: bool) -> TelemetryReport {
    let engine = TrafficEngine::new(EngineConfig { shards, batch_size: 16, ..Default::default() });
    let handle = engine.handle();
    handle.add_tenant("alpha", kvs_tenant("alpha", 1));
    handle.add_tenant("beta", kvs_tenant("beta", 2));
    populate_cache(&handle, "alpha", 64);
    populate_cache(&handle, "beta", 64);

    let mut alpha = kvs_workload("alpha", 1, 1500, 11);
    let mut beta = kvs_workload("beta", 2, 1500, 22);

    handle.run_workload(&mut alpha, 600, 64);
    handle.run_workload(&mut beta, 600, 64);

    if disrupt {
        // gamma's aggregation program lands on the SAME device the KVS
        // tenants share (tor0): maximal co-residence
        let t = mlagg_template(
            "gamma",
            MlAggParams { dims: 8, num_workers: 4, num_aggregators: 512, ..Default::default() },
        );
        let ir = compile_source("gamma", &t.source).unwrap();
        handle.add_tenant(
            "gamma",
            vec![TenantHop {
                device: "tor0".to_string(),
                model: DeviceModel::tofino(),
                snippets: vec![isolate_user_program(&ir, "gamma", 3)],
            }],
        );
        let mut gamma = MlAggWorkload::new(MlAggWorkloadConfig {
            tenant: "gamma".to_string(),
            user_id: 3,
            workers: 4,
            rounds: 100,
            dims: 8,
            rate_pps: 10_000_000.0,
            seed: 33,
            ..Default::default()
        });
        handle.run_workload(&mut gamma, usize::MAX, 64);
    }

    handle.run_workload(&mut alpha, 600, 64);
    handle.run_workload(&mut beta, 600, 64);

    if disrupt {
        handle.remove_tenant("gamma");
    }

    handle.run_workload(&mut alpha, usize::MAX, 64);
    handle.run_workload(&mut beta, usize::MAX, 64);
    handle.flush();
    engine.finish().telemetry
}

#[test]
fn degenerate_engine_configs_are_rejected_or_clamped() {
    // `try_new` returns a typed error for sizing knobs below the minimum…
    let zero_shards =
        TrafficEngine::try_new(EngineConfig { shards: 0, batch_size: 64, ..Default::default() });
    assert!(matches!(
        zero_shards.map(|_| ()).unwrap_err(),
        EngineError::InvalidConfig { field: "shards", value: 0, minimum: 1 }
    ));
    let zero_batch =
        TrafficEngine::try_new(EngineConfig { shards: 2, batch_size: 0, ..Default::default() });
    assert!(matches!(
        zero_batch.map(|_| ()).unwrap_err(),
        EngineError::InvalidConfig { field: "batch_size", value: 0, minimum: 1 }
    ));
    let zero_queue =
        TrafficEngine::try_new(EngineConfig { queue_capacity: 0, ..Default::default() });
    assert!(matches!(
        zero_queue.map(|_| ()).unwrap_err(),
        EngineError::InvalidConfig { field: "queue_capacity", value: 0, minimum: 1 }
    ));
    let zero_credits = TrafficEngine::try_new(EngineConfig {
        overload: OverloadPolicy::Backpressure { credits: 0 },
        ..Default::default()
    });
    assert!(matches!(
        zero_credits.map(|_| ()).unwrap_err(),
        EngineError::InvalidConfig { field: "overload.credits", value: 0, minimum: 1 }
    ));
    assert!(EngineConfig::default().validate().is_ok());

    // …while `new` documents clamping to 1 and still serves traffic.
    let engine =
        TrafficEngine::new(EngineConfig { shards: 0, batch_size: 0, ..Default::default() });
    assert_eq!(engine.shards(), 1);
    let handle = engine.handle();
    handle.add_tenant("alpha", kvs_tenant("alpha", 1));
    populate_cache(&handle, "alpha", 16);
    let mut wl = kvs_workload("alpha", 1, 100, 11);
    handle.run_workload(&mut wl, usize::MAX, 8);
    handle.flush();
    let outcome = engine.finish();
    assert_eq!(outcome.telemetry.tenant("alpha").unwrap().completed, 100);
}

#[test]
fn live_add_and_remove_cause_zero_cross_tenant_disruption() {
    for shards in [1usize, 2, 4] {
        let disrupted = run_phased(shards, true);
        let quiet = run_phased(shards, false);

        // the mid-run tenant really carried traffic and completed work…
        let gamma = disrupted.tenant("gamma").expect("gamma ran");
        assert_eq!(gamma.packets, 400);
        assert!(gamma.hits > 0, "aggregations completed in-network");

        // …and the co-resident tenants never noticed: goodput, hit ratio,
        // latency percentiles, per-link bytes — all bit-for-bit identical
        for tenant in ["alpha", "beta"] {
            assert_eq!(
                disrupted.tenant(tenant),
                quiet.tenant(tenant),
                "tenant {tenant} was disturbed at {shards} shard(s)"
            );
        }
        assert!(disrupted.tenant("alpha").unwrap().hit_ratio > 0.3);
    }
}
