//! # clickinc-backend — device-specific code generation
//!
//! After synthesis, every device holds one merged IR image.  The backend
//! translates that image into the device's native language (paper §7.1:
//! "covering the target DSL of P4-16, NPL, Micro-C, and Verilog HDL"):
//!
//! * [`p4`] — P4-16/TNA for Tofino and Tofino2;
//! * [`npl`] — NPL for Trident4;
//! * [`microc`] — Micro-C for the Netronome NFP smartNICs;
//! * [`hls`] — HLS C++ for the Xilinx FPGA smartNICs / accelerator cards.
//!
//! The generated sources are *structurally* faithful (headers, parsers,
//! registers/tables, match-action or run-to-completion bodies, per-user
//! isolation guards) so they can stand in for vendor-toolchain inputs in the
//! lines-of-code comparison (Table 1) and serve as human-readable deployment
//! artifacts; they are not meant to be fed to the (closed) vendor compilers —
//! the emulator executes the IR image directly instead.

mod emit;
pub mod hls;
pub mod microc;
pub mod npl;
pub mod p4;

use clickinc_device::DeviceKind;
use clickinc_ir::IrProgram;

/// A generated device program.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProgram {
    /// Target device family.
    pub kind: DeviceKind,
    /// Target language name.
    pub language: &'static str,
    /// Generated source text.
    pub source: String,
}

impl DeviceProgram {
    /// Lines of code of the generated program (counted as in Table 1).
    pub fn lines_of_code(&self) -> usize {
        self.source
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with('#'))
            .count()
    }
}

/// Generate the device program for `image` on a device of kind `kind`.
pub fn generate(kind: DeviceKind, image: &IrProgram) -> DeviceProgram {
    let source = match kind {
        DeviceKind::Tofino | DeviceKind::Tofino2 => p4::generate(image),
        DeviceKind::Trident4 => npl::generate(image),
        DeviceKind::NfpSmartNic => microc::generate(image),
        DeviceKind::FpgaSmartNic | DeviceKind::FpgaAccelerator => hls::generate(image),
        DeviceKind::Server => format!("// DPDK host program stub for `{}`\n", image.name),
    };
    DeviceProgram { kind, language: kind.target_language(), source }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_frontend::compile_source;
    use clickinc_lang::templates::{kvs_template, KvsParams};

    fn kvs_image() -> IrProgram {
        let t = kvs_template("kvs_0", KvsParams::default());
        compile_source("kvs_0", &t.source).unwrap()
    }

    #[test]
    fn every_backend_emits_nonempty_source() {
        let image = kvs_image();
        for kind in DeviceKind::PROGRAMMABLE {
            let prog = generate(kind, &image);
            assert!(
                prog.lines_of_code() > 20,
                "{kind} backend produced {} LoC",
                prog.lines_of_code()
            );
            assert_eq!(prog.language, kind.target_language());
        }
    }

    #[test]
    fn generated_p4_is_an_order_of_magnitude_longer_than_clickinc_source() {
        // Table 1: P4-16 KVS is ~35x the ClickINC source; our generated code
        // must preserve that order-of-magnitude gap.
        let t = kvs_template("kvs_0", KvsParams::default());
        let clickinc_loc = clickinc_lang::lines_of_code(&t.source);
        let image = compile_source("kvs_0", &t.source).unwrap();
        let p4 = generate(DeviceKind::Tofino, &image);
        assert!(
            p4.lines_of_code() > 3 * clickinc_loc,
            "P4 {} LoC vs ClickINC {} LoC",
            p4.lines_of_code(),
            clickinc_loc
        );
    }
}
