//! # clickinc — In-network Computing as a Service
//!
//! This crate is the user-facing facade of the ClickINC reproduction.  The
//! [`ClickIncService`] owns the whole tenant lifecycle (paper §3.2, §6):
//!
//! 1. **request** — describe a program with the fallible
//!    [`ServiceRequest::builder`] (raw ClickINC source or a provider
//!    template, traffic endpoints, optional per-source rates — validated at
//!    build time);
//! 2. **plan** — [`ClickIncService::plan`] compiles and places the request
//!    as a *pure dry-run*: it reports devices, resource demand and the
//!    predicted remaining resource ratio without touching the ledger or any
//!    data plane;
//! 3. **commit** — [`ClickIncService::commit`] books the resources,
//!    installs the isolated snippets, and mirrors the tenant onto the
//!    sharded serving engine atomically; [`ClickIncService::deploy_all`]
//!    commits a batch with all-or-nothing rollback;
//! 4. **serve** — the returned [`TenantHandle`] carries the tenant's
//!    numeric id, its hops, live telemetry, workload injection and removal.
//!
//! ```
//! use clickinc::{ClickIncService, ServiceRequest};
//! use clickinc_topology::Topology;
//!
//! let service = ClickIncService::new(Topology::emulation_topology_all_tofino()).unwrap();
//! let request = ServiceRequest::builder("cms_demo")
//!     .template(clickinc_lang::templates::count_min_sketch("cms_demo", 3, 1024))
//!     .from_("pod0a")
//!     .to("pod2b")
//!     .build()
//!     .unwrap();
//!
//! // dry-run: where would it land, what would it cost?
//! let plan = service.plan(&request).unwrap();
//! assert!(!plan.devices().is_empty());
//! assert!(plan.predicted_remaining_ratio() <= 1.0);
//!
//! // commit: book resources, install snippets, mirror onto the engine
//! let tenant = service.commit(plan).unwrap();
//! assert_eq!(tenant.user(), "cms_demo");
//! let stats = tenant.telemetry().expect("tenant is registered");
//! assert_eq!(stats.packets, 0); // no traffic injected yet
//! service.finish();
//! ```
//!
//! Every error — request validation, compilation, placement, stale plans,
//! admission refusals, engine configuration — surfaces as the single
//! [`ClickIncError`] enum.
//!
//! ## The planner: batches, caching, admission control
//!
//! [`ClickIncService::planner`] is the provider-side surface on top of the
//! transactional core: it solves request batches **in parallel** on worker
//! threads (plans are pure dry-runs, so fanning the solve out is free of
//! races and bit-identical to the sequential path), caches solved plans
//! keyed on `(request fingerprint, controller epoch)` so a retried commit
//! re-runs placement only when the epoch actually moved, and threads every
//! commit through composable [`AdmissionPolicy`] rules:
//!
//! ```
//! use clickinc::{ClickIncService, MaxTenants, PolicyChain, ResourceFloor, ServiceRequest};
//! use clickinc_topology::Topology;
//!
//! let service = ClickIncService::new(Topology::emulation_topology_all_tofino()).unwrap();
//! service.set_admission_policy(
//!     PolicyChain::new()
//!         .with(ResourceFloor { min_remaining_ratio: 0.10 })
//!         .with(MaxTenants { max_tenants: 16 }),
//! );
//! let requests: Vec<ServiceRequest> = ["cms_a", "cms_b"]
//!     .iter()
//!     .map(|user| {
//!         ServiceRequest::builder(*user)
//!             .template(clickinc_lang::templates::count_min_sketch(user, 3, 512))
//!             .from_("pod0a")
//!             .to("pod2b")
//!             .build()
//!             .unwrap()
//!     })
//!     .collect();
//! // parallel solve → policy gate → all-or-nothing sequential commit
//! let tenants = service.planner().deploy_all(requests).unwrap();
//! assert_eq!(tenants.len(), 2);
//! assert!(service.planner_stats().cache_misses >= 2, "both solves were fresh");
//! service.finish();
//! ```
//!
//! A policy refusal is the typed [`ClickIncError::Rejected`] and changes
//! nothing: the gate runs before the first mutation, so the ledger, the
//! planes and the engine stay bit-identical.
//!
//! ## Low-level controller
//!
//! The [`Controller`] under the service is still public for the ablation
//! experiments (Tables 3–6) that measure the control plane in isolation:
//! [`Controller::deploy`]/[`Controller::remove`] drive compile → place →
//! synthesize → install directly (and fire [`ReconfigureEvent`]s that
//! [`Controller::attach_engine`] can mirror onto an engine by hand).
//!
//! ```
//! use clickinc::{Controller, ServiceRequest};
//! use clickinc_topology::Topology;
//!
//! let mut controller = Controller::new(Topology::emulation_topology_all_tofino());
//! let request = ServiceRequest::from_template(
//!     clickinc_lang::templates::count_min_sketch("cms_demo", 3, 1024),
//!     &["pod0a"],
//!     "pod2b",
//! );
//! let deployment = controller.deploy(request).expect("cms deploys");
//! assert!(!deployment.plan.devices_used().is_empty());
//! ```

pub mod adaptive;
mod controller;
mod error;
pub mod planner;
pub mod policy;
pub mod reconfigure;
mod request;
pub mod service;
pub mod sharding;

pub use adaptive::{AdaptiveOutcome, AdaptiveRuntime};
pub use controller::{Controller, Deployment, DeploymentPlan, PlanContext, PlanSummary};
pub use error::{ClickIncError, ControllerError};
pub use planner::{BatchStats, Planner, PlannerStats};
pub use policy::{
    AdmissionContext, AdmissionDecision, AdmissionPolicy, DeviceDenylist, FairShare, MaxTenants,
    PolicyChain, PriorityAdmission, ResourceFloor,
};
pub use reconfigure::{ReconfigureEvent, ReconfigureHook, ShardingMode, TenantHop};
pub use request::{RequestError, ServiceRequest, ServiceRequestBuilder};
pub use service::{ClickIncService, FailoverReport, InitialSharding, RetryReport, TenantHandle};
pub use sharding::sharding_mode_for;

// Re-export the subsystem crates under stable names so downstream users need a
// single dependency.
pub use clickinc_backend as backend;
pub use clickinc_blockdag as blockdag;
pub use clickinc_device as device;
pub use clickinc_emulator as emulator;
pub use clickinc_frontend as frontend;
pub use clickinc_ir as ir;
pub use clickinc_lang as lang;
pub use clickinc_placement as placement;
pub use clickinc_runtime as runtime;
pub use clickinc_synthesis as synthesis;
pub use clickinc_topology as topology;
