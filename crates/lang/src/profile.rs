//! Configuration profiles (paper Fig. 6 and Table 10).
//!
//! A user instantiating a template supplies a profile with four fields:
//!
//! * **app** — the template id (`"KVS"`, `"MLAgg"`, `"DQAcc"`, ...);
//! * **performance** — the application-level performance requirements (an
//!   objective such as `max 0.7·hit + 0.3·acc` plus content constraints such as
//!   a minimum cache depth);
//! * **traffic frequency** — the per-client upper bound on query rate;
//! * **packet format** — the standard network encapsulation plus the
//!   application header fields and their widths.
//!
//! Profiles are JSON documents; this module parses them into typed structs and
//! offers builders for programmatic construction (used by the examples and
//! benches).

use crate::error::LangError;
use clickinc_ir::ValueType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Weighted objective over named performance metrics, e.g.
/// `max 0.7*hit + 0.3*acc`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PerformanceSpec {
    /// Metric name → weight in the maximized objective.
    #[serde(default)]
    pub objective: BTreeMap<String, f64>,
    /// Named scalar constraints (metric name → minimum value), e.g.
    /// `depth >= 1000`.
    #[serde(default)]
    pub min_constraints: BTreeMap<String, f64>,
    /// Named boolean options, e.g. `is_sparse: false`, `is_convert: true`.
    #[serde(default)]
    pub flags: BTreeMap<String, bool>,
}

impl PerformanceSpec {
    /// Objective weight of a metric (0 if absent).
    pub fn weight(&self, metric: &str) -> f64 {
        self.objective.get(metric).copied().unwrap_or(0.0)
    }

    /// Lower-bound constraint of a metric, if any.
    pub fn min_of(&self, metric: &str) -> Option<f64> {
        self.min_constraints.get(metric).copied()
    }

    /// Whether a boolean flag is set.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.get(name).copied().unwrap_or(false)
    }
}

/// Per-client traffic upper bound in packets per second.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TrafficSpec {
    /// Client id → packets per second.
    #[serde(default)]
    pub clients_pps: BTreeMap<String, u64>,
}

impl TrafficSpec {
    /// Aggregate offered load over all clients (packets per second).
    pub fn total_pps(&self) -> u64 {
        self.clients_pps.values().sum()
    }
}

/// Packet format declaration: the standard encapsulation below the application
/// header (e.g. `ethernet/ipv4/udp`) and the application header fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PacketFormat {
    /// Encapsulation stack, lowest first, e.g. `"ethernet/ipv4/udp"`.
    #[serde(default)]
    pub network: String,
    /// Application header fields: name → width descriptor (`"bit_128"`, ...).
    #[serde(default)]
    pub fields: BTreeMap<String, String>,
}

impl PacketFormat {
    /// Parse a width descriptor such as `bit_128` or `bit<32>` into a
    /// [`ValueType`].
    pub fn parse_width(descriptor: &str) -> Option<ValueType> {
        let d = descriptor.trim().to_ascii_lowercase();
        if d == "float" {
            return Some(ValueType::Float);
        }
        if d == "int" {
            return Some(ValueType::Int);
        }
        if d == "bool" {
            return Some(ValueType::Bool);
        }
        let digits: String = d.chars().filter(|c| c.is_ascii_digit()).collect();
        digits.parse::<u16>().ok().map(ValueType::Bit)
    }

    /// Resolved `(field, type)` pairs, skipping fields with unknown descriptors.
    pub fn typed_fields(&self) -> Vec<(String, ValueType)> {
        self.fields
            .iter()
            .filter_map(|(name, desc)| Self::parse_width(desc).map(|t| (name.clone(), t)))
            .collect()
    }

    /// Total application header length in bits.
    pub fn header_bits(&self) -> u32 {
        self.typed_fields().iter().map(|(_, t)| u32::from(t.width_bits())).sum()
    }
}

/// A full configuration profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Profile {
    /// Template id (`"KVS"`, `"MLAgg"`, `"DQAcc"`, ...).
    pub app: String,
    /// Performance requirements.
    #[serde(default)]
    pub performance: PerformanceSpec,
    /// Traffic distribution.
    #[serde(default)]
    pub traffic: TrafficSpec,
    /// Packet format.
    #[serde(default)]
    pub packet_format: PacketFormat,
}

impl Profile {
    /// Start building a profile for an application.
    pub fn for_app(app: impl Into<String>) -> ProfileBuilder {
        ProfileBuilder { profile: Profile { app: app.into(), ..Profile::default() } }
    }

    /// Parse a profile from its JSON representation.
    pub fn from_json(json: &str) -> Result<Profile, LangError> {
        serde_json::from_str(json).map_err(|e| LangError::BadProfile(e.to_string()))
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

/// Builder for [`Profile`].
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    profile: Profile,
}

impl ProfileBuilder {
    /// Add an objective weight.
    pub fn objective(mut self, metric: &str, weight: f64) -> Self {
        self.profile.performance.objective.insert(metric.to_string(), weight);
        self
    }

    /// Add a minimum constraint.
    pub fn min(mut self, metric: &str, value: f64) -> Self {
        self.profile.performance.min_constraints.insert(metric.to_string(), value);
        self
    }

    /// Set a boolean flag.
    pub fn flag(mut self, name: &str, value: bool) -> Self {
        self.profile.performance.flags.insert(name.to_string(), value);
        self
    }

    /// Add a client with its traffic bound (packets per second).
    pub fn client(mut self, id: &str, pps: u64) -> Self {
        self.profile.traffic.clients_pps.insert(id.to_string(), pps);
        self
    }

    /// Set the encapsulation stack.
    pub fn network(mut self, stack: &str) -> Self {
        self.profile.packet_format.network = stack.to_string();
        self
    }

    /// Add an application header field.
    pub fn field(mut self, name: &str, descriptor: &str) -> Self {
        self.profile.packet_format.fields.insert(name.to_string(), descriptor.to_string());
        self
    }

    /// Finish building.
    pub fn build(self) -> Profile {
        self.profile
    }
}

/// The KVS profile of paper Fig. 6, used as a default by the KVS template and
/// the examples.
pub fn example_kvs_profile() -> Profile {
    Profile::for_app("KVS")
        .objective("hit", 0.7)
        .objective("acc", 0.3)
        .min("content", 1000.0)
        .client("c1", 10_000_000)
        .client("c2", 20_000_000)
        .network("ethernet/ipv4/udp")
        .field("key", "bit_128")
        .field("value_0", "bit_32")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_through_json() {
        let p = example_kvs_profile();
        let json = p.to_json();
        let back = Profile::from_json(&json).unwrap();
        assert_eq!(p, back);
        assert_eq!(back.app, "KVS");
        assert_eq!(back.performance.weight("hit"), 0.7);
        assert_eq!(back.performance.weight("acc"), 0.3);
        assert_eq!(back.performance.min_of("content"), Some(1000.0));
        assert_eq!(back.traffic.total_pps(), 30_000_000);
    }

    #[test]
    fn parses_a_handwritten_json_profile() {
        let json = r#"{
            "app": "MLAgg",
            "performance": {
                "objective": {},
                "min_constraints": {"precision_dec": 3.0, "depth": 500.0},
                "flags": {"is_sparse": true}
            },
            "traffic": {"clients_pps": {"w0": 1000, "w1": 1000}},
            "packet_format": {
                "network": "ethernet/ipv4/udp",
                "fields": {"seq": "bit_32", "data": "bit_32", "bitmap": "bit_8"}
            }
        }"#;
        let p = Profile::from_json(json).unwrap();
        assert_eq!(p.app, "MLAgg");
        assert!(p.performance.flag("is_sparse"));
        assert!(!p.performance.flag("is_convert"));
        assert_eq!(p.performance.min_of("depth"), Some(500.0));
        assert_eq!(p.packet_format.header_bits(), 32 + 32 + 8);
    }

    #[test]
    fn missing_sections_default() {
        let p = Profile::from_json(r#"{"app": "DQAcc"}"#).unwrap();
        assert_eq!(p.app, "DQAcc");
        assert_eq!(p.traffic.total_pps(), 0);
        assert!(p.packet_format.fields.is_empty());
    }

    #[test]
    fn malformed_json_is_reported() {
        let err = Profile::from_json("not json at all").unwrap_err();
        assert!(matches!(err, LangError::BadProfile(_)));
    }

    #[test]
    fn width_descriptors_parse() {
        assert_eq!(PacketFormat::parse_width("bit_128"), Some(ValueType::Bit(128)));
        assert_eq!(PacketFormat::parse_width("bit<32>"), Some(ValueType::Bit(32)));
        assert_eq!(PacketFormat::parse_width("float"), Some(ValueType::Float));
        assert_eq!(PacketFormat::parse_width("bool"), Some(ValueType::Bool));
        assert_eq!(PacketFormat::parse_width("int"), Some(ValueType::Int));
        assert_eq!(PacketFormat::parse_width("mystery"), None);
    }

    #[test]
    fn typed_fields_skip_unparseable() {
        let mut pf = PacketFormat::default();
        pf.fields.insert("key".into(), "bit_128".into());
        pf.fields.insert("weird".into(), "???".into());
        assert_eq!(pf.typed_fields().len(), 1);
    }
}
