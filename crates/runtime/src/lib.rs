//! # clickinc-runtime — serving INC programs under load
//!
//! The controller (`clickinc`) answers *where programs run*; this crate
//! answers *how traffic reaches them at scale*.  It replaces the
//! single-threaded scenario loop with a sharded, batched traffic engine:
//!
//! * **Sharded execution** — [`engine::TrafficEngine`] partitions traffic
//!   across worker threads by a stable hash: of the tenant id
//!   ([`ShardingMode::ByTenant`]) or, for stateless and flow-keyed-state
//!   tenants, of the per-packet flow key ([`ShardingMode::ByFlow`] — the
//!   tenant's program is replicated on every shard and a single hot tenant
//!   scales past one core).  Each shard owns private replicas of the device
//!   planes its residents traverse and drains per-device ingress queues
//!   round-robin in configurable batches ([`shard`]).  Tenant isolation
//!   (renamed objects + user-id guards) makes the partition semantically
//!   equivalent to one shared store: the union of shard stores equals the
//!   unsharded store, and per-tenant results are invariant in the shard
//!   count (bit-identically for `ByTenant`, statistically — merged counter
//!   totals, additively re-merged flow-keyed state — for `ByFlow`).
//! * **Bounded ingress & backpressure** — each shard admits at most
//!   [`EngineConfig::queue_capacity`] in-flight packets; the configured
//!   [`OverloadPolicy`] either sheds the excess at the tail or stalls the
//!   injector against a credit budget.  [`EngineHandle::inject`] returns
//!   admitted/shed counts, and per-tenant sheds, backpressure waits and
//!   queue-depth high-water marks surface in the telemetry — overload is
//!   modeled and observable, never an invisible unbounded buffer.
//! * **Workload generation** — [`workload`] provides seeded, open-loop
//!   generators: a Zipf-skewed KVS stream (precomputed-CDF sampler shared
//!   with the emulator's scenario driver), sparse gradient aggregation, and
//!   a mixed multi-tenant profile.
//! * **Telemetry** — [`telemetry`] keeps lock-free per-shard counters merged
//!   into per-tenant stats: goodput against the workload's virtual clock,
//!   in-network hit ratio, p50/p99 latency from log₂ histograms, per-link
//!   byte counts — all exportable as JSON.
//! * **Live reconfiguration** — tenants are added and removed *while other
//!   tenants' traffic flows*.  Control messages share the FIFO channel with
//!   traffic, so a removal quiesces exactly the affected tenant's queued
//!   packets, then drops only its snippets and tables.  The `clickinc`
//!   crate's `ClickIncService` facade owns both a controller and an engine
//!   and mirrors every transactional deploy/remove onto the shards
//!   automatically; `Controller::attach_engine` is the low-level hook-based
//!   wiring for ablation experiments.
//!
//! ```
//! use clickinc_runtime::{EngineConfig, ShardingMode, TrafficEngine};
//! use clickinc_runtime::workload::{KvsWorkload, KvsWorkloadConfig};
//!
//! let engine = TrafficEngine::new(EngineConfig { shards: 2, batch_size: 64, ..Default::default() });
//! let handle = engine.handle();
//! // no hops: pure pass-through; flow-sharded across both workers
//! handle.add_tenant_sharded("t1", Vec::new(), ShardingMode::ByFlow { key_fields: Vec::new() });
//! let mut wl = KvsWorkload::new(KvsWorkloadConfig {
//!     tenant: "t1".into(),
//!     requests: 100,
//!     ..Default::default()
//! });
//! let report = handle.run_workload(&mut wl, 100, 32);
//! assert_eq!((report.admitted, report.shed), (100, 0));
//! handle.flush();
//! let outcome = engine.finish();
//! assert_eq!(outcome.telemetry.tenant("t1").unwrap().to_server, 100);
//! ```

pub mod adaptive;
pub mod engine;
pub mod faults;
pub mod shard;
pub mod telemetry;
pub mod tenant;
pub mod workload;

pub use adaptive::{AdaptAction, AdaptiveController, AdaptivePolicy, AdaptiveTick};
pub use clickinc_emulator::ExecMode;
pub use engine::{
    EngineConfig, EngineError, EngineHandle, InjectOutcome, OverloadPolicy, RunOutcome,
    TrafficEngine, WorkloadReport,
};
pub use faults::{DeviceHealth, FaultEvent, FaultInjector, FaultKind, FaultPlan};
pub use telemetry::{TelemetryReport, TenantCounters, TenantStats};
pub use tenant::{ShardingMode, TenantHop};
pub use workload::{
    GeneratedPacket, KvsWorkload, KvsWorkloadConfig, MixedWorkload, MlAggWorkload,
    MlAggWorkloadConfig, Workload,
};
