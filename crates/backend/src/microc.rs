//! Micro-C backend for the Netronome NFP smartNICs (run-to-completion).

use crate::emit::{args, compute_expr, guard_expr, operand, sanitize};
use clickinc_ir::{IrProgram, ObjectKind, OpCode};
use std::fmt::Write as _;

/// Generate a Micro-C program for the merged device image.
pub fn generate(image: &IrProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// Auto-generated Micro-C for program `{}` (Netronome NFP)", image.name);
    let _ = writeln!(out, "#include <nfp.h>");
    let _ = writeln!(out, "#include <pif_plugin.h>");
    out.push('\n');
    let _ = writeln!(out, "struct inc_header {{");
    let _ = writeln!(out, "    uint8_t inc_user;");
    let _ = writeln!(out, "    uint16_t step;");
    let _ = writeln!(out, "    uint32_t param;");
    for field in &image.headers {
        let bits = field.ty.width_bits().max(1);
        let ctype = if bits <= 8 {
            "uint8_t"
        } else if bits <= 16 {
            "uint16_t"
        } else if bits <= 32 {
            "uint32_t"
        } else {
            "uint64_t"
        };
        let _ = writeln!(out, "    {ctype} {};", sanitize(&field.name));
    }
    let _ = writeln!(out, "}};");
    out.push('\n');

    // state in the hierarchical memory (IMEM for big tables, CLS for counters)
    for obj in &image.objects {
        let name = sanitize(&obj.name);
        match &obj.kind {
            ObjectKind::Array { rows, size, width } => {
                let _ = writeln!(
                    out,
                    "__declspec(imem shared) uint{}_t {name}[{rows}][{size}];",
                    width.next_power_of_two().clamp(8, 64)
                );
            }
            ObjectKind::Sketch { rows, cols, width, .. } => {
                let _ = writeln!(
                    out,
                    "__declspec(cls shared) uint{}_t {name}[{rows}][{cols}];",
                    width.next_power_of_two().clamp(8, 64)
                );
            }
            ObjectKind::Seq { size, width } => {
                let _ = writeln!(
                    out,
                    "__declspec(cls shared) uint{}_t {name}[{size}];",
                    width.next_power_of_two().clamp(8, 64)
                );
            }
            ObjectKind::Table { depth, .. } => {
                let _ = writeln!(out, "__declspec(emem shared) struct {{ uint64_t key; uint64_t value; uint8_t valid; }} {name}[{depth}];");
            }
            ObjectKind::Hash { .. } => {
                let _ = writeln!(out, "// hash `{name}` uses the NFP CRC accelerator");
            }
            ObjectKind::Crypto { .. } => {
                let _ = writeln!(out, "// crypto `{name}` uses the NFP ECS accelerator");
            }
        }
    }
    out.push('\n');

    let _ = writeln!(
        out,
        "int pif_plugin_{}(EXTRACTED_HEADERS_T *headers, MATCH_DATA_T *match) {{",
        sanitize(&image.name)
    );
    let _ = writeln!(out, "    struct inc_header *hdr = pif_plugin_hdr_get_inc(headers);");
    let mut declared = std::collections::BTreeSet::new();
    for instr in &image.instructions {
        if let Some(dest) = instr.dest() {
            let d = sanitize(dest);
            if declared.insert(d.clone()) {
                let _ = writeln!(out, "    uint32_t {d} = 0;");
            }
        }
    }
    for instr in &image.instructions {
        let line = instruction_line(instr);
        match &instr.guard {
            Some(g) => {
                let _ = writeln!(out, "    if ({}) {{ {line} }}", guard_expr(g));
            }
            None => {
                let _ = writeln!(out, "    {line}");
            }
        }
    }
    let _ = writeln!(out, "    return PIF_PLUGIN_RETURN_FORWARD;");
    let _ = writeln!(out, "}}");
    out
}

fn instruction_line(instr: &clickinc_ir::Instruction) -> String {
    if let Some((dest, expr)) = compute_expr(&instr.op) {
        return format!("{dest} = {expr};");
    }
    match &instr.op {
        OpCode::Hash { dest, object, keys } => {
            format!("{} = crc_32({}); /* {} */", sanitize(dest), args(keys), sanitize(object))
        }
        OpCode::ReadState { dest, object, index } => {
            format!(
                "{} = {}[{}];",
                sanitize(dest),
                sanitize(object),
                args(index).replace(", ", "][")
            )
        }
        OpCode::WriteState { object, index, value } => {
            format!("{}[{}] = {};", sanitize(object), args(index).replace(", ", "]["), args(value))
        }
        OpCode::CountState { dest, object, index, delta } => {
            let idx = args(index).replace(", ", "][");
            match dest {
                Some(d) => format!(
                    "{}[{}] += {}; {} = {}[{}];",
                    sanitize(object),
                    idx,
                    operand(delta),
                    sanitize(d),
                    sanitize(object),
                    idx
                ),
                None => format!("{}[{}] += {};", sanitize(object), idx, operand(delta)),
            }
        }
        OpCode::ClearState { object } => {
            format!("memset({}, 0, sizeof({}));", sanitize(object), sanitize(object))
        }
        OpCode::DeleteState { object, index } => {
            format!("{}[{}] = 0;", sanitize(object), args(index).replace(", ", "]["))
        }
        OpCode::Drop => "return PIF_PLUGIN_RETURN_DROP;".to_string(),
        OpCode::Forward => "/* forward via normal path */".to_string(),
        OpCode::Back { .. } => "swap_and_return(headers);".to_string(),
        OpCode::Mirror { .. } => "mirror_to_host(headers);".to_string(),
        OpCode::Multicast { group } => format!("multicast(headers, {});", operand(group)),
        OpCode::CopyTo { target, values } => {
            format!("copy_to_{}({});", sanitize(target), args(values))
        }
        OpCode::SetHeader { field, value } => {
            format!("hdr->{} = {};", sanitize(field), operand(value))
        }
        OpCode::NoOp => "/* removed */".to_string(),
        other => format!("/* {} */", other.mnemonic()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_frontend::compile_source;
    use clickinc_lang::templates::{mlagg_template, MlAggParams};

    #[test]
    fn mlagg_microc_uses_hierarchical_memory_and_plugin_entry() {
        let t = mlagg_template(
            "mlagg",
            MlAggParams { dims: 4, num_aggregators: 128, ..Default::default() },
        );
        let ir = compile_source("mlagg", &t.source).unwrap();
        let c = generate(&ir);
        assert!(c.contains("__declspec(imem shared)"));
        assert!(c.contains("pif_plugin_mlagg"));
        assert!(c.contains("PIF_PLUGIN_RETURN_DROP"));
        assert!(c.contains("agg_data_t[4][128]") || c.contains("agg_data_t"));
    }
}
