//! # clickinc-topology — data-center network topologies
//!
//! ClickINC places programs over a data-center network of heterogeneous
//! programmable devices.  This crate models that network:
//!
//! * [`graph`] — the physical topology graph: nodes (servers, NICs, ToR /
//!   aggregation / core switches, each with a [`clickinc_device::DeviceKind`]
//!   and optionally a bypass accelerator) and links, with builders for
//!   device-equal fat-trees, spine-leaf fabrics, the paper's Fig. 11 emulation
//!   topology, and simple device chains (used by the Table 4 / Fig. 14
//!   experiments);
//! * [`paths`] — enumeration of the up-down paths between endpoint servers;
//! * [`reduce`] — the topology simplification of §5.3: devices are grouped into
//!   *equivalence classes* (ECs) per tier and pod, the fat-tree collapses into a
//!   client-side sub-tree and a server-side chain rooted at the core EC, and
//!   per-EC traffic shares are computed from the sources' traffic weights.

pub mod graph;
pub mod paths;
pub mod reduce;

pub use graph::{LinkId, Node, NodeHealth, NodeId, Tier, Topology};
pub use paths::enumerate_paths;
pub use reduce::{reduce_for_traffic, ReducedNode, ReducedTopology};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// In a k-ary device-equal fat tree every server can reach every other
        /// server and all paths have the expected up-down shape.
        #[test]
        fn fat_tree_paths_are_updown(k in 2usize..6) {
            let k = k * 2; // fat-trees need even k
            let topo = Topology::device_equal_fat_tree(k, clickinc_device::DeviceKind::Tofino);
            let servers = topo.servers();
            prop_assert!(!servers.is_empty());
            let a = servers[0];
            let b = *servers.last().unwrap();
            let paths = enumerate_paths(&topo, a, b);
            prop_assert!(!paths.is_empty());
            for p in &paths {
                prop_assert_eq!(p.first().copied(), Some(a));
                prop_assert_eq!(p.last().copied(), Some(b));
                // tiers rise then fall monotonically
                let tiers: Vec<i32> = p.iter().map(|n| topo.node(*n).tier.level()).collect();
                let peak = tiers.iter().copied().max().unwrap();
                let peak_pos = tiers.iter().position(|t| *t == peak).unwrap();
                prop_assert!(tiers[..=peak_pos].windows(2).all(|w| w[0] <= w[1]));
                prop_assert!(tiers[peak_pos..].windows(2).all(|w| w[0] >= w[1]));
            }
        }

        /// EC reduction conserves traffic: the root of the client sub-tree sees
        /// the whole traffic share (1.0) no matter how sources are spread.
        #[test]
        fn reduction_conserves_traffic(k in 2usize..5, nsrc in 1usize..6) {
            let k = k * 2;
            let topo = Topology::device_equal_fat_tree(k, clickinc_device::DeviceKind::Tofino);
            let servers = topo.servers();
            let dst = *servers.last().unwrap();
            let sources: Vec<_> = servers.iter().copied().take(nsrc.min(servers.len() - 1)).collect();
            let reduced = reduce_for_traffic(&topo, &sources, dst, &[]);
            let root_traffic = reduced.client[reduced.client_root].traffic;
            prop_assert!((root_traffic - 1.0).abs() < 1e-9);
        }
    }
}
