//! Read/write-set extraction and dependency-edge computation.
//!
//! Paper §5.2, Step 1: "If an instruction *i* reads a variable whose value is
//! written by a previous instruction *j*, *i* depends on *j*. [...] All
//! instructions that write or read the same state are mutually dependent."
//! This module computes both flavours of edges over an instruction slice.

use crate::instr::{Guard, Instruction, OpCode, Operand};
use crate::object::ObjectDecl;
use std::collections::{BTreeMap, BTreeSet};

/// The variables/fields read and written by an instruction, plus the stateful
/// objects it touches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReadWriteSet {
    /// Temporary variables read.
    pub reads_vars: BTreeSet<String>,
    /// Header / metadata fields read.
    pub reads_fields: BTreeSet<String>,
    /// Temporary variable written (SSA: at most one).
    pub writes_var: Option<String>,
    /// Header / metadata fields written.
    pub writes_fields: BTreeSet<String>,
    /// Stateful objects accessed (read or write).
    pub state_objects: BTreeSet<String>,
}

impl ReadWriteSet {
    /// Extract the read/write set of a single instruction.
    ///
    /// Objects that are *not* stateful (Hash, Crypto, stateless tables) are not
    /// recorded in `state_objects`; `objects` supplies that distinction.  If the
    /// referenced object cannot be found it is conservatively treated as stateful.
    pub fn of(instr: &Instruction, objects: &[ObjectDecl]) -> ReadWriteSet {
        let mut set = ReadWriteSet::default();
        if let Some(guard) = &instr.guard {
            set.collect_guard(guard);
        }
        set.collect_op(&instr.op);
        // Filter out stateless function objects from the state set.
        set.state_objects.retain(|name| {
            objects.iter().find(|o| &o.name == name).map(|o| o.kind.is_stateful()).unwrap_or(true)
        });
        // Multi-row register arrays addressed with a *constant* row index are a
        // collection of independent register arrays: accesses to different rows
        // carry no mutual state dependency, which is what lets the placement
        // engine split e.g. the MLAgg parameter vector across devices.  The
        // state key is refined to `object#row<k>` in that case.
        set.refine_array_rows(instr, objects);
        set
    }

    fn refine_array_rows(&mut self, instr: &Instruction, objects: &[ObjectDecl]) {
        use crate::object::ObjectKind;
        let obj_name = match instr.op.object() {
            Some(o) => o.to_string(),
            None => return,
        };
        let is_multirow_array = objects
            .iter()
            .find(|o| o.name == obj_name)
            .map(|o| matches!(o.kind, ObjectKind::Array { rows, .. } if rows > 1))
            .unwrap_or(false);
        if !is_multirow_array || !self.state_objects.contains(&obj_name) {
            return;
        }
        let first_index = match &instr.op {
            OpCode::ReadState { index, .. }
            | OpCode::WriteState { index, .. }
            | OpCode::CountState { index, .. }
            | OpCode::DeleteState { index, .. } => index.first(),
            _ => None,
        };
        if let Some(Operand::Const(crate::types::Value::Int(row))) = first_index {
            self.state_objects.remove(&obj_name);
            self.state_objects.insert(format!("{obj_name}#row{row}"));
        }
    }

    fn collect_guard(&mut self, guard: &Guard) {
        for p in &guard.all {
            self.read_operand(&p.lhs);
            self.read_operand(&p.rhs);
        }
    }

    fn read_operand(&mut self, op: &Operand) {
        match op {
            Operand::Var(v) => {
                self.reads_vars.insert(v.clone());
            }
            Operand::Header(h) | Operand::Meta(h) => {
                self.reads_fields.insert(h.clone());
            }
            Operand::Const(_) => {}
        }
    }

    fn read_operands(&mut self, ops: &[Operand]) {
        for op in ops {
            self.read_operand(op);
        }
    }

    fn collect_op(&mut self, op: &OpCode) {
        match op {
            OpCode::Assign { dest, src } => {
                self.read_operand(src);
                self.writes_var = Some(dest.clone());
            }
            OpCode::Alu { dest, lhs, rhs, .. } => {
                self.read_operand(lhs);
                self.read_operand(rhs);
                self.writes_var = Some(dest.clone());
            }
            OpCode::Cmp { dest, lhs, rhs, .. } => {
                self.read_operand(lhs);
                self.read_operand(rhs);
                self.writes_var = Some(dest.clone());
            }
            OpCode::Hash { dest, object, keys } => {
                self.read_operands(keys);
                self.writes_var = Some(dest.clone());
                // hash objects are pure functions; recorded then filtered by `of`
                self.state_objects.insert(object.clone());
            }
            OpCode::ReadState { dest, object, index } => {
                self.read_operands(index);
                self.writes_var = Some(dest.clone());
                self.state_objects.insert(object.clone());
            }
            OpCode::WriteState { object, index, value } => {
                self.read_operands(index);
                self.read_operands(value);
                self.state_objects.insert(object.clone());
            }
            OpCode::CountState { dest, object, index, delta } => {
                self.read_operands(index);
                self.read_operand(delta);
                self.writes_var = dest.clone();
                self.state_objects.insert(object.clone());
            }
            OpCode::ClearState { object } => {
                self.state_objects.insert(object.clone());
            }
            OpCode::DeleteState { object, index } => {
                self.read_operands(index);
                self.state_objects.insert(object.clone());
            }
            OpCode::Drop | OpCode::Forward | OpCode::NoOp => {}
            OpCode::Back { updates } | OpCode::Mirror { updates } => {
                for (field, value) in updates {
                    self.read_operand(value);
                    self.writes_fields.insert(field.clone());
                }
            }
            OpCode::Multicast { group } => {
                self.read_operand(group);
            }
            OpCode::CopyTo { values, .. } => {
                self.read_operands(values);
            }
            OpCode::SetHeader { field, value } => {
                self.read_operand(value);
                self.writes_fields.insert(field.clone());
            }
            OpCode::Crypto { dest, object, input, .. } => {
                self.read_operand(input);
                self.writes_var = Some(dest.clone());
                self.state_objects.insert(object.clone());
            }
            OpCode::RandInt { dest, bound } => {
                self.read_operand(bound);
                self.writes_var = Some(dest.clone());
            }
            OpCode::Checksum { dest, inputs } => {
                self.read_operands(inputs);
                self.writes_var = Some(dest.clone());
            }
        }
    }
}

/// The kind of dependency between two instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependencyKind {
    /// True data dependency: the later instruction reads a variable or header
    /// field written by the earlier one.
    Data,
    /// State-sharing dependency: both instructions access the same stateful
    /// object; per the paper they are *mutually* dependent and must co-locate.
    State,
}

/// Compute dependency edges over a slice of instructions.
///
/// Returns `(from, to, kind)` triples over instruction *indices* (not ids):
///
/// * a [`DependencyKind::Data`] edge from the defining instruction to each later
///   instruction reading the defined variable or written header field;
/// * a pair of [`DependencyKind::State`] edges (both directions) between every
///   pair of instructions sharing a stateful object, reflecting the paper's
///   "mutually dependent" rule (these are what the block builder later collapses
///   into a single block).
pub fn dependency_edges(
    instructions: &[Instruction],
    objects: &[ObjectDecl],
) -> Vec<(usize, usize, DependencyKind)> {
    let sets: Vec<ReadWriteSet> =
        instructions.iter().map(|i| ReadWriteSet::of(i, objects)).collect();
    let mut edges = Vec::new();

    // variable/field definition sites
    let mut var_defs: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut field_defs: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, set) in sets.iter().enumerate() {
        if let Some(v) = &set.writes_var {
            var_defs.entry(v.as_str()).or_default().push(idx);
        }
        for fld in &set.writes_fields {
            field_defs.entry(fld.as_str()).or_default().push(idx);
        }
    }

    for (idx, set) in sets.iter().enumerate() {
        for v in &set.reads_vars {
            if let Some(defs) = var_defs.get(v.as_str()) {
                // last definition strictly before this instruction
                if let Some(&def) = defs.iter().rfind(|d| **d < idx) {
                    edges.push((def, idx, DependencyKind::Data));
                }
            }
        }
        for fld in &set.reads_fields {
            if let Some(defs) = field_defs.get(fld.as_str()) {
                if let Some(&def) = defs.iter().rfind(|d| **d < idx) {
                    edges.push((def, idx, DependencyKind::Data));
                }
            }
        }
    }

    // state-sharing (mutual) dependencies
    let mut by_object: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, set) in sets.iter().enumerate() {
        for obj in &set.state_objects {
            by_object.entry(obj.as_str()).or_default().push(idx);
        }
    }
    for idxs in by_object.values() {
        for i in 0..idxs.len() {
            for j in (i + 1)..idxs.len() {
                edges.push((idxs[i], idxs[j], DependencyKind::State));
                edges.push((idxs[j], idxs[i], DependencyKind::State));
            }
        }
    }

    edges.sort_by_key(|(a, b, k)| (*a, *b, *k == DependencyKind::State));
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, CmpOp, Predicate};
    use crate::object::{HashAlgo, ObjectKind};

    fn objs() -> Vec<ObjectDecl> {
        vec![
            ObjectDecl::new("agg", ObjectKind::Array { rows: 1, size: 16, width: 32 }),
            ObjectDecl::new("h", ObjectKind::Hash { algo: HashAlgo::Crc16, modulus: Some(16) }),
        ]
    }

    fn prog() -> Vec<Instruction> {
        vec![
            // i0: idx = hash(h, hdr.seq)
            Instruction::new(
                0,
                OpCode::Hash {
                    dest: "idx".into(),
                    object: "h".into(),
                    keys: vec![Operand::hdr("seq")],
                },
            ),
            // i1: cur = get(agg, idx)
            Instruction::new(
                1,
                OpCode::ReadState {
                    dest: "cur".into(),
                    object: "agg".into(),
                    index: vec![Operand::var("idx")],
                },
            ),
            // i2: new = cur + hdr.data
            Instruction::new(
                2,
                OpCode::Alu {
                    dest: "new".into(),
                    op: AluOp::Add,
                    lhs: Operand::var("cur"),
                    rhs: Operand::hdr("data"),
                    float: false,
                },
            ),
            // i3: write(agg, idx, new)
            Instruction::new(
                3,
                OpCode::WriteState {
                    object: "agg".into(),
                    index: vec![Operand::var("idx")],
                    value: vec![Operand::var("new")],
                },
            ),
            // i4: (new > 0) ? fwd
            Instruction::guarded(
                4,
                OpCode::Forward,
                Guard::single(Predicate::new(Operand::var("new"), CmpOp::Gt, Operand::int(0))),
            ),
        ]
    }

    #[test]
    fn read_write_sets() {
        let p = prog();
        let o = objs();
        let s0 = ReadWriteSet::of(&p[0], &o);
        assert_eq!(s0.writes_var.as_deref(), Some("idx"));
        assert!(s0.reads_fields.contains("seq"));
        assert!(s0.state_objects.is_empty(), "hash objects are pure functions");

        let s1 = ReadWriteSet::of(&p[1], &o);
        assert!(s1.reads_vars.contains("idx"));
        assert!(s1.state_objects.contains("agg"));

        let s3 = ReadWriteSet::of(&p[3], &o);
        assert!(s3.writes_var.is_none());
        assert!(s3.reads_vars.contains("new"));
        assert!(s3.state_objects.contains("agg"));

        let s4 = ReadWriteSet::of(&p[4], &o);
        assert!(s4.reads_vars.contains("new"), "guard operands are reads");
    }

    #[test]
    fn data_dependencies_follow_def_use() {
        let edges = dependency_edges(&prog(), &objs());
        assert!(edges.contains(&(0, 1, DependencyKind::Data)), "idx def -> use");
        assert!(edges.contains(&(1, 2, DependencyKind::Data)), "cur def -> use");
        assert!(edges.contains(&(2, 3, DependencyKind::Data)), "new def -> use");
        assert!(edges.contains(&(2, 4, DependencyKind::Data)), "guard read of new");
        assert!(!edges.contains(&(0, 2, DependencyKind::Data)));
    }

    #[test]
    fn state_sharing_is_mutual() {
        let edges = dependency_edges(&prog(), &objs());
        assert!(edges.contains(&(1, 3, DependencyKind::State)));
        assert!(edges.contains(&(3, 1, DependencyKind::State)));
    }

    #[test]
    fn header_write_then_read_is_a_dependency() {
        let instrs = vec![
            Instruction::new(
                0,
                OpCode::SetHeader { field: "bitmap".into(), value: Operand::int(3) },
            ),
            Instruction::new(1, OpCode::Assign { dest: "b".into(), src: Operand::hdr("bitmap") }),
        ];
        let edges = dependency_edges(&instrs, &[]);
        assert!(edges.contains(&(0, 1, DependencyKind::Data)));
    }

    #[test]
    fn unknown_object_treated_as_stateful() {
        let instrs = vec![
            Instruction::new(
                0,
                OpCode::ReadState { dest: "a".into(), object: "mystery".into(), index: vec![] },
            ),
            Instruction::new(1, OpCode::ClearState { object: "mystery".into() }),
        ];
        let edges = dependency_edges(&instrs, &[]);
        assert!(edges.contains(&(0, 1, DependencyKind::State)));
        assert!(edges.contains(&(1, 0, DependencyKind::State)));
    }

    #[test]
    fn independent_instructions_have_no_edges() {
        let instrs = vec![
            Instruction::new(0, OpCode::Assign { dest: "a".into(), src: Operand::int(1) }),
            Instruction::new(1, OpCode::Assign { dest: "b".into(), src: Operand::int(2) }),
        ];
        assert!(dependency_edges(&instrs, &[]).is_empty());
    }
}
