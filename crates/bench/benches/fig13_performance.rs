//! Fig. 13 — sparse-gradient aggregation goodput and in-network latency across
//! the five network configurations.

use clickinc_apps::fig13_configurations;
use clickinc_emulator::run_aggregation_scenario;

fn main() {
    println!("== Fig. 13: sparse gradient aggregation performance ==");
    println!(
        "{:<20} {:>15} {:>18} {:>16} {:>14}",
        "Configuration", "Goodput (Gbps)", "INC latency (ns)", "Server packets", "Correct"
    );
    for mut case in fig13_configurations(4, 400, 32) {
        let report = run_aggregation_scenario(&mut case.setup, &case.workload);
        println!(
            "{:<20} {:>15.1} {:>18.0} {:>16} {:>14}",
            case.label,
            report.goodput_gbps,
            report.inc_latency_ns,
            report.packets_at_server,
            report.aggregation_correct
        );
    }
    println!(
        "(paper Fig. 13a ordering: DPDK < SmartNIC < 1 Switch < 2 Switches < 1 Switch+SmartNIC;"
    );
    println!(" paper Fig. 13b: switch latency ≈ 400-800 ns, smartNIC paths ≈ 1-1.5 µs)");
}
