//! Def-use, reaching definitions and liveness over the straight-line IR.
//!
//! The frontend if-converts every branch into predicated (guarded)
//! instructions, so the CFG of an [`IrProgram`] is a single basic block and the
//! classic dataflow problems collapse into list walks — with one twist: a
//! *guarded* definition behaves like one arm of a φ-merge (it may or may not
//! execute), so it never kills earlier definitions, while an unguarded
//! definition does.

use crate::deps::ReadWriteSet;
use crate::instr::{OpCode, Operand};
use crate::program::IrProgram;
use std::collections::{BTreeMap, BTreeSet};

/// Def-use chains of one program.
#[derive(Debug, Clone)]
pub struct DefUse {
    sets: Vec<ReadWriteSet>,
    guarded: Vec<bool>,
    var_defs: BTreeMap<String, Vec<usize>>,
    var_uses: BTreeMap<String, Vec<usize>>,
}

impl DefUse {
    /// Build the def-use chains of `program`.
    pub fn of(program: &IrProgram) -> DefUse {
        let sets: Vec<ReadWriteSet> =
            program.instructions.iter().map(|i| ReadWriteSet::of(i, &program.objects)).collect();
        let guarded = program.instructions.iter().map(|i| i.guard.is_some()).collect();
        let mut var_defs: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut var_uses: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, set) in sets.iter().enumerate() {
            if let Some(v) = &set.writes_var {
                var_defs.entry(v.clone()).or_default().push(idx);
            }
            for v in &set.reads_vars {
                var_uses.entry(v.clone()).or_default().push(idx);
            }
        }
        DefUse { sets, guarded, var_defs, var_uses }
    }

    /// The read/write set of instruction `idx`.
    pub fn set(&self, idx: usize) -> &ReadWriteSet {
        &self.sets[idx]
    }

    /// All instructions defining `var`, in program order.
    pub fn defs_of(&self, var: &str) -> &[usize] {
        self.var_defs.get(var).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All instructions reading `var` (operands or guards), in program order.
    pub fn uses_of(&self, var: &str) -> &[usize] {
        self.var_uses.get(var).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The definitions of `var` that reach instruction `at`: every definition
    /// before `at` that is not killed by a later *unguarded* definition still
    /// before `at`.  Guarded definitions are φ-arms and kill nothing.
    pub fn reaching_defs(&self, var: &str, at: usize) -> Vec<usize> {
        let defs = self.defs_of(var);
        let last_kill = defs.iter().copied().filter(|&d| d < at && !self.guarded[d]).max();
        defs.iter()
            .copied()
            .filter(|&d| d < at && last_kill.map(|k| d >= k).unwrap_or(true))
            .collect()
    }

    /// Whether the value defined by instruction `def` is read by any later
    /// instruction.
    pub fn def_is_used(&self, def: usize) -> bool {
        match &self.sets[def].writes_var {
            Some(v) => self.uses_of(v).iter().any(|&u| u > def),
            None => false,
        }
    }

    /// Liveness over the value graph: an instruction is live when it is
    /// effectful ([`is_effectful`]), an explicit packet action, or its defined
    /// value flows (transitively) into a live instruction's operands or guard.
    /// Dead instructions are pure computations nothing observes.
    pub fn live_instructions(&self, program: &IrProgram) -> Vec<bool> {
        let n = program.instructions.len();
        let mut live = vec![false; n];
        let mut needed: BTreeSet<String> = BTreeSet::new();
        for idx in (0..n).rev() {
            let instr = &program.instructions[idx];
            let set = &self.sets[idx];
            let is_root = is_effectful(instr)
                || instr.op.is_packet_action()
                || matches!(instr.op, OpCode::NoOp);
            let feeds_live = set.writes_var.as_ref().map(|v| needed.contains(v)).unwrap_or(false);
            if is_root || feeds_live {
                live[idx] = true;
                needed.extend(set.reads_vars.iter().cloned());
            }
        }
        live
    }
}

/// Whether an instruction has an effect observable outside the device: it
/// mutates a state object, rewrites a header field, draws from the tenant's
/// random stream, or takes a packet action other than the default `forward`.
pub fn is_effectful(instr: &crate::instr::Instruction) -> bool {
    match &instr.op {
        OpCode::WriteState { .. }
        | OpCode::CountState { .. }
        | OpCode::ClearState { .. }
        | OpCode::DeleteState { .. }
        | OpCode::SetHeader { .. }
        | OpCode::Back { .. }
        | OpCode::Mirror { .. }
        | OpCode::Drop
        | OpCode::Multicast { .. }
        | OpCode::CopyTo { .. }
        | OpCode::RandInt { .. } => true,
        OpCode::Forward
        | OpCode::NoOp
        | OpCode::Assign { .. }
        | OpCode::Alu { .. }
        | OpCode::Cmp { .. }
        | OpCode::Hash { .. }
        | OpCode::ReadState { .. }
        | OpCode::Crypto { .. }
        | OpCode::Checksum { .. } => false,
    }
}

/// Header fields (strictly `hdr.*`, not metadata) read by an instruction's
/// operands and guard, in no particular order.
pub fn header_reads(instr: &crate::instr::Instruction) -> BTreeSet<String> {
    let mut fields = BTreeSet::new();
    let mut read = |op: &Operand| {
        if let Operand::Header(f) = op {
            fields.insert(f.clone());
        }
    };
    if let Some(guard) = &instr.guard {
        for p in &guard.all {
            read(&p.lhs);
            read(&p.rhs);
        }
    }
    match &instr.op {
        OpCode::Assign { src, .. } => read(src),
        OpCode::Alu { lhs, rhs, .. } | OpCode::Cmp { lhs, rhs, .. } => {
            read(lhs);
            read(rhs);
        }
        OpCode::Hash { keys, .. } => keys.iter().for_each(&mut read),
        OpCode::ReadState { index, .. } | OpCode::DeleteState { index, .. } => {
            index.iter().for_each(&mut read)
        }
        OpCode::WriteState { index, value, .. } => {
            index.iter().for_each(&mut read);
            value.iter().for_each(&mut read);
        }
        OpCode::CountState { index, delta, .. } => {
            index.iter().for_each(&mut read);
            read(delta);
        }
        OpCode::Back { updates } | OpCode::Mirror { updates } => {
            updates.iter().for_each(|(_, v)| read(v))
        }
        OpCode::Multicast { group } => read(group),
        OpCode::CopyTo { values, .. } => values.iter().for_each(&mut read),
        OpCode::SetHeader { value, .. } => read(value),
        OpCode::Crypto { input, .. } => read(input),
        OpCode::RandInt { bound, .. } => read(bound),
        OpCode::Checksum { inputs, .. } => inputs.iter().for_each(&mut read),
        OpCode::ClearState { .. } | OpCode::Drop | OpCode::Forward | OpCode::NoOp => {}
    }
    fields
}

/// Header fields an instruction writes (`hdr.field = v`, `back`/`mirror`
/// update dictionaries).
pub fn header_writes(instr: &crate::instr::Instruction) -> BTreeSet<String> {
    match &instr.op {
        OpCode::SetHeader { field, .. } => std::iter::once(field.clone()).collect(),
        OpCode::Back { updates } | OpCode::Mirror { updates } => {
            updates.iter().map(|(f, _)| f.clone()).collect()
        }
        _ => BTreeSet::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::{CmpOp, Predicate};

    fn sample() -> IrProgram {
        let mut b = ProgramBuilder::new("p");
        b.array("acc", 1, 16, 32);
        b.assign("x", Operand::int(1)); // 0
        b.guarded(Predicate::new(Operand::hdr("op"), CmpOp::Eq, Operand::int(1)), |b| {
            b.assign("y", Operand::var("x")); // 1 (guarded def of y)
        });
        b.guarded(Predicate::new(Operand::hdr("op"), CmpOp::Eq, Operand::int(2)), |b| {
            b.assign("y", Operand::int(9)); // 2 (guarded def of y)
        });
        b.count(None, "acc", vec![Operand::var("y")], Operand::int(1)); // 3
        b.assign("unused", Operand::var("x")); // 4
        b.forward(); // 5
        b.build().expect("sample builds")
    }

    #[test]
    fn guarded_defs_merge_like_phi_arms() {
        let p = sample();
        let du = DefUse::of(&p);
        assert_eq!(du.reaching_defs("y", 3), vec![1, 2], "both guarded arms reach the use");
        assert_eq!(du.defs_of("y"), &[1, 2]);
        assert_eq!(du.uses_of("y"), &[3]);
    }

    #[test]
    fn unguarded_defs_kill_earlier_ones() {
        let mut b = ProgramBuilder::new("p");
        b.assign("a", Operand::int(1)); // 0
        b.assign("a", Operand::int(2)); // 1 (kills 0; not SSA, but analyzable)
        b.assign("b", Operand::var("a")); // 2
        let p = b.build().unwrap();
        let du = DefUse::of(&p);
        assert_eq!(du.reaching_defs("a", 2), vec![1]);
    }

    #[test]
    fn liveness_flows_backwards_from_effects() {
        let p = sample();
        let du = DefUse::of(&p);
        let live = du.live_instructions(&p);
        // x feeds y feeds the count; the count and the forward are roots
        assert!(live[0] && live[1] && live[2] && live[3] && live[5]);
        assert!(!live[4], "`unused` feeds nothing observable");
        assert!(du.def_is_used(0));
        assert!(!du.def_is_used(4));
    }

    #[test]
    fn header_read_write_extraction_skips_metadata() {
        let mut b = ProgramBuilder::new("p");
        b.guarded(
            Predicate::new(Operand::Meta("inc_user".into()), CmpOp::Eq, Operand::int(1)),
            |b| {
                b.assign("k", Operand::hdr("key"));
                b.set_header("op", Operand::var("k"));
            },
        );
        let p = b.build().unwrap();
        assert_eq!(header_reads(&p.instructions[0]).into_iter().collect::<Vec<_>>(), vec!["key"]);
        assert!(header_writes(&p.instructions[0]).is_empty());
        assert_eq!(header_writes(&p.instructions[1]).into_iter().collect::<Vec<_>>(), vec!["op"]);
    }
}
