//! The [`IrProgram`] container.

use crate::capability::{classify_instruction, CapabilityClass};
use crate::deps::{dependency_edges, DependencyKind, ReadWriteSet};
use crate::error::IrError;
use crate::instr::{Guard, Instruction, OpCode, Operand};
use crate::object::ObjectDecl;
use crate::types::ValueType;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Declaration of a packet header field used by a program (the application
/// protocol header described in the profile's `packet_format`, e.g.
/// `"khdr": {"key": "bit_128"}`).
#[derive(Debug, Clone, PartialEq)]
pub struct HeaderFieldDecl {
    /// Field name (without the `hdr.` prefix).
    pub name: String,
    /// Field type.
    pub ty: ValueType,
}

impl HeaderFieldDecl {
    /// Create a header field declaration.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        HeaderFieldDecl { name: name.into(), ty }
    }
}

/// A complete platform-independent IR program: object declarations, the header
/// fields it parses, and a straight-line list of (optionally guarded)
/// instructions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IrProgram {
    /// Program name (the user program id, e.g. `kvs_0`, or `base` for the
    /// operator's program).
    pub name: String,
    /// Stateful / functional object declarations.
    pub objects: Vec<ObjectDecl>,
    /// Header fields parsed / written by the program.
    pub headers: Vec<HeaderFieldDecl>,
    /// The instruction stream.
    pub instructions: Vec<Instruction>,
    /// A program-level guard evaluated once per packet before any instruction:
    /// when it fails, the whole program is skipped for that packet.  Produced
    /// by the optimizer's guard-hoisting pass (e.g. the tenant-isolation
    /// `meta.inc_user == id` predicate shared by every instruction); `None`
    /// means the program runs unconditionally.  Predicates here may only read
    /// constants, metadata and header fields — never variables — so the guard
    /// is well-defined before the first instruction executes.
    pub precondition: Option<Guard>,
}

impl IrProgram {
    /// Create an empty program with a name.
    pub fn new(name: impl Into<String>) -> IrProgram {
        IrProgram { name: name.into(), ..IrProgram::default() }
    }

    /// Look up an object declaration by name.
    pub fn object(&self, name: &str) -> Option<&ObjectDecl> {
        self.objects.iter().find(|o| o.name == name)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Classify every instruction (paper Table 9), in program order.
    pub fn capability_classes(&self) -> Vec<CapabilityClass> {
        self.instructions.iter().map(|i| classify_instruction(i, &self.objects)).collect()
    }

    /// The set of distinct capability classes required by the program.
    pub fn required_capabilities(&self) -> BTreeSet<CapabilityClass> {
        self.capability_classes().into_iter().collect()
    }

    /// Dependency edges over instruction indices (see [`dependency_edges`]).
    pub fn dependencies(&self) -> Vec<(usize, usize, DependencyKind)> {
        dependency_edges(&self.instructions, &self.objects)
    }

    /// Read/write set of every instruction, in program order.
    pub fn read_write_sets(&self) -> Vec<ReadWriteSet> {
        self.instructions.iter().map(|i| ReadWriteSet::of(i, &self.objects)).collect()
    }

    /// The longest chain length in the data-dependency DAG (the "dependency"
    /// column of paper Table 4).  State (mutual) edges are ignored because they
    /// merge into single blocks rather than forming a chain.
    pub fn dependency_depth(&self) -> usize {
        let n = self.instructions.len();
        if n == 0 {
            return 0;
        }
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b, kind) in self.dependencies() {
            if kind == DependencyKind::Data {
                succ[a].push(b);
            }
        }
        // longest path in a DAG whose edges always go forward in index order
        let mut depth = vec![1usize; n];
        for i in (0..n).rev() {
            for &j in &succ[i] {
                depth[i] = depth[i].max(1 + depth[j]);
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// All user ids that own at least one instruction or object.
    pub fn owners(&self) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        for i in &self.instructions {
            for o in &i.owners {
                set.insert(o.clone());
            }
        }
        for o in &self.objects {
            if let Some(owner) = &o.owner {
                set.insert(owner.clone());
            }
        }
        set
    }

    /// Validate structural invariants:
    ///
    /// 1. every referenced object is declared exactly once;
    /// 2. every variable read has a prior definition (headers/meta are exempt);
    /// 3. SSA: no variable is written twice *unconditionally*.  Multiple
    ///    *guarded* writes to the same variable are allowed — that is exactly
    ///    the φ-merge pattern the frontend emits after if-conversion, where the
    ///    guards are mutually exclusive.
    pub fn validate(&self) -> Result<(), IrError> {
        if self.instructions.is_empty() {
            return Err(IrError::EmptyProgram);
        }
        let mut names = BTreeSet::new();
        for o in &self.objects {
            if !names.insert(o.name.as_str()) {
                return Err(IrError::DuplicateObject { object: o.name.clone() });
            }
        }
        if let Some(pre) = &self.precondition {
            for p in &pre.all {
                for op in [&p.lhs, &p.rhs] {
                    if let Operand::Var(v) = op {
                        // the precondition runs before instruction 0, so no
                        // variable can possibly be defined yet
                        return Err(IrError::UndefinedVariable { var: v.clone(), instr: 0 });
                    }
                }
            }
        }
        let mut defined: BTreeSet<&str> = BTreeSet::new();
        let mut def_counts: BTreeMap<&str, usize> = BTreeMap::new();
        let sets = self.read_write_sets();
        for (idx, (instr, set)) in self.instructions.iter().zip(sets.iter()).enumerate() {
            if let Some(obj) = instr.object() {
                if self.object(obj).is_none() {
                    return Err(IrError::UnknownObject { object: obj.to_string(), instr: idx });
                }
            }
            for v in &set.reads_vars {
                if !defined.contains(v.as_str()) {
                    return Err(IrError::UndefinedVariable { var: v.clone(), instr: idx });
                }
            }
            if let Some(w) = &set.writes_var {
                defined.insert(w.as_str());
                if instr.guard.is_none() {
                    *def_counts.entry(w.as_str()).or_insert(0) += 1;
                }
            }
        }
        for (var, count) in def_counts {
            if count > 1 {
                return Err(IrError::DuplicateAssignment { var: var.to_string() });
            }
        }
        Ok(())
    }

    /// A compact textual dump used by tests and the CLI examples.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("program {} ({} instrs)\n", self.name, self.len()));
        if let Some(pre) = &self.precondition {
            out.push_str(&format!("  precondition: {pre}\n"));
        }
        for o in &self.objects {
            out.push_str(&format!(
                "  object {} : {}{}\n",
                o.name,
                o.kind.kind_name(),
                o.owner.as_ref().map(|u| format!(" [{u}]")).unwrap_or_default()
            ));
        }
        for (idx, i) in self.instructions.iter().enumerate() {
            let class = classify_instruction(i, &self.objects);
            out.push_str(&format!("  {idx:3}: {i} ({class})\n"));
        }
        out
    }

    /// Remove instructions turned into [`OpCode::NoOp`] and renumber ids.
    /// Used by the incremental-removal path of the synthesizer.
    pub fn compact(&mut self) {
        self.instructions.retain(|i| !matches!(i.op, OpCode::NoOp));
        for (idx, i) in self.instructions.iter_mut().enumerate() {
            i.id = crate::instr::InstrId(idx as u32);
        }
    }
}

impl fmt::Display for IrProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.dump())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Operand};
    use crate::object::{HashAlgo, ObjectKind};

    fn sample() -> IrProgram {
        let mut p = IrProgram::new("test");
        p.objects.push(ObjectDecl::new("agg", ObjectKind::Array { rows: 1, size: 64, width: 32 }));
        p.objects.push(ObjectDecl::new(
            "h",
            ObjectKind::Hash { algo: HashAlgo::Crc16, modulus: Some(64) },
        ));
        p.headers.push(HeaderFieldDecl::new("seq", ValueType::Bit(32)));
        p.headers.push(HeaderFieldDecl::new("data", ValueType::Bit(32)));
        p.instructions = vec![
            Instruction::new(
                0,
                OpCode::Hash {
                    dest: "idx".into(),
                    object: "h".into(),
                    keys: vec![Operand::hdr("seq")],
                },
            ),
            Instruction::new(
                1,
                OpCode::ReadState {
                    dest: "cur".into(),
                    object: "agg".into(),
                    index: vec![Operand::var("idx")],
                },
            ),
            Instruction::new(
                2,
                OpCode::Alu {
                    dest: "sum".into(),
                    op: AluOp::Add,
                    lhs: Operand::var("cur"),
                    rhs: Operand::hdr("data"),
                    float: false,
                },
            ),
            Instruction::new(
                3,
                OpCode::WriteState {
                    object: "agg".into(),
                    index: vec![Operand::var("idx")],
                    value: vec![Operand::var("sum")],
                },
            ),
            Instruction::new(4, OpCode::Forward),
        ];
        p
    }

    #[test]
    fn valid_program_passes_validation() {
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(IrProgram::new("x").validate(), Err(IrError::EmptyProgram));
    }

    #[test]
    fn unknown_object_rejected() {
        let mut p = sample();
        p.objects.remove(0); // drop `agg`
        match p.validate() {
            Err(IrError::UnknownObject { object, .. }) => assert_eq!(object, "agg"),
            other => panic!("expected UnknownObject, got {other:?}"),
        }
    }

    #[test]
    fn undefined_variable_rejected() {
        let mut p = sample();
        p.instructions.remove(0); // idx never defined
        match p.validate() {
            Err(IrError::UndefinedVariable { var, .. }) => assert_eq!(var, "idx"),
            other => panic!("expected UndefinedVariable, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_assignment_rejected() {
        let mut p = sample();
        let dup = Instruction::new(5, OpCode::Assign { dest: "sum".into(), src: Operand::int(0) });
        p.instructions.push(dup);
        match p.validate() {
            Err(IrError::DuplicateAssignment { var }) => assert_eq!(var, "sum"),
            other => panic!("expected DuplicateAssignment, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_object_rejected() {
        let mut p = sample();
        p.objects.push(ObjectDecl::new("agg", ObjectKind::Seq { size: 1, width: 1 }));
        assert_eq!(p.validate(), Err(IrError::DuplicateObject { object: "agg".into() }));
    }

    #[test]
    fn capability_summary() {
        let p = sample();
        let caps = p.required_capabilities();
        assert!(caps.contains(&CapabilityClass::Baf)); // hash
        assert!(caps.contains(&CapabilityClass::Bso)); // array read/write
        assert!(caps.contains(&CapabilityClass::Bin)); // add
        assert!(caps.contains(&CapabilityClass::Bbpf)); // fwd
        assert!(!caps.contains(&CapabilityClass::Bca));
    }

    #[test]
    fn dependency_depth_of_chain() {
        // hash -> read -> add -> write is a 4-long data chain
        assert_eq!(sample().dependency_depth(), 4);
        let mut indep = IrProgram::new("indep");
        indep.instructions = vec![
            Instruction::new(0, OpCode::Assign { dest: "a".into(), src: Operand::int(1) }),
            Instruction::new(1, OpCode::Assign { dest: "b".into(), src: Operand::int(2) }),
        ];
        assert_eq!(indep.dependency_depth(), 1);
        assert_eq!(IrProgram::new("e").dependency_depth(), 0);
    }

    #[test]
    fn owners_collected_from_instructions_and_objects() {
        let mut p = sample();
        p.instructions[0].owners.push("kvs_0".into());
        p.objects.push(ObjectDecl::owned("mtb", ObjectKind::Seq { size: 2, width: 8 }, "mlagg_1"));
        let owners = p.owners();
        assert!(owners.contains("kvs_0"));
        assert!(owners.contains("mlagg_1"));
        assert_eq!(owners.len(), 2);
    }

    #[test]
    fn compact_removes_noops_and_renumbers() {
        let mut p = sample();
        p.instructions[2].op = OpCode::NoOp;
        p.compact();
        assert_eq!(p.len(), 4);
        for (idx, i) in p.instructions.iter().enumerate() {
            assert_eq!(i.id.0 as usize, idx);
        }
    }

    #[test]
    fn dump_mentions_objects_and_instructions() {
        let d = sample().dump();
        assert!(d.contains("program test"));
        assert!(d.contains("object agg"));
        assert!(d.contains("BSO"));
    }

    #[test]
    fn precondition_may_read_meta_and_headers_but_not_vars() {
        use crate::instr::{CmpOp, Guard, Predicate};
        let mut p = sample();
        p.precondition = Some(Guard::single(Predicate::new(
            Operand::Meta("inc_user".into()),
            CmpOp::Eq,
            Operand::int(7),
        )));
        assert_eq!(p.validate(), Ok(()));
        assert!(p.dump().contains("precondition: meta.inc_user == 7"));

        p.precondition =
            Some(Guard::single(Predicate::new(Operand::var("x"), CmpOp::Eq, Operand::int(1))));
        assert_eq!(
            p.validate(),
            Err(IrError::UndefinedVariable { var: "x".into(), instr: 0 }),
            "a variable can never be defined before the precondition runs"
        );
    }
}
