//! State-profile analysis: choose a tenant's [`ShardingMode`] from its
//! deployed IR.
//!
//! The runtime can spread a single tenant's flows across every engine shard
//! ([`ShardingMode::ByFlow`]) — but only when that cannot tear the tenant's
//! inter-packet state apart.  The answer comes from the shared taint engine
//! in `clickinc_ir::analysis::taint`: [`state_profile`] walks the
//! deployment's snippets tracking which packet header fields every value is
//! derived from, records every stateful access's key fields, classifies
//! every mutation as commutative or not, and notes the first reason (if any)
//! the tenant must stay on one shard.  This module merely maps the engine's
//! [`ShardingDecision`] onto the runtime's [`ShardingMode`]:
//!
//! * [`ShardingDecision::Stateless`] — no inter-packet state at all: hash
//!   the full flow identity ([`ShardingMode::ByFlow`] with empty key).
//! * [`ShardingDecision::ByKey`] — every stateful access is keyed by (at
//!   least) the common fields, and every mutation merges commutatively
//!   (counter sums, Bloom ORs): flow-shard on those fields.
//! * [`ShardingDecision::Pinned`] — register/table overwrites, deletes,
//!   clears, `randint`, constant/tainted indices, or disjoint key sets:
//!   fall back to [`ShardingMode::ByTenant`], which is always safe.
//!
//! The verifier's non-commutative-mutation pass consumes the *same*
//! [`state_profile`], so the runtime's sharding decision and the verifier's
//! classification can never disagree.
//!
//! On the provider templates: the KVS cache program (read-only exact-match
//! cache, hit counters, heavy-hitter CMS, Bloom marker — every access keyed
//! by `hdr.key`, every mutation commutative) flow-shards on `key`; MLAgg
//! pins to `ByTenant` because its aggregation registers are *overwritten*
//! through a lossy hash-modulo slot — two rounds on different shards can
//! collide on one slot, and no merge of the torn registers reproduces the
//! shared store.

use clickinc_ir::analysis::taint::{state_profile, ShardingDecision};
use clickinc_ir::IrProgram;
use clickinc_runtime::{ShardingMode, TenantHop};

/// Derive the sharding mode for a deployment's hop list; see the
/// [module docs](self) for the analysis.
pub fn sharding_mode_for(hops: &[TenantHop]) -> ShardingMode {
    let snippets: Vec<&IrProgram> = hops.iter().flat_map(|hop| hop.snippets.iter()).collect();
    match state_profile(&snippets).sharding_decision() {
        ShardingDecision::Stateless => ShardingMode::ByFlow { key_fields: Vec::new() },
        ShardingDecision::ByKey(key_fields) => ShardingMode::ByFlow { key_fields },
        ShardingDecision::Pinned(_) => ShardingMode::ByTenant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_device::DeviceModel;
    use clickinc_frontend::compile_source;
    use clickinc_lang::templates::{kvs_template, mlagg_template, KvsParams, MlAggParams};
    use clickinc_synthesis::isolate_user_program;

    fn hops_for(source: &str, user: &str) -> Vec<TenantHop> {
        let ir = compile_source(user, source).expect("compiles");
        vec![TenantHop {
            device: "tor0".to_string(),
            model: DeviceModel::tofino(),
            snippets: vec![isolate_user_program(&ir, user, 1)],
        }]
    }

    #[test]
    fn kvs_flow_shards_on_the_request_key() {
        let t = kvs_template("kvs0", KvsParams::default());
        let mode = sharding_mode_for(&hops_for(&t.source, "kvs0"));
        assert_eq!(mode, ShardingMode::ByFlow { key_fields: vec!["key".to_string()] });
    }

    #[test]
    fn mlagg_register_overwrites_pin_it_to_one_shard() {
        // the aggregation registers are overwritten through a lossy
        // hash-modulo slot: two rounds colliding on a slot from different
        // shards would tear the cell, so the profile must refuse ByFlow
        let t = mlagg_template(
            "agg0",
            MlAggParams { dims: 4, num_workers: 2, num_aggregators: 64, is_float: false },
        );
        let mode = sharding_mode_for(&hops_for(&t.source, "agg0"));
        assert_eq!(mode, ShardingMode::ByTenant);
    }

    #[test]
    fn fig13_programs_keep_their_sharding_modes() {
        // regression lock for the port onto the shared taint engine: the
        // fig13-scale templates must classify exactly as before — KVS
        // flow-shards on `key`, MLAgg pins to one shard
        let kvs = kvs_template("kvs_srv", KvsParams { cache_depth: 2000, ..Default::default() });
        assert_eq!(
            sharding_mode_for(&hops_for(&kvs.source, "kvs_srv")),
            ShardingMode::ByFlow { key_fields: vec!["key".to_string()] }
        );
        let mlagg = mlagg_template(
            "mlagg",
            MlAggParams { dims: 32, num_workers: 4, num_aggregators: 4096, is_float: false },
        );
        assert_eq!(sharding_mode_for(&hops_for(&mlagg.source, "mlagg")), ShardingMode::ByTenant);
    }

    #[test]
    fn stateless_programs_flow_shard_on_the_full_flow_identity() {
        let mode = sharding_mode_for(&hops_for("forward()\n", "fwd0"));
        assert_eq!(mode, ShardingMode::ByFlow { key_fields: Vec::new() });
    }

    #[test]
    fn snippetless_hops_are_stateless() {
        let hops = vec![TenantHop {
            device: "tor0".into(),
            model: DeviceModel::tofino(),
            snippets: vec![],
        }];
        assert_eq!(sharding_mode_for(&hops), ShardingMode::ByFlow { key_fields: Vec::new() });
    }

    #[test]
    fn global_counters_pin_a_tenant_to_one_shard() {
        // a constant-indexed counter is shared by every packet of the tenant
        let source = "ctr = Array(row=1, size=4, w=32)\ncount(ctr, 0, 1)\nforward()\n";
        assert_eq!(sharding_mode_for(&hops_for(source, "ctr0")), ShardingMode::ByTenant);
    }

    #[test]
    fn header_rewrites_cannot_launder_a_constant_into_a_flow_key() {
        // rewriting hdr.key to a constant makes every packet hit ctr[0]; the
        // rewrite must not let the access masquerade as keyed by hdr.key
        let source = "ctr = Array(row=1, size=64, w=32)\n\
                      hdr.key = 0\n\
                      count(ctr, hdr.key, 1)\n\
                      forward()\n";
        assert_eq!(sharding_mode_for(&hops_for(source, "rw0")), ShardingMode::ByTenant);
    }

    #[test]
    fn back_rewrites_cannot_launder_a_constant_into_a_flow_key() {
        // back() rewrites the live packet before bouncing it; a later
        // (guarded) stateful access keyed by the rewritten field must not
        // classify as flow-keyed
        let source = "ctr = Array(row=1, size=64, w=32)\n\
                      if hdr.op == 1:\n\
                      \x20   back(hdr={key: 0})\n\
                      else:\n\
                      \x20   count(ctr, hdr.key, 1)\n\
                      forward()\n";
        assert_eq!(sharding_mode_for(&hops_for(source, "bk0")), ShardingMode::ByTenant);
    }

    #[test]
    fn register_overwrites_pin_a_tenant_to_one_shard() {
        // a keyed *overwrite* is not commutatively mergeable across shards
        let source = "reg = Array(row=1, size=64, w=32)\n\
                      write(reg, 0, hdr.key, hdr.seq)\n\
                      forward()\n";
        assert_eq!(sharding_mode_for(&hops_for(source, "wr0")), ShardingMode::ByTenant);
    }

    #[test]
    fn disjoint_state_keys_pin_a_tenant_to_one_shard() {
        // two stateful objects keyed by different fields: no single flow key
        // co-locates both objects' sharers
        let source = "a = Array(row=1, size=64, w=32)\n\
                      b = Array(row=1, size=64, w=32)\n\
                      count(a, hdr.key, 1)\n\
                      count(b, hdr.seq, 1)\n\
                      forward()\n";
        assert_eq!(sharding_mode_for(&hops_for(source, "dj0")), ShardingMode::ByTenant);
    }
}
