//! FNV-1a over explicit primitives.
//!
//! Kept in-tree so digests are stable across platforms and processes — std's
//! `DefaultHasher` makes no such guarantee.  The hasher lives at the IR layer
//! because every fingerprint in the system ultimately digests IR-level
//! material: the emulator's object stores, the runtime's tenant→shard hash,
//! the placement plans and the service requests all share this one digest.

/// FNV-1a over explicit primitives; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    /// Start a hash at the FNV-1a offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Mix in a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Mix in a string, length-delimited so concatenations don't collide.
    pub fn write_str(&mut self, s: &str) {
        for byte in s.bytes() {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.write_u64(s.len() as u64);
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_deterministic_and_length_delimited() {
        let digest = |parts: &[&str]| {
            let mut h = Fnv::new();
            for p in parts {
                h.write_str(p);
            }
            h.finish()
        };
        assert_eq!(digest(&["ab", "c"]), digest(&["ab", "c"]));
        assert_ne!(digest(&["ab", "c"]), digest(&["a", "bc"]), "length-delimited");
        assert_ne!(digest(&["ab"]), digest(&["ab", ""]));
    }
}
