//! Provider-supplied templates (paper §4.1 "Template", Appendix A.1).
//!
//! ClickINC ships templates for the three evaluated applications — key-value
//! store (KVS, Fig. 15), ML gradient aggregation (MLAgg, Fig. 16) and SQL
//! DISTINCT acceleration (DQAcc) — plus the count-min-sketch module program used
//! as the running example in Fig. 1 and the sparse-gradient aggregation *user*
//! program of Fig. 7 that extends the MLAgg template.
//!
//! Each generator takes the template parameters that a configuration profile
//! would set (depths, dimensions, worker counts, ...) and returns ClickINC
//! source text that the frontend compiles like any user program.  Because the
//! sources are ordinary strings they are also what the Table 1 lines-of-code
//! benchmark measures.

use crate::profile::Profile;
use std::collections::BTreeMap;
use std::fmt;

/// The provider template catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemplateKind {
    /// In-network key-value cache (NetCache-style).
    Kvs,
    /// ML gradient aggregation (SwitchML/ATP-style).
    MlAgg,
    /// SQL DISTINCT acceleration with a rolling cache.
    DqAcc,
    /// The count-min sketch module of Fig. 1.
    CountMinSketch,
    /// The user-written sparse gradient aggregation of Fig. 7 (extends MLAgg).
    MlAggSparse,
}

impl TemplateKind {
    /// The template id used in profiles (`app` field).
    pub fn app_id(&self) -> &'static str {
        match self {
            TemplateKind::Kvs => "KVS",
            TemplateKind::MlAgg => "MLAgg",
            TemplateKind::DqAcc => "DQAcc",
            TemplateKind::CountMinSketch => "CMS",
            TemplateKind::MlAggSparse => "MLAggSparse",
        }
    }
}

impl fmt::Display for TemplateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.app_id())
    }
}

/// A template instance: its kind, the parameters it was instantiated with, and
/// the generated ClickINC source.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    /// Which template.
    pub kind: TemplateKind,
    /// Instance name (also the user/program id used for isolation).
    pub name: String,
    /// Parameters used to generate the source.
    pub params: BTreeMap<String, i64>,
    /// The ClickINC source text.
    pub source: String,
}

impl Template {
    /// Lines of code of the instance source, counted as in Table 1.
    pub fn lines_of_code(&self) -> usize {
        crate::lines_of_code(&self.source)
    }

    /// Instantiate a template from a profile, using the profile's constraints to
    /// pick parameters and falling back to the defaults of Appendix A / §7.3.
    pub fn from_profile(name: &str, profile: &Profile) -> Option<Template> {
        match profile.app.as_str() {
            "KVS" => {
                let depth = profile.performance.min_of("content").unwrap_or(5000.0) as u32;
                Some(kvs_template(name, KvsParams { cache_depth: depth, ..KvsParams::default() }))
            }
            "MLAgg" => {
                let depth = profile.performance.min_of("depth").unwrap_or(5000.0) as u32;
                let dims = profile.performance.min_of("dims").unwrap_or(24.0) as u32;
                Some(mlagg_template(
                    name,
                    MlAggParams {
                        num_aggregators: depth,
                        dims,
                        is_float: profile.performance.flag("is_float"),
                        ..MlAggParams::default()
                    },
                ))
            }
            "DQAcc" => {
                let depth = profile.performance.min_of("c_depth").unwrap_or(5000.0) as u32;
                let len = profile.performance.min_of("c_len").unwrap_or(8.0) as u32;
                Some(dqacc_template(name, DqAccParams { depth, ways: len }))
            }
            _ => None,
        }
    }
}

/// Parameters of the KVS template (paper §7.3: 5K-entry cache, 128-bit key,
/// 16×32-bit value vector, 3×1K heavy hitter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvsParams {
    /// Cache depth (entries).
    pub cache_depth: u32,
    /// Key width in bits.
    pub key_bits: u16,
    /// Number of 32-bit value fields.
    pub value_dims: u32,
    /// Count-min sketch rows.
    pub cms_rows: u32,
    /// Count-min sketch columns per row.
    pub cms_cols: u32,
    /// Bloom filter bits.
    pub bloom_bits: u32,
    /// Heavy-hitter trigger threshold.
    pub threshold: u32,
}

impl Default for KvsParams {
    fn default() -> Self {
        KvsParams {
            cache_depth: 5000,
            key_bits: 128,
            value_dims: 16,
            cms_rows: 3,
            cms_cols: 1024,
            bloom_bits: 1024,
            threshold: 100,
        }
    }
}

/// Generate the KVS template (Fig. 15) for the given parameters.
pub fn kvs_template(name: &str, p: KvsParams) -> Template {
    let mut src = String::new();
    src.push_str("from Funclib import *\n");
    src.push_str("REQUEST = 1\nREPLY = 2\nUPDATE = 3\n");
    src.push_str(&format!("TH = {}\n", p.threshold));
    src.push_str(&format!(
        "cache = Table(type=\"exact\", key_bits={}, val_bits={}, depth={})\n",
        p.key_bits,
        32 * p.value_dims,
        p.cache_depth
    ));
    src.push_str(&format!("hits = Array(row=1, size={}, w=32)\n", p.cache_depth));
    src.push_str(&format!(
        "cms = Sketch(type=\"count-min\", rows={}, cols={}, w=32)\n",
        p.cms_rows, p.cms_cols
    ));
    src.push_str(&format!(
        "bf = Sketch(type=\"bloom-filter\", rows=1, cols={}, w=1)\n",
        p.bloom_bits
    ));
    src.push_str(&format!("hidx = Hash(type=\"crc_16\", key=hdr.key, ceil={})\n", p.cache_depth));
    src.push_str("if hdr.op == REQUEST:\n");
    src.push_str("    vals = get(cache, hdr.key)\n");
    src.push_str("    if vals != None:\n");
    src.push_str("        slot = get(hidx, hdr.key)\n");
    src.push_str("        count(hits, slot, 1)\n");
    src.push_str("        back(hdr={op: REPLY, vals: vals})\n");
    src.push_str("    else:\n");
    src.push_str("        count(cms, hdr.key, 1)\n");
    src.push_str("        if get(cms, hdr.key) > TH:\n");
    src.push_str("            write(bf, hdr.key, 1)\n");
    src.push_str("            copyto(\"CPU\", hdr.key)\n");
    src.push_str("        forward()\n");
    // Cache updates are installed through the control plane (as in NetCache):
    // the data plane reports the key/value to the CPU and forwards the packet,
    // keeping the cache table a stateless exact-match object that ASIC targets
    // (class BEM) can host.
    src.push_str("elif hdr.op == UPDATE:\n");
    src.push_str("    copyto(\"CPU\", hdr.key, hdr.vals)\n");
    src.push_str("    forward()\n");
    src.push_str("else:\n");
    src.push_str("    forward()\n");
    let mut params = BTreeMap::new();
    params.insert("cache_depth".into(), i64::from(p.cache_depth));
    params.insert("key_bits".into(), i64::from(p.key_bits));
    params.insert("value_dims".into(), i64::from(p.value_dims));
    params.insert("cms_rows".into(), i64::from(p.cms_rows));
    params.insert("cms_cols".into(), i64::from(p.cms_cols));
    params.insert("bloom_bits".into(), i64::from(p.bloom_bits));
    params.insert("threshold".into(), i64::from(p.threshold));
    Template { kind: TemplateKind::Kvs, name: name.to_string(), params, source: src }
}

/// Parameters of the MLAgg template (paper §7.3: 5K aggregators, 24×32-bit
/// integer parameter vector).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlAggParams {
    /// Number of aggregator slots.
    pub num_aggregators: u32,
    /// Number of workers per job.
    pub num_workers: u32,
    /// Parameter vector dimensions carried per packet.
    pub dims: u32,
    /// Whether the parameters are floating point (requires conversion or a
    /// float-capable device).
    pub is_float: bool,
}

impl Default for MlAggParams {
    fn default() -> Self {
        MlAggParams { num_aggregators: 5000, num_workers: 4, dims: 24, is_float: false }
    }
}

/// Generate the MLAgg template (Fig. 16) for the given parameters.
pub fn mlagg_template(name: &str, p: MlAggParams) -> Template {
    let mut src = String::new();
    let dims = p.dims;
    src.push_str("from Funclib import *\n");
    src.push_str("ACK = 1\nUPDATE = 0\nREQ = 2\n");
    src.push_str(&format!("NUM_AGG = {}\n", p.num_aggregators));
    src.push_str(&format!("NUM_WORKER = {}\n", p.num_workers));
    src.push_str(&format!("DIM = {dims}\n"));
    src.push_str(&format!("agg_seq_t = Array(row=1, size={}, w=32)\n", p.num_aggregators));
    src.push_str(&format!(
        "bitmap_t = Array(row=1, size={}, w={})\n",
        p.num_aggregators, p.num_workers
    ));
    src.push_str(&format!("agg_data_t = Array(row={dims}, size={}, w=32)\n", p.num_aggregators));
    src.push_str(&format!("valid_t = Array(row=1, size={}, w=1)\n", p.num_aggregators));
    src.push_str(&format!(
        "hash_f = Hash(type=\"crc_16\", key=hdr.seq, ceil={})\n",
        p.num_aggregators
    ));
    // The aggregator slots of `agg_data_t` are addressed as (dimension row,
    // hashed index); each row is an independent register array, which is what
    // lets the placement engine split the parameter vector across devices when
    // one switch's memory or SALU budget is insufficient (paper §2.1: "to
    // aggregate the ML parameter with 64 integers in a packet, at least two
    // Tofino switches are needed").
    src.push_str("index = get(hash_f, hdr.seq)\n");
    src.push_str("seq = get(agg_seq_t, 0, index)\n");
    src.push_str("isvalid = get(valid_t, 0, index)\n");
    src.push_str("bitmap = get(bitmap_t, 0, index)\n");
    src.push_str("FULL = (1 << NUM_WORKER) - 1\n");
    src.push_str("if hdr.op == ACK:\n");
    src.push_str("    if isvalid == 1 and seq == hdr.seq:\n");
    src.push_str("        write(valid_t, 0, index, 0)\n");
    src.push_str("    forward()\n");
    src.push_str("else:\n");
    src.push_str("    if isvalid == 0 and hdr.overflow == 0:\n");
    src.push_str("        write(agg_seq_t, 0, index, hdr.seq)\n");
    src.push_str("        write(bitmap_t, 0, index, hdr.bitmap)\n");
    src.push_str("        for d in range(DIM):\n");
    src.push_str("            write(agg_data_t, d, index, hdr.data[d])\n");
    src.push_str("        write(valid_t, 0, index, 1)\n");
    src.push_str("        drop()\n");
    src.push_str("    elif seq == hdr.seq and bitmap & hdr.bitmap == 0:\n");
    if p.is_float {
        src.push_str("        for d in range(DIM):\n");
        src.push_str("            vals = get(agg_data_t, d, index)\n");
        src.push_str("            news = fadd(vals, hdr.data[d])\n");
        src.push_str("            if news < 0:\n");
        src.push_str("                mirror(hdr={overflow: 1})\n");
        src.push_str("            write(agg_data_t, d, index, news)\n");
        src.push_str("            hdr.data[d] = news\n");
    } else {
        src.push_str("        for d in range(DIM):\n");
        src.push_str("            vals = get(agg_data_t, d, index)\n");
        src.push_str("            news = vals + hdr.data[d]\n");
        src.push_str("            write(agg_data_t, d, index, news)\n");
        src.push_str("            hdr.data[d] = news\n");
    }
    src.push_str("        new_bit = bitmap | hdr.bitmap\n");
    src.push_str("        if new_bit == FULL:\n");
    src.push_str("            write(valid_t, 0, index, 0)\n");
    src.push_str("            back(hdr={op: REQ, bitmap: new_bit})\n");
    src.push_str("        else:\n");
    src.push_str("            write(bitmap_t, 0, index, new_bit)\n");
    src.push_str("            drop()\n");
    src.push_str("    else:\n");
    src.push_str("        forward()\n");
    let mut params = BTreeMap::new();
    params.insert("num_aggregators".into(), i64::from(p.num_aggregators));
    params.insert("num_workers".into(), i64::from(p.num_workers));
    params.insert("dims".into(), i64::from(p.dims));
    params.insert("is_float".into(), i64::from(p.is_float));
    Template { kind: TemplateKind::MlAgg, name: name.to_string(), params, source: src }
}

/// Parameters of the DQAcc (SQL DISTINCT acceleration) template
/// (paper §7.3: 5K×8 rolling cache of 32-bit values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DqAccParams {
    /// Rolling cache depth (number of hash buckets).
    pub depth: u32,
    /// Associativity (ways per bucket).
    pub ways: u32,
}

impl Default for DqAccParams {
    fn default() -> Self {
        DqAccParams { depth: 5000, ways: 8 }
    }
}

/// Generate the DQAcc template for the given parameters.
///
/// The template keeps a hash-indexed, `ways`-associative rolling cache of
/// recently seen values; a query whose value is already cached is filtered
/// (dropped) because the DISTINCT result already contains it, otherwise the
/// value is inserted (approximating LRU with a rolling replacement pointer) and
/// the packet is forwarded to the database server.
pub fn dqacc_template(name: &str, p: DqAccParams) -> Template {
    let mut src = String::new();
    src.push_str("from Funclib import *\n");
    src.push_str(&format!("DEPTH = {}\n", p.depth));
    src.push_str(&format!("WAYS = {}\n", p.ways));
    src.push_str(&format!("cache = Array(row={}, size={}, w=32)\n", p.ways, p.depth));
    src.push_str(&format!("roller = Array(row=1, size={}, w=8)\n", p.depth));
    src.push_str(&format!("hidx = Hash(type=\"crc_16\", key=hdr.value, ceil={})\n", p.depth));
    src.push_str("slot = get(hidx, hdr.value)\n");
    src.push_str("found = 0\n");
    for w in 0..p.ways {
        src.push_str(&format!("v{w} = get(cache, {w}, slot)\n"));
        src.push_str(&format!("if v{w} == hdr.value:\n"));
        src.push_str("    found = 1\n");
    }
    src.push_str("if found == 1:\n");
    src.push_str("    drop()\n");
    // WAYS is a power of two, so the rolling replacement pointer wraps with a
    // bit mask (class BIN) rather than a modulo, which Tofino/TD4 cannot run.
    src.push_str("else:\n");
    src.push_str("    way = count(roller, slot, 1)\n");
    src.push_str("    way = way & (WAYS - 1)\n");
    for w in 0..p.ways {
        src.push_str(&format!("    if way == {w}:\n"));
        src.push_str(&format!("        write(cache, {w}, slot, hdr.value)\n"));
    }
    src.push_str("    forward()\n");
    let mut params = BTreeMap::new();
    params.insert("depth".into(), i64::from(p.depth));
    params.insert("ways".into(), i64::from(p.ways));
    Template { kind: TemplateKind::DqAcc, name: name.to_string(), params, source: src }
}

/// Generate the count-min-sketch module program of Fig. 1.
pub fn count_min_sketch(name: &str, rows: u32, cols: u32) -> Template {
    let mut src = String::new();
    src.push_str(&format!("mem = Sketch(type=\"count-min\", rows={rows}, cols={cols}, w=32)\n"));
    src.push_str("vals = list()\n");
    src.push_str(&format!("for i in range({rows}):\n"));
    src.push_str("    vals.append(count(mem, hdr.key, 1))\n");
    src.push_str("relt = min(vals)\n");
    src.push_str("forward()\n");
    let mut params = BTreeMap::new();
    params.insert("rows".into(), i64::from(rows));
    params.insert("cols".into(), i64::from(cols));
    Template { kind: TemplateKind::CountMinSketch, name: name.to_string(), params, source: src }
}

/// Generate the sparse-gradient-aggregation user program of Fig. 7, which
/// detects all-zero blocks of the parameter vector, drops them, and hands the
/// dense remainder to an MLAgg template instance.
///
/// `block_num * block_size` must equal the MLAgg `dims` parameter.
pub fn mlagg_sparse_user(
    name: &str,
    mlagg: MlAggParams,
    block_num: u32,
    block_size: u32,
) -> Template {
    assert_eq!(block_num * block_size, mlagg.dims, "sparse blocks must tile the parameter vector");
    let mut src = String::new();
    src.push_str(&format!(
        "agg = MLAgg(row={}, dim={}, workers={}, is_convert={})\n",
        mlagg.num_aggregators,
        mlagg.dims,
        mlagg.num_workers,
        i32::from(mlagg.is_float)
    ));
    src.push_str(&format!("BLOCK_NUM = {block_num}\n"));
    src.push_str(&format!("BLOCK_SIZE = {block_size}\n"));
    src.push_str("for i in range(BLOCK_NUM):\n");
    src.push_str("    sparse = 1\n");
    src.push_str("    for j in range(BLOCK_SIZE):\n");
    src.push_str("        index = BLOCK_SIZE * i + j\n");
    src.push_str("        if hdr.data[index] != 0:\n");
    src.push_str("            sparse = 0\n");
    src.push_str("    if sparse == 1:\n");
    src.push_str("        for j in range(BLOCK_SIZE):\n");
    src.push_str("            index = BLOCK_SIZE * i + j\n");
    src.push_str("            del(hdr.data[index])\n");
    src.push_str("agg(hdr)\n");
    let mut params = BTreeMap::new();
    params.insert("block_num".into(), i64::from(block_num));
    params.insert("block_size".into(), i64::from(block_size));
    params.insert("dims".into(), i64::from(mlagg.dims));
    params.insert("num_aggregators".into(), i64::from(mlagg.num_aggregators));
    params.insert("num_workers".into(), i64::from(mlagg.num_workers));
    Template { kind: TemplateKind::MlAggSparse, name: name.to_string(), params, source: src }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::profile::example_kvs_profile;

    #[test]
    fn all_templates_parse() {
        let kvs = kvs_template("kvs_0", KvsParams::default());
        parse(&kvs.source).expect("KVS parses");
        let mlagg = mlagg_template("mlagg_0", MlAggParams::default());
        parse(&mlagg.source).expect("MLAgg parses");
        let mlagg_f =
            mlagg_template("mlagg_f", MlAggParams { is_float: true, ..Default::default() });
        parse(&mlagg_f.source).expect("float MLAgg parses");
        let dqacc = dqacc_template("dqacc_0", DqAccParams::default());
        parse(&dqacc.source).expect("DQAcc parses");
        let cms = count_min_sketch("cms_0", 3, 65536);
        parse(&cms.source).expect("CMS parses");
        let sparse = mlagg_sparse_user("sparse_0", MlAggParams::default(), 4, 6);
        parse(&sparse.source).expect("sparse MLAgg parses");
    }

    #[test]
    fn template_loc_is_in_the_tens_not_hundreds() {
        // Table 1 reports 16/56/13 LoC for KVS/MLAgg/DQAcc in ClickINC versus
        // hundreds for P4; our generated sources should stay the same order of
        // magnitude (template parameters add a few lines of constants).
        let kvs = kvs_template("kvs", KvsParams::default());
        assert!(kvs.lines_of_code() < 40, "KVS LoC = {}", kvs.lines_of_code());
        let mlagg = mlagg_template("mlagg", MlAggParams::default());
        assert!(mlagg.lines_of_code() < 70, "MLAgg LoC = {}", mlagg.lines_of_code());
        let dqacc = dqacc_template("dqacc", DqAccParams { depth: 5000, ways: 4 });
        assert!(dqacc.lines_of_code() < 40, "DQAcc LoC = {}", dqacc.lines_of_code());
        let cms = count_min_sketch("cms", 3, 65536);
        assert!(cms.lines_of_code() <= 8, "CMS LoC = {}", cms.lines_of_code());
    }

    #[test]
    fn params_are_recorded() {
        let t = kvs_template("kvs", KvsParams { cache_depth: 100_000, ..Default::default() });
        assert_eq!(t.params["cache_depth"], 100_000);
        assert!(t.source.contains("depth=100000"));
        let s = mlagg_sparse_user("s", MlAggParams { dims: 16, ..Default::default() }, 4, 4);
        assert_eq!(s.params["block_num"], 4);
    }

    #[test]
    #[should_panic(expected = "sparse blocks must tile")]
    fn sparse_blocks_must_tile_the_vector() {
        mlagg_sparse_user("bad", MlAggParams { dims: 10, ..Default::default() }, 3, 4);
    }

    #[test]
    fn from_profile_selects_and_sizes_the_template() {
        let t = Template::from_profile("kvs_0", &example_kvs_profile()).unwrap();
        assert_eq!(t.kind, TemplateKind::Kvs);
        assert_eq!(t.params["cache_depth"], 1000);
        let unknown = Profile::for_app("NotATemplate").build();
        assert!(Template::from_profile("x", &unknown).is_none());
    }

    #[test]
    fn template_kind_ids() {
        assert_eq!(TemplateKind::Kvs.app_id(), "KVS");
        assert_eq!(TemplateKind::MlAgg.to_string(), "MLAgg");
    }
}
