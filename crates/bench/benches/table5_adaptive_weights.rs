//! Table 5 — placement of seven program instances along pod0(a) → pod2(b) with
//! fixed vs adaptive objective weights.

use clickinc::Controller;
use clickinc_apps::table5_requests;
use clickinc_topology::Topology;

fn run(label: &str, mut controller: Controller) {
    println!("-- {label} weights --");
    println!("{:<8} {:<46} {:>12}", "Program", "Devices (instructions)", "Remaining r");
    for request in table5_requests() {
        let user = request.user.clone();
        match controller.deploy(request) {
            Ok(d) => {
                let detail: Vec<String> = d
                    .plan
                    .assignments
                    .iter()
                    .filter(|a| !a.is_empty())
                    .map(|a| format!("{}({})", a.device, a.instrs.len()))
                    .collect();
                println!(
                    "{:<8} {:<46} {:>12.3}",
                    user,
                    truncate(&detail.join(":"), 46),
                    controller.remaining_resource_ratio()
                );
            }
            Err(_) => println!(
                "{user:<8} {:<46} {:>12.3}",
                "/ (cannot be placed)",
                controller.remaining_resource_ratio()
            ),
        }
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

fn main() {
    println!("== Table 5: placement results with fixed vs adaptive weights ==");
    run("fixed", Controller::new(Topology::emulation_topology_all_tofino()).with_fixed_weights());
    println!();
    run("adaptive", Controller::new(Topology::emulation_topology_all_tofino()));
    println!("(paper: adaptive weights concentrate later programs on fewer devices, letting MLAgg2 still fit)");
}
