//! Value types and runtime values.
//!
//! The IR is statically typed with a small set of types mirroring the ClickINC
//! grammar (Fig. 5 / Fig. 17 of the paper): fixed-width bit vectors, signed
//! integers, floating-point values and booleans.  The same [`Value`] enum is also
//! used by the data-plane emulator so that compiled programs can be executed
//! without an additional translation layer.

use std::fmt;

/// Static type of a variable, header field or object cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// A fixed-width bit vector (`bit<w>` in the IR syntax).
    Bit(u16),
    /// A signed integer (lowered to `bit<32>` or `bit<64>` by the backends).
    Int,
    /// An IEEE-754 double; only supported by FPGA/NFP class devices (class BCA).
    Float,
    /// A single-bit boolean.
    Bool,
}

impl ValueType {
    /// Bit width occupied by this type in the packet header vector / registers.
    pub fn width_bits(&self) -> u16 {
        match self {
            ValueType::Bit(w) => *w,
            ValueType::Int => 32,
            ValueType::Float => 32,
            ValueType::Bool => 1,
        }
    }

    /// Whether this type requires floating-point capability (class BCA).
    pub fn is_float(&self) -> bool {
        matches!(self, ValueType::Float)
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Bit(w) => write!(f, "bit<{w}>"),
            ValueType::Int => write!(f, "int"),
            ValueType::Float => write!(f, "float"),
            ValueType::Bool => write!(f, "bool"),
        }
    }
}

/// A runtime value, used by the constant folder in the frontend and by the
/// data-plane emulator when interpreting placed IR snippets.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer (also used for bit vectors up to 64 bits).
    Int(i64),
    /// Floating-point value.
    Float(f64),
    /// Boolean value.
    Bool(bool),
    /// Opaque byte string (wide keys such as the 128-bit KVS key).
    Bytes(Vec<u8>),
    /// Absence of a value (e.g. a table miss).
    None,
}

impl Value {
    /// Interpret the value as an integer, coercing booleans and truncating floats.
    ///
    /// Returns `None` for [`Value::None`] and [`Value::Bytes`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Bytes(_) | Value::None => None,
        }
    }

    /// Interpret the value as a float.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Bytes(_) | Value::None => None,
        }
    }

    /// Truthiness used by guards: zero, `false`, empty bytes and `None` are false.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Bool(b) => *b,
            Value::Bytes(b) => !b.is_empty(),
            Value::None => false,
        }
    }

    /// Whether this is [`Value::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, Value::None)
    }

    /// Build a value of the requested type from an integer, masking to the
    /// type's width for bit vectors.
    pub fn from_int_as(ty: ValueType, v: i64) -> Value {
        match ty {
            ValueType::Bit(w) if w < 64 => Value::Int(v & ((1i64 << w) - 1)),
            ValueType::Bit(_) | ValueType::Int => Value::Int(v),
            ValueType::Float => Value::Float(v as f64),
            ValueType::Bool => Value::Bool(v != 0),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Bytes(b) => write!(f, "0x{}", hex(b)),
            Value::None => write!(f, "None"),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_of_types() {
        assert_eq!(ValueType::Bit(128).width_bits(), 128);
        assert_eq!(ValueType::Int.width_bits(), 32);
        assert_eq!(ValueType::Bool.width_bits(), 1);
        assert!(ValueType::Float.is_float());
        assert!(!ValueType::Int.is_float());
    }

    #[test]
    fn value_coercions() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Float(2.9).as_int(), Some(2));
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::None.as_int(), None);
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Bytes(vec![1]).as_float(), None);
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(1).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::None.is_truthy());
        assert!(Value::Bytes(vec![0]).is_truthy());
        assert!(!Value::Bytes(vec![]).is_truthy());
    }

    #[test]
    fn from_int_masks_to_width() {
        assert_eq!(Value::from_int_as(ValueType::Bit(8), 0x1ff), Value::Int(0xff));
        assert_eq!(Value::from_int_as(ValueType::Bool, 2), Value::Bool(true));
        assert_eq!(Value::from_int_as(ValueType::Float, 2), Value::Float(2.0));
        assert_eq!(Value::from_int_as(ValueType::Bit(64), -1), Value::Int(-1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ValueType::Bit(16).to_string(), "bit<16>");
        assert_eq!(Value::Bytes(vec![0xab, 0x01]).to_string(), "0xab01");
        assert_eq!(Value::None.to_string(), "None");
    }
}
