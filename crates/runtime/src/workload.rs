//! Open-loop, seeded workload generators.
//!
//! A workload is an iterator of `(tenant, virtual arrival time, packet)`
//! triples.  Generators are *open-loop*: packet `i` arrives at
//! `i / rate_pps` seconds on the workload's virtual clock regardless of how
//! fast the engine drains it, which is how serving systems are actually
//! loaded (and what makes goodput well-defined without wall clocks).  Every
//! generator is seeded, so a fixed seed produces a byte-identical packet
//! stream — the foundation of the shard-count invariance and
//! zero-disruption tests.

use clickinc_emulator::packet::{gradient_packet, kvs_request, Packet};
use clickinc_emulator::ZipfSampler;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;

/// One generated packet with its open-loop arrival time.
#[derive(Debug, Clone)]
pub struct GeneratedPacket {
    /// Owning tenant (user id string).
    pub tenant: Arc<str>,
    /// Virtual arrival time in nanoseconds.
    pub vtime_ns: u64,
    /// The packet.
    pub packet: Packet,
}

/// A deterministic open-loop traffic source.
pub trait Workload: Send {
    /// The next packet, or `None` when the workload is exhausted.
    fn next_packet(&mut self) -> Option<GeneratedPacket>;
}

fn vtime(index: u64, rate_pps: f64) -> u64 {
    (index as f64 * 1e9 / rate_pps.max(1.0)).round() as u64
}

/// Configuration of a skewed KVS request stream.
#[derive(Debug, Clone)]
pub struct KvsWorkloadConfig {
    /// Tenant (user id string) owning the stream.
    pub tenant: String,
    /// Numeric user id carried in the INC header.
    pub user_id: i64,
    /// Key universe size.
    pub keys: usize,
    /// Zipf skew exponent (0 = uniform).
    pub skew: f64,
    /// Total requests to emit.
    pub requests: usize,
    /// Offered load in packets per second (virtual clock).
    pub rate_pps: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KvsWorkloadConfig {
    fn default() -> Self {
        KvsWorkloadConfig {
            tenant: "kvs".into(),
            user_id: 0,
            keys: 1000,
            skew: 1.1,
            requests: 2000,
            rate_pps: 1_000_000.0,
            seed: 11,
        }
    }
}

/// Zipf-skewed KVS GET stream (the NetCache-style workload of §7.2).
pub struct KvsWorkload {
    tenant: Arc<str>,
    user_id: i64,
    zipf: ZipfSampler,
    rng: StdRng,
    rate_pps: f64,
    remaining: usize,
    emitted: u64,
}

impl KvsWorkload {
    /// Build the stream from its configuration.
    pub fn new(config: KvsWorkloadConfig) -> KvsWorkload {
        KvsWorkload {
            tenant: config.tenant.into(),
            user_id: config.user_id,
            zipf: ZipfSampler::new(config.keys, config.skew),
            rng: StdRng::seed_from_u64(config.seed),
            rate_pps: config.rate_pps,
            remaining: config.requests,
            emitted: 0,
        }
    }
}

impl Workload for KvsWorkload {
    fn next_packet(&mut self) -> Option<GeneratedPacket> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let key = self.zipf.sample(&mut self.rng) as i64;
        let packet = kvs_request("client", "server", self.user_id, key);
        let generated = GeneratedPacket {
            tenant: Arc::clone(&self.tenant),
            vtime_ns: vtime(self.emitted, self.rate_pps),
            packet,
        };
        self.emitted += 1;
        Some(generated)
    }
}

/// Configuration of a sparse gradient-aggregation stream.
#[derive(Debug, Clone)]
pub struct MlAggWorkloadConfig {
    /// Tenant (user id string) owning the stream.
    pub tenant: String,
    /// Numeric user id carried in the INC header.
    pub user_id: i64,
    /// Number of workers contributing per round.
    pub workers: usize,
    /// Aggregation rounds (distinct sequence numbers).
    pub rounds: usize,
    /// Parameter-vector dimensions per packet.
    pub dims: usize,
    /// Fraction of `block_size`-aligned blocks that are entirely zero.
    pub sparsity: f64,
    /// Sparse block size.
    pub block_size: usize,
    /// Offered load in packets per second (virtual clock).
    pub rate_pps: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MlAggWorkloadConfig {
    fn default() -> Self {
        MlAggWorkloadConfig {
            tenant: "mlagg".into(),
            user_id: 0,
            workers: 4,
            rounds: 200,
            dims: 32,
            sparsity: 0.5,
            block_size: 8,
            rate_pps: 1_000_000.0,
            seed: 7,
        }
    }
}

/// Sparse gradient traffic: `workers` packets per round, round-major order,
/// with seeded zero blocks (the Fig. 13 workload).
pub struct MlAggWorkload {
    tenant: Arc<str>,
    config: MlAggWorkloadConfig,
    rng: StdRng,
    round: usize,
    worker: usize,
    emitted: u64,
}

impl MlAggWorkload {
    /// Build the stream from its configuration.
    pub fn new(config: MlAggWorkloadConfig) -> MlAggWorkload {
        MlAggWorkload {
            tenant: config.tenant.clone().into(),
            rng: StdRng::seed_from_u64(config.seed),
            config,
            round: 0,
            worker: 0,
            emitted: 0,
        }
    }
}

impl Workload for MlAggWorkload {
    fn next_packet(&mut self) -> Option<GeneratedPacket> {
        if self.round >= self.config.rounds {
            return None;
        }
        let c = &self.config;
        let mut values = vec![0i64; c.dims];
        let blocks = c.dims.div_ceil(c.block_size.max(1));
        for b in 0..blocks {
            let zero_block = self.rng.gen_bool(c.sparsity.clamp(0.0, 1.0));
            let end = ((b + 1) * c.block_size).min(c.dims);
            for value in &mut values[b * c.block_size..end] {
                *value = if zero_block { 0 } else { self.rng.gen_range(1..100) };
            }
        }
        let packet = gradient_packet(
            "worker",
            "ps",
            c.user_id,
            self.round as i64,
            self.worker,
            c.dims,
            &values,
        );
        let generated = GeneratedPacket {
            tenant: Arc::clone(&self.tenant),
            vtime_ns: vtime(self.emitted, c.rate_pps),
            packet,
        };
        self.emitted += 1;
        self.worker += 1;
        if self.worker >= c.workers {
            self.worker = 0;
            self.round += 1;
        }
        Some(generated)
    }
}

/// A multi-tenant profile: several workloads interleaved round-robin, each
/// keeping its own virtual clock and seed.  The interleaving is
/// deterministic, and — because tenants are isolated — each tenant's
/// per-packet results are independent of how the others are interleaved.
pub struct MixedWorkload {
    parts: Vec<Box<dyn Workload>>,
    cursor: usize,
}

impl MixedWorkload {
    /// Interleave the given workloads.
    pub fn new(parts: Vec<Box<dyn Workload>>) -> MixedWorkload {
        MixedWorkload { parts, cursor: 0 }
    }
}

impl Workload for MixedWorkload {
    fn next_packet(&mut self) -> Option<GeneratedPacket> {
        for _ in 0..self.parts.len() {
            let idx = self.cursor % self.parts.len();
            self.cursor += 1;
            if let Some(p) = self.parts[idx].next_packet() {
                return Some(p);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_ir::Value;

    fn drain(mut w: impl Workload) -> Vec<GeneratedPacket> {
        let mut out = Vec::new();
        while let Some(p) = w.next_packet() {
            out.push(p);
        }
        out
    }

    #[test]
    fn kvs_stream_is_deterministic_and_open_loop() {
        let cfg = KvsWorkloadConfig { requests: 50, rate_pps: 1e9, ..Default::default() };
        let a = drain(KvsWorkload::new(cfg.clone()));
        let b = drain(KvsWorkload::new(cfg));
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.packet, y.packet);
            assert_eq!(x.vtime_ns, y.vtime_ns);
        }
        // 1 Gpps → 1 ns spacing
        assert_eq!(a[1].vtime_ns - a[0].vtime_ns, 1);
    }

    #[test]
    fn mlagg_stream_covers_rounds_and_workers() {
        let cfg = MlAggWorkloadConfig {
            workers: 3,
            rounds: 4,
            dims: 8,
            sparsity: 0.0,
            ..Default::default()
        };
        let pkts = drain(MlAggWorkload::new(cfg));
        assert_eq!(pkts.len(), 12);
        assert_eq!(pkts[0].packet.inc.get("seq"), Value::Int(0));
        assert_eq!(pkts[11].packet.inc.get("seq"), Value::Int(3));
        assert_eq!(pkts[1].packet.inc.get("bitmap"), Value::Int(2));
        // dense stream: every dimension populated
        assert!(matches!(pkts[0].packet.inc.get("data_0"), Value::Int(v) if v > 0));
    }

    #[test]
    fn mixed_profile_interleaves_tenants_deterministically() {
        let mk = || {
            MixedWorkload::new(vec![
                Box::new(KvsWorkload::new(KvsWorkloadConfig {
                    tenant: "a".into(),
                    requests: 5,
                    ..Default::default()
                })) as Box<dyn Workload>,
                Box::new(KvsWorkload::new(KvsWorkloadConfig {
                    tenant: "b".into(),
                    requests: 3,
                    seed: 99,
                    ..Default::default()
                })),
            ])
        };
        let pkts = drain(mk());
        assert_eq!(pkts.len(), 8);
        let tenants: Vec<&str> = pkts.iter().map(|p| &*p.tenant).collect();
        assert_eq!(tenants, vec!["a", "b", "a", "b", "a", "b", "a", "a"]);
        let again: Vec<i64> =
            drain(mk()).iter().map(|p| p.packet.inc.get("key").as_int().unwrap()).collect();
        let keys: Vec<i64> =
            pkts.iter().map(|p| p.packet.inc.get("key").as_int().unwrap()).collect();
        assert_eq!(keys, again);
    }
}
