//! # clickinc-synthesis — merging user programs with the base program
//!
//! Every device runs an operator-deployed *base program* (packet validation,
//! forwarding, telemetry).  ClickINC synthesizes the user snippets that
//! placement assigned to a device with that base program into one executable
//! (paper §6):
//!
//! * [`isolation`] — per-user renaming of variables and objects plus the
//!   user-ID traffic match so that two tenants deploying the same template never
//!   share state or see each other's data (the Count-Min-Sketch collision
//!   example of §2.2);
//! * [`base`] — a representative operator base program (parse / validate /
//!   forward) split into the *head* (functions the user snippets depend on,
//!   e.g. integrity checks) and the *tail* (functions that depend on the user
//!   snippets, e.g. the forwarding decision);
//! * [`merge`] — header-parse-tree merging and pipeline/RTC program merging
//!   (Fig. 10 / Algorithm 4): user snippets are spliced between the base head
//!   and tail, as early as possible;
//! * [`refine`] — the runtime data-plane refinement: step numbers for (possibly
//!   replicated) blocks and the `Param` field carrying shared temporaries
//!   between devices;
//! * [`incremental`] — the annotation-based incremental compilation: adding a
//!   user program annotates the instructions it contributes; removing one
//!   strips its annotation and lazily deletes instructions that no longer have
//!   any owner, without touching the other tenants (Table 6's comparison
//!   against monolithic redeployment).

pub mod base;
pub mod incremental;
pub mod isolation;
pub mod merge;
pub mod refine;

pub use base::base_program;
pub use incremental::{add_user_program, remove_user_program, DeploymentDelta};
pub use isolation::isolate_user_program;
pub use merge::{merge_parse_trees, merge_programs, ParseTree};
pub use refine::{assign_steps, param_field_bits, StepAssignment};
