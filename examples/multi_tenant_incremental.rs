//! Multi-tenant, dynamic INC-as-a-Service through the planner: several
//! users deploy programs onto the same network (each one planned as a
//! dry-run first — its JSON summary dumped for inspection — then gated by a
//! provider admission policy and committed), a poisoned batch demonstrates
//! the all-or-nothing rollback of `deploy_all`, and one tenant later
//! revokes its service (paper §7.3 Table 3 and §7.5 Table 6 workflows).
//!
//! Run with: `cargo run --example multi_tenant_incremental`

use clickinc::topology::Topology;
use clickinc::{ClickIncService, PolicyChain, ResourceFloor, ServiceRequest};
use clickinc_apps::table3_requests;

fn main() {
    println!("=== Multi-tenant incremental deployment over the Fig. 11 topology ===\n");
    let service = ClickIncService::new(Topology::emulation_topology_all_tofino())
        .expect("default engine config is valid");
    // provider policy: never let the network run below 5% free resources
    service
        .set_admission_policy(PolicyChain::new().with(ResourceFloor { min_remaining_ratio: 0.05 }));

    let planner = service.planner();
    for request in table3_requests() {
        let user = request.user.clone();
        // plan: a pure dry-run reporting devices, demand and predicted
        // ratio — dumped as JSON, the provider's audit record of the quote
        let plan = match planner.plan(&request) {
            Ok(plan) => plan,
            Err(e) => {
                println!("+ {user:<8} FAILED to plan: {e}");
                continue;
            }
        };
        let predicted = plan.predicted_remaining_ratio();
        println!(
            "{}",
            serde_json::to_string_pretty(&plan.summary()).expect("plan summary serializes")
        );
        // deploy: admission gate, book resources, install snippets, mirror
        // onto the engine.  The epoch has not moved since the dry-run, so
        // the planner's cache answers the re-plan without re-running
        // placement — watch the hit counter at the end.
        drop(plan);
        match planner.deploy(request) {
            Ok(tenant) => println!(
                "+ {:<8} (id {}) placed on {:<40} predicted remaining {:>5.1}% (exact: {})",
                user,
                tenant.numeric_id(),
                tenant.hops().iter().map(|h| h.device.as_str()).collect::<Vec<_>>().join(";"),
                predicted * 100.0,
                service.remaining_resource_ratio() == predicted,
            ),
            Err(e) => println!("+ {user:<8} FAILED to commit: {e}"),
        }
    }
    let stats = service.planner_stats();
    println!(
        "\nplanner cache: {} hit(s), {} miss(es), {} plan(s) cached",
        stats.cache_hits, stats.cache_misses, stats.cached_plans
    );
    println!("\nactive programs: {:?}", service.active_users());
    println!("remaining resources: {:.1}%", service.remaining_resource_ratio() * 100.0);

    // a poisoned batch: the last request names a host that does not exist,
    // so the whole batch rolls back — all-or-nothing
    let ratio_before = service.remaining_resource_ratio();
    let users_before = service.active_users().len();
    let batch = vec![
        ServiceRequest::builder("extra_kvs")
            .template(clickinc::lang::templates::kvs_template(
                "extra_kvs",
                clickinc::lang::templates::KvsParams { cache_depth: 1000, ..Default::default() },
            ))
            .from_("pod0a")
            .to("pod2b")
            .build()
            .expect("well-formed request"),
        ServiceRequest::builder("doomed")
            .source("forward()\n")
            .from_("not-a-host")
            .to("pod2b")
            .build()
            .expect("structurally valid, semantically doomed"),
    ];
    match service.deploy_all(batch) {
        Ok(_) => unreachable!("the poisoned batch cannot commit"),
        Err(e) => println!("\nbatch rejected as one unit: {e}"),
    }
    assert_eq!(service.remaining_resource_ratio(), ratio_before, "rollback is exact");
    assert_eq!(service.active_users().len(), users_before);
    println!(
        "rollback left {} tenants and {:.1}% resources untouched",
        users_before,
        ratio_before * 100.0
    );

    // one tenant leaves; only its own devices are touched
    let delta = service.remove("DQAcc1").expect("removal succeeds");
    println!(
        "\n- DQAcc1 removed: {} devices updated, {} other programs affected, {} pods saw traffic changes",
        delta.device_count(),
        delta.program_count(),
        delta.pod_count()
    );
    println!("active programs now: {:?}", service.active_users());
    println!("remaining resources: {:.1}%", service.remaining_resource_ratio() * 100.0);
}
