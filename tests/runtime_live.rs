//! End-to-end: deployments committed through the `ClickIncService` facade
//! are served by the sharded engine, survive live reconfiguration, and need
//! no manual hook or bridge wiring anywhere.

use clickinc::lang::templates::{kvs_template, mlagg_template, KvsParams, MlAggParams};
use clickinc::topology::Topology;
use clickinc::{ClickIncService, ServiceRequest, TenantHandle};
use clickinc_emulator::kvs_backend_value;
use clickinc_ir::Value;
use clickinc_runtime::workload::{KvsWorkload, KvsWorkloadConfig};
use clickinc_runtime::EngineConfig;

/// Pre-populate a deployed tenant's (isolation-renamed) cache through its
/// handle — the handle knows which hop hosts the table.
fn populate_cache(tenant: &TenantHandle, hot_keys: i64) {
    let table = format!("{}_cache", tenant.user());
    for key in 0..hot_keys {
        tenant.populate_table(
            &table,
            vec![Value::Int(key)],
            vec![Value::Int(kvs_backend_value(key))],
        );
    }
}

#[test]
fn the_service_serves_deployed_tenants_and_survives_live_reconfiguration() {
    let service = ClickIncService::with_config(
        Topology::emulation_topology_all_tofino(),
        EngineConfig { shards: 2, batch_size: 32, ..Default::default() },
    )
    .expect("engine config is valid");

    // two KVS tenants deploy through the facade; the commit mirrors them
    // onto the engine automatically
    let mut residents = Vec::new();
    for (user, srcs) in [("kvs_a", ["pod0a", "pod1a"]), ("kvs_b", ["pod0b", "pod1b"])] {
        let t = kvs_template(user, KvsParams { cache_depth: 2000, ..Default::default() });
        let request = ServiceRequest::builder(user)
            .template(t)
            .from_(srcs[0])
            .from_(srcs[1])
            .to("pod2b")
            .build()
            .expect("well-formed request");
        let tenant = service.deploy(request).expect("resident deploys");
        populate_cache(&tenant, 64);
        residents.push(tenant);
    }

    let workload = |tenant: &TenantHandle, requests, seed| {
        KvsWorkload::new(KvsWorkloadConfig {
            tenant: tenant.user().to_string(),
            user_id: tenant.numeric_id(),
            keys: 500,
            skew: 1.2,
            requests,
            rate_pps: 1_000_000.0,
            seed,
        })
    };
    let mut wl_a = workload(&residents[0], 1000, 5);
    let mut wl_b = workload(&residents[1], 1000, 6);

    // first traffic phase
    residents[0].run_workload(&mut wl_a, 500, 64);
    residents[1].run_workload(&mut wl_b, 500, 64);

    // a third tenant arrives mid-run and leaves again, all through the
    // service, while kvs_a/kvs_b keep flowing
    let t = mlagg_template(
        "agg_c",
        MlAggParams { dims: 8, num_aggregators: 1024, ..Default::default() },
    );
    let request = ServiceRequest::builder("agg_c")
        .template(t)
        .from_("pod1a")
        .from_("pod1b")
        .to("pod2a")
        .build()
        .expect("well-formed request");
    let transient = service.deploy(request).expect("transient deploys");
    residents[0].run_workload(&mut wl_a, 250, 64);
    residents[1].run_workload(&mut wl_b, 250, 64);
    transient.remove().expect("transient leaves cleanly");

    // final phase after the removal
    residents[0].run_workload(&mut wl_a, usize::MAX, 64);
    residents[1].run_workload(&mut wl_b, usize::MAX, 64);
    service.flush();

    let outcome = service.finish();
    for user in ["kvs_a", "kvs_b"] {
        let stats = outcome.telemetry.tenant(user).unwrap_or_else(|| panic!("{user} served"));
        assert_eq!(stats.packets, 1000, "{user} traffic all injected");
        assert_eq!(stats.completed, 1000, "{user} traffic all completed");
        assert!(stats.hit_ratio > 0.3, "{user} hot keys answered in-network: {}", stats.hit_ratio);
        assert!(stats.goodput_gbps > 0.0);
    }
    // the engine really saw the transient tenant
    assert!(outcome.telemetry.tenant("agg_c").is_some(), "the commit mirrored the deploy");
    // and the JSON export carries every tenant
    let json = outcome.telemetry.to_json();
    assert!(json.contains("\"kvs_a\"") && json.contains("\"agg_c\""));
}
