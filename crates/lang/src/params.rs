//! Learning-based template parameter setting (paper Appendix A.3, Eq. 4).
//!
//! The OBI abstraction hides devices from users, so a user cannot reasonably
//! choose resource-related parameters (cache depth, sketch width, aggregator
//! count).  ClickINC therefore "maintains historical records of given parameter
//! x and the performance y, and learns the performance estimation function
//! y = f(x)"; when a profile arrives with performance requirements, it searches
//! for the cheapest x whose estimated performance satisfies them.
//!
//! This module reproduces that mechanism end to end:
//!
//! 1. [`HistoryRecord`]s pair a parameter value with an observed performance
//!    metric (the emulator and benches can append real observations; the unit
//!    tests and the default model seed synthetic observations that follow the
//!    analytic behaviour of a Zipf-served cache / count-min sketch);
//! 2. [`PerformanceModel`] fits `y ≈ 1 − exp(−k·x/scale)` — a saturating curve
//!    capturing "more resource → diminishing performance gain" — by stochastic
//!    gradient descent on the records;
//! 3. [`recommend_parameter`] solves Eq. 4: minimize the resource consumption
//!    `g(x) = x` subject to every performance constraint `f_i(x) ≥ y_i`, by a
//!    monotone bisection over the fitted curve.

/// One observation: parameter value `x` (e.g. cache entries) and achieved
/// performance `y` in `[0, 1]` (e.g. hit ratio).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoryRecord {
    /// Parameter value.
    pub x: f64,
    /// Observed performance metric, normalized to `[0, 1]`.
    pub y: f64,
}

/// A fitted saturating performance curve `y = 1 − exp(−k·x / scale)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerformanceModel {
    /// Fitted rate constant.
    pub k: f64,
    /// Normalization scale (fixed to the largest observed x).
    pub scale: f64,
    /// Mean squared error on the training records after fitting.
    pub mse: f64,
}

impl PerformanceModel {
    /// Fit the model to history records with SGD.
    ///
    /// Returns `None` when fewer than two records are available.
    pub fn fit(records: &[HistoryRecord]) -> Option<PerformanceModel> {
        if records.len() < 2 {
            return None;
        }
        let scale = records.iter().map(|r| r.x).fold(f64::MIN, f64::max).max(1.0);
        let mut k: f64 = 1.0;
        let lr = 0.5;
        for epoch in 0..2000 {
            let mut grad = 0.0;
            for r in records {
                let xn = r.x / scale;
                let pred = 1.0 - (-k * xn).exp();
                let err = pred - r.y;
                // d pred / d k = xn * exp(-k*xn)
                grad += 2.0 * err * xn * (-k * xn).exp();
            }
            grad /= records.len() as f64;
            k -= lr * grad * (1.0 / (1.0 + epoch as f64 * 0.001));
            if !k.is_finite() || k <= 1e-6 {
                k = 1e-6;
            }
        }
        let mse = records
            .iter()
            .map(|r| {
                let pred = 1.0 - (-k * r.x / scale).exp();
                (pred - r.y).powi(2)
            })
            .sum::<f64>()
            / records.len() as f64;
        Some(PerformanceModel { k, scale, mse })
    }

    /// Predicted performance for parameter value `x`.
    pub fn predict(&self, x: f64) -> f64 {
        (1.0 - (-self.k * x / self.scale).exp()).clamp(0.0, 1.0)
    }

    /// Smallest `x` whose predicted performance reaches `target`
    /// (∞ if the model saturates below the target).
    pub fn min_x_for(&self, target: f64) -> f64 {
        if target >= 1.0 {
            return f64::INFINITY;
        }
        if target <= 0.0 {
            return 0.0;
        }
        // invert y = 1 - exp(-k x / scale)
        -(1.0 - target).ln() * self.scale / self.k
    }
}

/// Synthetic history for a Zipf(α≈0.99)-served cache: hit ratio grows with
/// cache size following a saturating law.  Used to seed the model when no real
/// observations exist yet (the paper's "pre-learned empirical estimation").
pub fn synthetic_cache_history(max_entries: u32, samples: usize) -> Vec<HistoryRecord> {
    let mut records = Vec::with_capacity(samples);
    for i in 1..=samples {
        let x = max_entries as f64 * i as f64 / samples as f64;
        // empirical saturating hit-rate curve for a skewed workload
        let y = 1.0 - (-3.0 * x / max_entries as f64).exp();
        records.push(HistoryRecord { x, y });
    }
    records
}

/// A single performance requirement: metric `f(x)` must reach `target`, where
/// the metric is estimated by `model`.
#[derive(Debug, Clone, Copy)]
pub struct Requirement {
    /// The fitted estimator for this metric.
    pub model: PerformanceModel,
    /// Required minimum value of the metric.
    pub target: f64,
}

/// Solve Eq. 4: find the minimum parameter value satisfying every requirement,
/// clamped to `[min_x, max_x]`.  Returns `None` if even `max_x` cannot satisfy
/// all requirements.
pub fn recommend_parameter(requirements: &[Requirement], min_x: f64, max_x: f64) -> Option<f64> {
    let mut needed = min_x;
    for req in requirements {
        let x = req.model.min_x_for(req.target);
        if !x.is_finite() {
            return None;
        }
        needed = needed.max(x);
    }
    if needed > max_x {
        None
    } else {
        Some(needed.max(min_x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_fits_a_saturating_curve() {
        let history = synthetic_cache_history(100_000, 40);
        let model = PerformanceModel::fit(&history).unwrap();
        assert!(model.mse < 0.01, "mse = {}", model.mse);
        // monotone increasing
        assert!(model.predict(10_000.0) < model.predict(50_000.0));
        assert!(model.predict(200_000.0) <= 1.0);
        assert!(model.predict(0.0) >= 0.0);
    }

    #[test]
    fn fitting_requires_at_least_two_records() {
        assert!(PerformanceModel::fit(&[]).is_none());
        assert!(PerformanceModel::fit(&[HistoryRecord { x: 1.0, y: 0.5 }]).is_none());
    }

    #[test]
    fn inverse_lookup_matches_prediction() {
        let history = synthetic_cache_history(100_000, 40);
        let model = PerformanceModel::fit(&history).unwrap();
        let x = model.min_x_for(0.7);
        assert!(x.is_finite());
        let y = model.predict(x);
        assert!((y - 0.7).abs() < 0.02, "predict(min_x_for(0.7)) = {y}");
        assert_eq!(model.min_x_for(0.0), 0.0);
        assert!(model.min_x_for(1.0).is_infinite());
    }

    #[test]
    fn recommendation_picks_the_binding_constraint() {
        let history = synthetic_cache_history(100_000, 40);
        let model = PerformanceModel::fit(&history).unwrap();
        let reqs = [Requirement { model, target: 0.5 }, Requirement { model, target: 0.9 }];
        let x = recommend_parameter(&reqs, 1000.0, 200_000.0).unwrap();
        // the 0.9 target dominates
        assert!((model.predict(x) - 0.9).abs() < 0.02);
        // lower bound respected
        let easy = [Requirement { model, target: 0.0001 }];
        assert_eq!(recommend_parameter(&easy, 1000.0, 200_000.0), Some(1000.0));
    }

    #[test]
    fn infeasible_requirements_are_reported() {
        let history = synthetic_cache_history(1000, 20);
        let model = PerformanceModel::fit(&history).unwrap();
        // target beyond what even max_x can reach
        let reqs = [Requirement { model, target: 0.99999 }];
        assert_eq!(recommend_parameter(&reqs, 10.0, 2000.0), None);
        let impossible = [Requirement { model, target: 1.0 }];
        assert_eq!(recommend_parameter(&impossible, 10.0, 1e12), None);
    }
}
