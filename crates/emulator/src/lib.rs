//! # clickinc-emulator — executing placed programs on an emulated data plane
//!
//! The paper evaluates ClickINC on a software emulation platform (vendor
//! behavioural models wired together with virtual NICs, §7.1) and on a small
//! hardware testbed.  Neither is available here, so this crate provides the
//! substitute described in DESIGN.md: a packet-level emulator that
//!
//! * interprets the *exact IR snippets* the compiler produced, with faithful
//!   stateful objects (register arrays, exact/ternary tables, count-min
//!   sketches, Bloom filters, rolling sequences) — [`state`] and [`interp`];
//! * carries packets with the ClickINC INC header (user id, step number, Param
//!   field, application fields) — [`packet`];
//! * pushes application workloads (ML gradient aggregation with optional
//!   sparsity, KVS request streams, SQL DISTINCT streams) along the device
//!   paths of a deployment and reports goodput, in-network latency and
//!   per-link byte counts — [`scenario`].
//!
//! The absolute numbers are those of a simulator, but the *mechanisms* that
//! produce the paper's Fig. 13 shape — traffic reduction from in-network
//! aggregation, payload shrinking from sparse-block removal, per-device
//! processing latency — are all modelled explicitly.

pub mod interp;
pub mod packet;
pub mod scenario;
pub mod state;
pub mod vm;
pub mod zipf;

pub use interp::{DevicePlane, ExecOutcome, PacketAction};
pub use packet::{IncHeader, Packet};
pub use scenario::{
    kvs_backend_value, run_aggregation_scenario, run_kvs_scenario, AggregationConfig,
    AggregationReport, KvsConfig, KvsReport, NetworkSetup,
};
pub use state::{Fnv, ObjectStore};
pub use vm::{CompiledImage, CompiledProgram, ExecMode};
pub use zipf::ZipfSampler;

#[cfg(test)]
mod proptests {
    use super::*;
    use clickinc_ir::Value;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Count-min sketch estimates never under-count.
        #[test]
        fn cms_never_undercounts(keys in proptest::collection::vec(0u32..50, 1..200)) {
            let mut store = ObjectStore::new();
            store.declare(&clickinc_ir::ObjectDecl::new("cms", clickinc_ir::ObjectKind::Sketch {
                kind: clickinc_ir::SketchKind::CountMin,
                rows: 3,
                cols: 64,
                width: 32,
            }));
            let mut truth = std::collections::BTreeMap::new();
            for k in &keys {
                store.sketch_count("cms", &Value::Int(i64::from(*k)), 1);
                *truth.entry(*k).or_insert(0i64) += 1;
            }
            for (k, count) in truth {
                let est = store.sketch_estimate("cms", &Value::Int(i64::from(k)));
                prop_assert!(est >= count, "estimate {est} < true count {count}");
            }
        }

        /// Bloom filters have no false negatives.
        #[test]
        fn bloom_has_no_false_negatives(keys in proptest::collection::vec(0u64..1000, 1..100)) {
            let mut store = ObjectStore::new();
            store.declare(&clickinc_ir::ObjectDecl::new("bf", clickinc_ir::ObjectKind::Sketch {
                kind: clickinc_ir::SketchKind::Bloom,
                rows: 3,
                cols: 1024,
                width: 1,
            }));
            for k in &keys {
                store.sketch_count("bf", &Value::Int(*k as i64), 1);
            }
            for k in &keys {
                prop_assert!(store.sketch_estimate("bf", &Value::Int(*k as i64)) > 0);
            }
        }
    }
}
