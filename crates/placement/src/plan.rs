//! Placement plans: the result of the placement algorithms.

use crate::network::PlacementNetwork;
use crate::objective::Weights;
use clickinc_blockdag::{BlockDag, BlockId};
use clickinc_device::DeviceKind;
use clickinc_ir::{classify_instruction, Fnv, IrProgram, Resource, ResourceVector};
use clickinc_topology::NodeId;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// The snippet assigned to one placement device (equivalence class).
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Placement-device name (EC label).
    pub device: String,
    /// Physical devices that will run the snippet (every EC member).
    pub members: Vec<NodeId>,
    /// Device family.
    pub kind: DeviceKind,
    /// Blocks assigned (in execution order).
    pub blocks: Vec<BlockId>,
    /// Instruction indices assigned (in program order).
    pub instrs: Vec<usize>,
    /// Stage assigned to each instruction (pipeline devices).
    pub stage_of: BTreeMap<usize, usize>,
    /// Number of pipeline stages used.
    pub stages_used: usize,
    /// Resource demand on one physical device.
    pub demand: ResourceVector,
    /// Range `[start, end)` of the block order covered by this assignment —
    /// this becomes the step-number range stamped into the INC header.
    pub step_range: (usize, usize),
}

impl Assignment {
    /// Number of instructions in the snippet.
    pub fn instruction_count(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the assignment actually carries program logic.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} instrs, {} stages, steps {}..{}",
            self.device,
            self.instrs.len(),
            self.stages_used,
            self.step_range.0,
            self.step_range.1
        )
    }
}

/// Errors from the placement algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// The program has no instructions.
    EmptyProgram,
    /// The network has no programmable device.
    EmptyNetwork,
    /// No assignment satisfying all constraints exists (the "/" entries of
    /// Table 5: the INC plugin cannot be placed on any device).
    NoFeasiblePlacement,
    /// The requested solver does not support this network shape
    /// (the SMT baseline only handles single-path chains).
    UnsupportedNetwork(String),
    /// The solver hit its exploration budget before finding a plan.
    BudgetExhausted,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::EmptyProgram => write!(f, "the program has no instructions"),
            PlacementError::EmptyNetwork => write!(f, "no programmable device available"),
            PlacementError::NoFeasiblePlacement => {
                write!(f, "no feasible placement satisfies the resource and capability constraints")
            }
            PlacementError::UnsupportedNetwork(msg) => write!(f, "unsupported network: {msg}"),
            PlacementError::BudgetExhausted => {
                write!(f, "solver budget exhausted before a plan was found")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// A complete placement plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPlan {
    /// Name of the placed program.
    pub program: String,
    /// Per-device assignments, ordered along the traffic direction
    /// (client leaves towards the destination).
    pub assignments: Vec<Assignment>,
    /// Objective value (Eq. 1).
    pub gain: f64,
    /// h_t — fraction of traffic served by INC.
    pub traffic_served: f64,
    /// h_r — normalized resource consumption.
    pub resource_cost: f64,
    /// h_p — normalized cross-device parameter traffic.
    pub comm_cost: f64,
    /// Weights in effect when the plan was computed.
    pub weights: Weights,
    /// Wall-clock solve time.
    pub solve_time: Duration,
}

impl PlacementPlan {
    /// Names of the devices that received at least one instruction.
    pub fn devices_used(&self) -> Vec<&str> {
        self.assignments.iter().filter(|a| !a.is_empty()).map(|a| a.device.as_str()).collect()
    }

    /// Instruction counts per non-empty device, in traffic order
    /// (the "instructions" column of Table 4).
    pub fn instructions_per_device(&self) -> Vec<usize> {
        self.assignments
            .iter()
            .filter(|a| !a.is_empty())
            .map(Assignment::instruction_count)
            .collect()
    }

    /// Stage counts per non-empty device, in traffic order
    /// (the "stages" column of Table 4).
    pub fn stages_per_device(&self) -> Vec<usize> {
        self.assignments.iter().filter(|a| !a.is_empty()).map(|a| a.stages_used).collect()
    }

    /// Total instructions placed (counting each snippet once, not per replica).
    pub fn total_instructions(&self) -> usize {
        self.assignments.iter().map(Assignment::instruction_count).sum()
    }

    /// Total resource demand summed over every physical device
    /// (replicated snippets count once per replica).
    pub fn total_demand(&self) -> ResourceVector {
        let mut v = ResourceVector::zero();
        for a in &self.assignments {
            v += a.demand.scaled(a.members.len().max(1) as f64);
        }
        v
    }

    /// Normalized resource consumption relative to a single device's capacity —
    /// the "Resource" rows of Table 3 use this unit (1.0 = one full device
    /// worth of the per-program baseline).
    pub fn normalized_resource(&self, baseline: &ResourceVector) -> f64 {
        let total = self.total_demand();
        if baseline.total() <= 0.0 {
            0.0
        } else {
            total.total() / baseline.total()
        }
    }

    /// A deterministic digest of the *solution*: every assignment's device,
    /// member set, block/instruction lists, stage map and resource demand,
    /// plus the gain terms — and **not** the wall-clock solve time, so two
    /// runs that solved the same problem fingerprint equal no matter how
    /// fast each ran.  The service layer keys its plan cache and its
    /// bit-identity tests on this digest.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_str(&self.program);
        h.write_u64(self.assignments.len() as u64);
        for a in &self.assignments {
            h.write_str(&a.device);
            h.write_u64(a.members.len() as u64);
            for m in &a.members {
                h.write_u64(m.0 as u64);
            }
            h.write_u64(a.blocks.len() as u64);
            for b in &a.blocks {
                h.write_u64(b.0 as u64);
            }
            h.write_u64(a.instrs.len() as u64);
            for i in &a.instrs {
                h.write_u64(*i as u64);
            }
            for (i, stage) in &a.stage_of {
                h.write_u64(*i as u64);
                h.write_u64(*stage as u64);
            }
            h.write_u64(a.stages_used as u64);
            for r in Resource::ALL {
                h.write_u64(a.demand[r].to_bits());
            }
            h.write_u64(a.step_range.0 as u64);
            h.write_u64(a.step_range.1 as u64);
        }
        for term in [self.gain, self.traffic_served, self.resource_cost, self.comm_cost] {
            h.write_u64(term.to_bits());
        }
        h.finish()
    }

    /// Check every structural invariant of the plan against the program, DAG
    /// and network; panics with a description on violation (test helper).
    pub fn assert_valid(&self, program: &IrProgram, dag: &BlockDag, net: &PlacementNetwork) {
        // every device in the plan exists in the network
        for a in &self.assignments {
            let device = net
                .all_devices()
                .find(|d| d.name == a.device)
                .unwrap_or_else(|| panic!("unknown device {} in plan", a.device));
            // capability constraint
            for &i in &a.instrs {
                let class = classify_instruction(&program.instructions[i], &program.objects);
                assert!(
                    device.supports(class),
                    "device {} cannot execute class {class} (instr {i})",
                    a.device
                );
            }
            // resource constraint
            assert!(
                a.demand.fits_within(&device.available),
                "assignment on {} exceeds available resources",
                a.device
            );
            // blocks and instruction lists agree
            let mut expected: Vec<usize> =
                a.blocks.iter().flat_map(|b| dag.blocks()[b.0].instrs.clone()).collect();
            expected.sort_unstable();
            let mut actual = a.instrs.clone();
            actual.sort_unstable();
            assert_eq!(expected, actual, "blocks and instructions disagree on {}", a.device);
        }
        // full coverage: every block appears on every path from a client leaf
        let order = dag.blocks_by_step();
        for leaf in net.client_leaves() {
            let path: Vec<String> = net.path_through(leaf).iter().map(|d| d.name.clone()).collect();
            let mut covered: Vec<usize> = Vec::new();
            for device in &path {
                for a in self.assignments.iter().filter(|a| &a.device == device) {
                    covered.extend(a.blocks.iter().map(|b| b.0));
                }
            }
            covered.sort_unstable();
            covered.dedup();
            let mut expected: Vec<usize> = order.clone();
            expected.sort_unstable();
            assert_eq!(covered, expected, "path through leaf {leaf} does not cover every block");
        }
    }
}

impl fmt::Display for PlacementPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "placement of `{}`: gain={:.4} (h_t={:.2}, h_r={:.4}, h_p={:.4}), {:?}",
            self.program,
            self.gain,
            self.traffic_served,
            self.resource_cost,
            self.comm_cost,
            self.solve_time
        )?;
        for a in self.assignments.iter().filter(|a| !a.is_empty()) {
            writeln!(f, "  {a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment(device: &str, instrs: Vec<usize>, stages: usize) -> Assignment {
        Assignment {
            device: device.to_string(),
            members: vec![NodeId(0)],
            kind: DeviceKind::Tofino,
            blocks: Vec::new(),
            instrs,
            stage_of: BTreeMap::new(),
            stages_used: stages,
            demand: ResourceVector::zero(),
            step_range: (0, 1),
        }
    }

    fn plan() -> PlacementPlan {
        PlacementPlan {
            program: "kvs".into(),
            assignments: vec![
                assignment("SW0", vec![0, 1, 2], 3),
                assignment("SW1", vec![], 0),
                assignment("SW2", vec![3, 4], 2),
            ],
            gain: 0.4,
            traffic_served: 1.0,
            resource_cost: 0.1,
            comm_cost: 0.05,
            weights: Weights::fixed(),
            solve_time: Duration::from_millis(5),
        }
    }

    #[test]
    fn per_device_summaries_skip_empty_assignments() {
        let p = plan();
        assert_eq!(p.devices_used(), vec!["SW0", "SW2"]);
        assert_eq!(p.instructions_per_device(), vec![3, 2]);
        assert_eq!(p.stages_per_device(), vec![3, 2]);
        assert_eq!(p.total_instructions(), 5);
    }

    #[test]
    fn display_mentions_gain_and_devices() {
        let p = plan();
        let s = p.to_string();
        assert!(s.contains("kvs"));
        assert!(s.contains("SW0"));
        assert!(!s.contains("SW1:"), "empty assignments are not printed");
    }

    #[test]
    fn error_display() {
        assert!(PlacementError::NoFeasiblePlacement.to_string().contains("feasible"));
        assert!(PlacementError::UnsupportedNetwork("multi-path".into())
            .to_string()
            .contains("multi-path"));
    }

    #[test]
    fn fingerprint_ignores_solve_time_but_not_the_solution() {
        let a = plan();
        let mut b = plan();
        b.solve_time = Duration::from_secs(1000);
        assert_eq!(a.fingerprint(), b.fingerprint(), "solve time is not part of the solution");
        let mut c = plan();
        c.assignments[0].instrs.push(99);
        assert_ne!(a.fingerprint(), c.fingerprint(), "the assignment content is");
        let mut d = plan();
        d.gain += 0.5;
        assert_ne!(a.fingerprint(), d.fingerprint(), "so are the gain terms");
    }

    #[test]
    fn normalized_resource_uses_baseline() {
        let mut p = plan();
        p.assignments[0].demand =
            ResourceVector::zero().with(clickinc_ir::Resource::SramBlocks, 10.0);
        let baseline = ResourceVector::zero().with(clickinc_ir::Resource::SramBlocks, 10.0);
        assert!((p.normalized_resource(&baseline) - 1.0).abs() < 1e-9);
        assert_eq!(p.normalized_resource(&ResourceVector::zero()), 0.0);
    }
}
