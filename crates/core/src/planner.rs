//! The planner: concurrent solving, plan caching, and policy-gated commits
//! over the transactional controller core.
//!
//! [`ClickIncService::planner`] returns a [`Planner`] — the batch-oriented
//! planning surface the provider drives:
//!
//! * **concurrent planning** — [`Planner::plan_all`] fans the solves of a
//!   request batch out over worker threads.  Planning is pure (PR 3 made
//!   [`Controller::plan`] a dry-run) and every solve runs against one frozen
//!   [`PlanContext`], so the results are bit-identical to solving the batch
//!   sequentially, in any thread count, in any completion order;
//! * **plan caching** — solved plans are cached keyed on
//!   [`ServiceRequest::fingerprint`] and pinned to the controller epoch.
//!   While the epoch stands still the cache returns the already-solved plan;
//!   when it moves, entries are invalidated *structurally*: a plan whose
//!   solve inputs provably did not change ([`Controller::revalidate`]) is
//!   warm re-pinned to the new epoch instead of being dropped, and a device
//!   failure evicts exactly the plans touching that device (the service's
//!   failure paths call the cache's `invalidate_touching`);
//! * **admission control** — every commit is threaded through the service's
//!   installed [`AdmissionPolicy`] chain plus any batch-scoped policies
//!   added with [`Planner::with_policy`], *before the first mutation*; a
//!   refusal surfaces as [`ClickIncError::Rejected`] and leaves the ledger,
//!   the planes and the engine bit-identical to before the call;
//! * **batch deploys** — [`Planner::deploy_all`] is parallel solve → policy
//!   gate → all-or-nothing sequential commit (in request order, with the
//!   exact-rollback semantics of PR 3).  [`ClickIncService::deploy_all`] is
//!   now a thin delegate to it.
//!
//! [`Controller::plan`]: crate::Controller::plan
//! [`PlanContext`]: crate::PlanContext

use crate::controller::{Controller, DeploymentPlan};
use crate::error::ClickIncError;
use crate::policy::{AdmissionPolicy, PolicyChain};
use crate::request::ServiceRequest;
use crate::service::{ClickIncService, TenantHandle};
use clickinc_runtime::TenantHop;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// How many solved plans the service keeps around.  Entries die naturally
/// when the epoch moves; the cap only bounds memory for providers that plan
/// very wide batches without committing.
const PLAN_CACHE_CAPACITY: usize = 256;

/// A solved plan pinned to the epoch it was solved against.
struct CacheEntry {
    epoch: u64,
    plan: DeploymentPlan,
}

/// The service-wide plan cache: `request fingerprint → (epoch, plan)`,
/// shared by every [`Planner`] the service hands out.  A lookup hits when
/// the stored epoch equals the controller's current epoch — the plan is then
/// committable as-is — **or** when the epoch moved but
/// [`Controller::revalidate`] proves nothing the solve read actually changed
/// (no candidate device's ledger moved, no health transition, same numeric
/// id): the entry is then re-pinned to the current epoch in place instead of
/// being dropped.  Only plans whose inputs truly moved are evicted — the
/// structural invalidation that lets a 1000-tenant churn workload keep its
/// cache across unrelated epoch moves.
pub(crate) struct PlanCache {
    entries: BTreeMap<u64, CacheEntry>,
    order: VecDeque<u64>,
    hits: u64,
    misses: u64,
    warm_repins: u64,
    structural_evictions: u64,
}

impl PlanCache {
    pub(crate) fn new() -> PlanCache {
        PlanCache {
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            warm_repins: 0,
            structural_evictions: 0,
        }
    }

    /// A committable plan for `fingerprint` at the controller's current
    /// epoch, if one is cached or can be warm re-pinned (see the type docs).
    /// The user check guards against fingerprint collisions ever handing one
    /// tenant another tenant's plan.
    fn lookup(
        &mut self,
        controller: &Controller,
        fingerprint: u64,
        user: &str,
    ) -> Option<DeploymentPlan> {
        let epoch = controller.epoch();
        match self.entries.get_mut(&fingerprint) {
            Some(entry) if entry.epoch == epoch && entry.plan.user() == user => {
                self.hits += 1;
                Some(entry.plan.clone())
            }
            Some(entry) if entry.plan.user() == user => {
                // the epoch moved under the entry; keep it iff a re-solve
                // would provably reproduce it
                match controller.revalidate(&entry.plan) {
                    Some(repinned) => {
                        entry.epoch = repinned.epoch();
                        entry.plan = repinned.clone();
                        self.hits += 1;
                        self.warm_repins += 1;
                        Some(repinned)
                    }
                    None => {
                        self.misses += 1;
                        self.remove(fingerprint);
                        None
                    }
                }
            }
            Some(_) => {
                // fingerprint collision: can never hit again
                self.misses += 1;
                self.remove(fingerprint);
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Structurally invalidate: drop every cached plan that occupies one of
    /// the named physical devices (a failure or restore made those placements
    /// unusable regardless of what `revalidate` could prove).  Plans on
    /// disjoint devices survive.  Returns how many entries were dropped.
    pub(crate) fn invalidate_touching(&mut self, devices: &[String]) -> usize {
        let doomed: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, entry)| devices.iter().any(|d| entry.plan.touches_physical(d)))
            .map(|(fp, _)| *fp)
            .collect();
        for fp in &doomed {
            self.remove(*fp);
        }
        self.structural_evictions += doomed.len() as u64;
        doomed.len()
    }

    /// Cached plans pinned to an epoch older than `epoch`, as
    /// `(fingerprint, request)` pairs — the speculative re-planning
    /// work-list.
    fn stale_requests(&self, epoch: u64, limit: usize) -> Vec<(u64, ServiceRequest)> {
        self.entries
            .iter()
            .filter(|(_, entry)| entry.epoch != epoch)
            .take(limit)
            .map(|(fp, entry)| (*fp, entry.plan.request().clone()))
            .collect()
    }

    /// Drop an entry, keeping `order` in lockstep with `entries` — the
    /// invariant the FIFO eviction relies on (a ghost key in `order` would
    /// make eviction delete the wrong, live entry once the cap is hit).
    fn remove(&mut self, fingerprint: u64) {
        if self.entries.remove(&fingerprint).is_some() {
            self.order.retain(|fp| *fp != fingerprint);
        }
    }

    fn insert(&mut self, fingerprint: u64, plan: &DeploymentPlan) {
        if self
            .entries
            .insert(fingerprint, CacheEntry { epoch: plan.epoch(), plan: plan.clone() })
            .is_none()
        {
            self.order.push_back(fingerprint);
        }
        while self.entries.len() > PLAN_CACHE_CAPACITY {
            match self.order.pop_front() {
                Some(oldest) => {
                    self.entries.remove(&oldest);
                }
                None => break,
            }
        }
        debug_assert_eq!(self.entries.len(), self.order.len(), "order mirrors entries");
    }

    fn stats(&self) -> PlannerStats {
        PlannerStats {
            cache_hits: self.hits,
            cache_misses: self.misses,
            cached_plans: self.entries.len(),
            warm_repins: self.warm_repins,
            structural_evictions: self.structural_evictions,
        }
    }
}

/// Counters of the service-wide plan cache, for observability and the
/// cache-semantics tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlannerStats {
    /// Lookups answered from the cache (including warm re-pins).
    pub cache_hits: u64,
    /// Lookups that had to (re-)run placement.
    pub cache_misses: u64,
    /// Plans currently cached.
    pub cached_plans: usize,
    /// Hits that crossed an epoch move via [`Controller::revalidate`]
    /// instead of a re-solve.
    pub warm_repins: u64,
    /// Entries dropped by structural invalidation (device failure/restore).
    pub structural_evictions: u64,
}

/// Per-batch planner counters: what one [`Planner::plan_all_with_stats`]
/// call did, as opposed to the process-lifetime [`PlannerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct BatchStats {
    /// Requests in the batch.
    pub requests: usize,
    /// Batch members answered from the plan cache (incl. warm re-pins).
    pub cache_hits: u64,
    /// Batch members that ran placement.
    pub cache_misses: u64,
    /// Cache hits that crossed an epoch move via a warm re-pin.
    pub warm_repins: u64,
}

/// The batch planning surface of a [`ClickIncService`]; see the
/// [module docs](self).  Obtained from [`ClickIncService::planner`]; cheap to
/// create, so make one per batch and stack batch-scoped policies on it.
pub struct Planner<'a> {
    service: &'a ClickIncService,
    policies: PolicyChain,
    threads: Option<usize>,
}

impl<'a> Planner<'a> {
    pub(crate) fn new(service: &'a ClickIncService) -> Planner<'a> {
        Planner { service, policies: PolicyChain::new(), threads: None }
    }

    /// Append a batch-scoped admission policy, evaluated *after* the
    /// service-wide chain installed with
    /// [`ClickIncService::set_admission_policy`].
    pub fn with_policy(mut self, policy: impl AdmissionPolicy + 'static) -> Planner<'a> {
        self.policies.push(policy);
        self
    }

    /// Pin the solver worker-thread count (default: the host's available
    /// parallelism).  Results are bit-identical in any thread count; the
    /// knob exists for benchmarks and determinism tests.
    pub fn with_threads(mut self, threads: usize) -> Planner<'a> {
        self.threads = Some(threads.max(1));
        self
    }

    /// Solve one request, answering from the plan cache when the controller
    /// epoch has not moved since it was last solved.
    pub fn plan(&self, request: &ServiceRequest) -> Result<DeploymentPlan, ClickIncError> {
        let controller = self.service.controller();
        self.plan_locked(&controller, request)
    }

    /// Solve a whole batch, fanning cache misses out over worker threads.
    /// Results come back in request order and are bit-identical to solving
    /// the batch sequentially against the same controller state.
    pub fn plan_all(
        &self,
        requests: &[ServiceRequest],
    ) -> Vec<Result<DeploymentPlan, ClickIncError>> {
        let controller = self.service.controller();
        self.plan_all_locked(&controller, requests)
    }

    /// Commit an already-solved plan: admission gate, then the strict
    /// epoch-guarded commit (a stale plan is [`ClickIncError::StalePlan`],
    /// exactly like [`ClickIncService::commit`] — use
    /// [`deploy`](Planner::deploy) for the retry-friendly path that re-plans
    /// through the cache).
    pub fn commit(&self, plan: DeploymentPlan) -> Result<TenantHandle, ClickIncError> {
        let mut controller = self.service.controller();
        self.service.admission_gate(&controller, &plan, Some(&self.policies))?;
        self.service.commit_locked(&mut controller, plan)
    }

    /// Plan (through the cache) + gate + commit under one controller lock.
    /// Retrying after a failure re-runs placement only if the epoch moved in
    /// between; while it stands still the cached plan commits directly.
    pub fn deploy(&self, request: ServiceRequest) -> Result<TenantHandle, ClickIncError> {
        let mut controller = self.service.controller();
        let plan = self.plan_locked(&controller, &request)?;
        self.service.admission_gate(&controller, &plan, Some(&self.policies))?;
        self.service.commit_locked(&mut controller, plan)
    }

    /// Deploy a batch: **parallel solve → policy gate → all-or-nothing
    /// sequential commit** in request order.
    ///
    /// The parallel pre-solve is the fail-fast gate: every request must
    /// compile and place *before* the first commit, so a batch with a bad
    /// member fails without ever touching the controller (and its solved
    /// plans stay cached — resubmitting the repaired batch at the same
    /// epoch answers the good members from the cache).  Commits then run
    /// strictly in request order; a member whose pre-solved plan went stale
    /// (every member after the first — committing its predecessor moved the
    /// epoch) is re-solved against the post-commit state.  That re-solve is
    /// deliberate, not waste: placement prices the ledger, so bit-identity
    /// with the sequential plan→commit path *requires* each member to be
    /// solved against the state its predecessors left behind — fail-fast
    /// validation costs up to `2n − 1` solves per committed n-member batch.
    /// Each member passes the admission gate at *its own* commit (the gate
    /// sees the residents and ratio left by its predecessors).  Any
    /// failure — solve, policy, commit — unwinds every member this call
    /// already committed, restoring the pre-call state bit for bit; the
    /// engine never sees a tenant of a failed batch.
    pub fn deploy_all(
        &self,
        requests: Vec<ServiceRequest>,
    ) -> Result<Vec<TenantHandle>, ClickIncError> {
        let mut controller = self.service.controller();

        // phase 1: parallel solve.  Fails fast on the first failing request
        // in request order, before anything commits.
        let mut plans: Vec<DeploymentPlan> = Vec::with_capacity(requests.len());
        for result in self.plan_all_locked(&controller, &requests) {
            plans.push(result?);
        }

        // phases 2+3: per-member admission gate + sequential commit
        let mut committed: Vec<(String, i64, Vec<TenantHop>)> = Vec::new();
        for (request, plan) in requests.iter().zip(plans) {
            let outcome = {
                let fresh = if plan.epoch() == controller.epoch() {
                    Ok(plan)
                } else {
                    // a predecessor's commit moved the epoch: cache miss by
                    // construction, re-solve against the state that now exists
                    self.plan_locked(&controller, request)
                };
                fresh
                    .and_then(|plan| {
                        self.service.admission_gate(&controller, &plan, Some(&self.policies))?;
                        Ok(plan)
                    })
                    .and_then(|plan| {
                        let deployment = controller.commit(plan)?;
                        Ok((deployment.user.clone(), deployment.numeric_id))
                    })
            };
            match outcome {
                Ok((user, numeric_id)) => {
                    let hops = controller.tenant_hops(&user);
                    committed.push((user, numeric_id, hops));
                }
                Err(e) => {
                    // unwind in reverse commit order; removal releases exactly
                    // what commit booked, so the rollback restores the
                    // pre-call state bit for bit
                    for (user, _, _) in committed.iter().rev() {
                        let _ = controller.remove(user);
                    }
                    return Err(e);
                }
            }
        }

        // mirror onto the engine only once the whole batch is committed —
        // still under the controller lock, so concurrent removals cannot
        // reach the engine ahead of these adds
        Ok(committed
            .into_iter()
            .map(|(user, numeric_id, hops)| {
                let mode = self.service.initial_mode_for(&hops);
                self.service.engine_handle().add_tenant_sharded(&user, hops.clone(), mode.clone());
                self.service.handle_for(user, numeric_id, hops, mode)
            })
            .collect())
    }

    /// Cache-aware single solve with the controller lock held.
    fn plan_locked(
        &self,
        controller: &Controller,
        request: &ServiceRequest,
    ) -> Result<DeploymentPlan, ClickIncError> {
        let fingerprint = request.fingerprint();
        if let Some(plan) = self.service.plan_cache().lookup(controller, fingerprint, &request.user)
        {
            return Ok(plan);
        }
        let plan = controller.plan(request)?;
        self.service.plan_cache().insert(fingerprint, &plan);
        Ok(plan)
    }

    /// [`plan_all`](Planner::plan_all) plus the per-batch cache counters —
    /// how many members were answered from the cache, warm re-pinned, or
    /// actually solved in *this* call (the process-lifetime counters are
    /// [`ClickIncService::planner_stats`]).
    pub fn plan_all_with_stats(
        &self,
        requests: &[ServiceRequest],
    ) -> (Vec<Result<DeploymentPlan, ClickIncError>>, BatchStats) {
        let controller = self.service.controller();
        let before = self.service.plan_cache().stats();
        let results = self.plan_all_locked(&controller, requests);
        let after = self.service.plan_cache().stats();
        let stats = BatchStats {
            requests: requests.len(),
            cache_hits: after.cache_hits - before.cache_hits,
            cache_misses: after.cache_misses - before.cache_misses,
            warm_repins: after.warm_repins - before.warm_repins,
        };
        (results, stats)
    }

    /// Speculatively re-plan up to `limit` cached-but-stale plans against the
    /// current controller state, so the next `deploy` of those requests
    /// commits a fresh plan straight from the cache.  Entries the warm
    /// re-pin can rescue are re-pinned (no solve); the rest re-run placement
    /// (memo-accelerated) and replace their cache entry; requests that no
    /// longer solve (their user deployed meanwhile, resources vanished) are
    /// evicted.  Returns how many entries are fresh afterwards.  Run it from
    /// idle/background moments — it takes the same locks as `plan`.
    pub fn replan_stale(&self, limit: usize) -> usize {
        let controller = self.service.controller();
        let epoch = controller.epoch();
        let stale = self.service.plan_cache().stale_requests(epoch, limit);
        let mut refreshed = 0usize;
        for (fingerprint, request) in stale {
            // lookup performs the re-pin when provable; otherwise re-solve
            if self.service.plan_cache().lookup(&controller, fingerprint, &request.user).is_some() {
                refreshed += 1;
                continue;
            }
            if let Ok(plan) = controller.plan(&request) {
                self.service.plan_cache().insert(fingerprint, &plan);
                refreshed += 1;
            }
        }
        refreshed
    }

    /// Batch solve with the controller lock held: probe the cache, fan the
    /// misses out over worker threads against one frozen [`PlanContext`],
    /// then cache the successes.
    ///
    /// [`PlanContext`]: crate::PlanContext
    fn plan_all_locked(
        &self,
        controller: &Controller,
        requests: &[ServiceRequest],
    ) -> Vec<Result<DeploymentPlan, ClickIncError>> {
        let mut results: Vec<Option<Result<DeploymentPlan, ClickIncError>>> =
            (0..requests.len()).map(|_| None).collect();
        let mut pending: Vec<usize> = Vec::new();
        {
            let mut cache = self.service.plan_cache();
            for (i, request) in requests.iter().enumerate() {
                match cache.lookup(controller, request.fingerprint(), &request.user) {
                    Some(plan) => results[i] = Some(Ok(plan)),
                    None => pending.push(i),
                }
            }
        }

        if !pending.is_empty() {
            let ctx = controller.plan_context();
            let workers = self
                .threads
                .unwrap_or_else(|| {
                    thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
                })
                .clamp(1, pending.len());
            if workers == 1 {
                for &i in &pending {
                    results[i] = Some(ctx.solve(&requests[i]));
                }
            } else {
                // work-stealing by atomic cursor: each worker pulls the next
                // un-solved slot; `ctx` is a `Sync` snapshot so every solve
                // sees the same frozen controller state
                let cursor = AtomicUsize::new(0);
                let pending_ref = &pending;
                let solved: Vec<(usize, Result<DeploymentPlan, ClickIncError>)> =
                    thread::scope(|scope| {
                        let handles: Vec<_> = (0..workers)
                            .map(|_| {
                                scope.spawn(|| {
                                    let mut out = Vec::new();
                                    loop {
                                        let slot = cursor.fetch_add(1, Ordering::Relaxed);
                                        let Some(&i) = pending_ref.get(slot) else { break };
                                        out.push((i, ctx.solve(&requests[i])));
                                    }
                                    out
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .flat_map(|h| h.join().expect("planner worker panicked"))
                            .collect()
                    });
                for (i, result) in solved {
                    results[i] = Some(result);
                }
            }
            let mut cache = self.service.plan_cache();
            for &i in &pending {
                if let Some(Ok(plan)) = &results[i] {
                    cache.insert(requests[i].fingerprint(), plan);
                }
            }
        }

        results.into_iter().map(|slot| slot.expect("every slot solved")).collect()
    }
}

impl ClickIncService {
    /// Counters of the service-wide plan cache (hits, misses, live entries).
    pub fn planner_stats(&self) -> PlannerStats {
        self.plan_cache().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_lang::templates::{kvs_template, KvsParams};
    use clickinc_runtime::EngineConfig;
    use clickinc_topology::Topology;

    fn kvs(user: &str) -> ServiceRequest {
        ServiceRequest::builder(user)
            .template(kvs_template(user, KvsParams { cache_depth: 1000, ..Default::default() }))
            .from_("pod0a")
            .to("pod2b")
            .build()
            .expect("well-formed request")
    }

    /// The stale-remove + re-insert cycle `deploy_all` performs for every
    /// batch member must keep the FIFO order queue in lockstep with the
    /// entry map — a ghost or duplicated key would leak memory and, at the
    /// cap, make eviction delete a live entry instead of the oldest one.
    #[test]
    fn stale_cycles_keep_the_eviction_queue_in_lockstep_with_the_entries() {
        let service = ClickIncService::with_config(
            Topology::emulation_topology_all_tofino(),
            EngineConfig { shards: 1, batch_size: 16, ..Default::default() },
        )
        .expect("engine config is valid");
        let request = kvs("cycled");
        let fp = request.fingerprint();
        let mut cache = PlanCache::new();
        for round in 0..4 {
            let plan = service.plan(&request).expect("plans");
            assert!(cache.lookup(&service.controller(), fp, "cycled").is_none(), "absent or stale");
            cache.insert(fp, &plan);
            assert_eq!(cache.entries.len(), 1);
            assert_eq!(cache.order.len(), 1, "round {round}: one key, one order slot");
            assert!(cache.lookup(&service.controller(), fp, "cycled").is_some(), "fresh plan hits");
            // an unrelated tenant commits: the epoch AND the numeric id the
            // cached plan was pinned to both move, so no warm re-pin can
            // rescue the entry — the next lookup must drop it from BOTH
            // structures
            service.deploy(kvs(&format!("mover{round}"))).expect("deploys");
            assert!(cache.lookup(&service.controller(), fp, "cycled").is_none(), "stale misses");
            assert_eq!(cache.entries.len(), 0);
            assert_eq!(cache.order.len(), 0, "round {round}: the stale key left the queue too");
        }
        service.finish();
    }
}
