//! Value-level evaluation of ALU operations and comparisons.
//!
//! These are the *reference semantics* of the IR: the emulator's interpreter,
//! the register VM, and the optimizer's constant folder all call the same two
//! functions, so a folded constant is bit-identical to what either execution
//! backend would have computed at packet time.

use crate::instr::{AluOp, CmpOp};
use crate::types::Value;

/// Compare two values under the interpreter's coercion rules: `None` equals
/// only `None` (and satisfies the non-strict orderings against it), `None`
/// against anything else satisfies only `!=`, and everything else coerces to
/// integers.
pub fn compare(a: &Value, op: CmpOp, b: &Value) -> bool {
    match (a, b) {
        (Value::None, Value::None) => matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge),
        (Value::None, _) | (_, Value::None) => matches!(op, CmpOp::Ne),
        _ => {
            let (x, y) = (a.as_int().unwrap_or(0), b.as_int().unwrap_or(0));
            op.eval_int(x, y)
        }
    }
}

/// Apply an ALU operation. Integer arithmetic wraps, division and modulo by
/// zero yield zero, and `Slice` extracts the bit range packed into `b` as
/// `(hi << 8) | lo`. The `float` flag selects the floating-point unit, which
/// supports the arithmetic subset and passes `a` through for the rest.
pub fn alu(op: AluOp, a: &Value, b: &Value, float: bool) -> Value {
    if float {
        let (x, y) = (a.as_float().unwrap_or(0.0), b.as_float().unwrap_or(0.0));
        let r = match op {
            AluOp::Add => x + y,
            AluOp::Sub => x - y,
            AluOp::Mul => x * y,
            AluOp::Div => {
                if y == 0.0 {
                    0.0
                } else {
                    x / y
                }
            }
            AluOp::Min => x.min(y),
            AluOp::Max => x.max(y),
            _ => x,
        };
        return Value::Float(r);
    }
    let (x, y) = (a.as_int().unwrap_or(0), b.as_int().unwrap_or(0));
    let r = match op {
        AluOp::Add => x.wrapping_add(y),
        AluOp::Sub => x.wrapping_sub(y),
        AluOp::Mul => x.wrapping_mul(y),
        AluOp::Div => {
            if y == 0 {
                0
            } else {
                x / y
            }
        }
        AluOp::Mod => {
            if y == 0 {
                0
            } else {
                x % y
            }
        }
        AluOp::And => x & y,
        AluOp::Or => x | y,
        AluOp::Xor => x ^ y,
        AluOp::Shl => x.wrapping_shl(y as u32),
        AluOp::Shr => x.wrapping_shr(y as u32),
        AluOp::Min => x.min(y),
        AluOp::Max => x.max(y),
        AluOp::Slice => {
            let hi = (y >> 8) & 0xff;
            let lo = y & 0xff;
            (x >> lo) & ((1 << (hi - lo + 1).clamp(1, 63)) - 1)
        }
    };
    Value::Int(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_compares_like_the_interpreter() {
        assert!(compare(&Value::None, CmpOp::Eq, &Value::None));
        assert!(compare(&Value::None, CmpOp::Le, &Value::None));
        assert!(!compare(&Value::None, CmpOp::Lt, &Value::None));
        assert!(compare(&Value::None, CmpOp::Ne, &Value::Int(3)));
        assert!(!compare(&Value::None, CmpOp::Eq, &Value::Int(3)));
    }

    #[test]
    fn integer_division_by_zero_is_zero() {
        assert_eq!(alu(AluOp::Div, &Value::Int(7), &Value::Int(0), false), Value::Int(0));
        assert_eq!(alu(AluOp::Mod, &Value::Int(7), &Value::Int(0), false), Value::Int(0));
        assert_eq!(alu(AluOp::Div, &Value::Float(7.0), &Value::Int(0), true), Value::Float(0.0));
    }

    #[test]
    fn slice_extracts_the_packed_bit_range() {
        // bits [11:8] of 0xabcd = 0xb; range packed as (11 << 8) | 8
        let range = Value::Int((11 << 8) | 8);
        assert_eq!(alu(AluOp::Slice, &Value::Int(0xabcd), &range, false), Value::Int(0xb));
    }

    #[test]
    fn wrapping_matches_two_complement() {
        assert_eq!(
            alu(AluOp::Add, &Value::Int(i64::MAX), &Value::Int(1), false),
            Value::Int(i64::MIN)
        );
    }
}
