//! The five network configurations of Fig. 13 with the sparse-gradient
//! aggregation workload of Fig. 7.

use clickinc_device::DeviceModel;
use clickinc_emulator::{AggregationConfig, DevicePlane, NetworkSetup};
use clickinc_frontend::compile_source;
use clickinc_lang::templates::{mlagg_sparse_user, mlagg_template, MlAggParams};

/// One Fig. 13 configuration.
#[derive(Debug)]
pub struct Fig13Case {
    /// Label used in the figure ("DPDK", "SmartNIC", "1 Switch", "2 Switches",
    /// "1 Switch+SmartNIC").
    pub label: &'static str,
    /// The path of programmable hops (with their programs installed).
    pub setup: NetworkSetup,
    /// The workload to run over it.
    pub workload: AggregationConfig,
}

fn mlagg_params(dims: u32, workers: u32) -> MlAggParams {
    MlAggParams { dims, num_workers: workers, num_aggregators: 4096, is_float: false }
}

/// A switch hop running the full MLAgg program for `dims` dimensions.
fn aggregation_switch(name: &str, dims: u32, workers: u32) -> DevicePlane {
    let t = mlagg_template("mlagg", mlagg_params(dims, workers));
    let ir = compile_source("mlagg", &t.source).expect("MLAgg compiles");
    let mut plane = DevicePlane::new(name, DeviceModel::tofino());
    plane.install(ir);
    plane
}

/// A worker-side smartNIC hop running only the sparse-compression half of the
/// Fig. 7 user program.
fn compression_nic(name: &str, dims: u32, workers: u32, block_size: u32) -> DevicePlane {
    let t = mlagg_sparse_user("sparse", mlagg_params(dims, workers), dims / block_size, block_size);
    let source: String = t
        .source
        .lines()
        .filter(|l| !l.trim_start().starts_with("agg(hdr)"))
        .collect::<Vec<_>>()
        .join("\n");
    let ir = compile_source("sparse", &source).expect("sparse compression compiles");
    let mut plane = DevicePlane::new(name, DeviceModel::nfp_smartnic());
    plane.install(ir);
    plane
}

/// Build the five Fig. 13 configurations.
///
/// `workers` and `rounds` scale the workload; `dims` is the per-packet vector
/// size for the single-switch cases (the two-switch case doubles it, which is
/// the paper's "the packet size can be larger in case (4)").
pub fn fig13_configurations(workers: usize, rounds: usize, dims: usize) -> Vec<Fig13Case> {
    let base_workload = AggregationConfig {
        workers,
        rounds,
        dims,
        sparsity: 0.5,
        block_size: 8,
        seed: 17,
        ..Default::default()
    };
    let w = workers as u32;
    let d = dims as u32;
    vec![
        Fig13Case {
            label: "DPDK",
            setup: NetworkSetup::new(vec![DevicePlane::new("SW0", DeviceModel::tofino())]),
            workload: base_workload.clone(),
        },
        Fig13Case {
            label: "SmartNIC",
            setup: NetworkSetup::new(vec![
                compression_nic("NIC0", d, w, 8),
                DevicePlane::new("SW0", DeviceModel::tofino()),
            ]),
            workload: base_workload.clone(),
        },
        Fig13Case {
            label: "1 Switch",
            setup: NetworkSetup::new(vec![aggregation_switch("SW0", d, w)]),
            workload: base_workload.clone(),
        },
        Fig13Case {
            label: "2 Switches",
            setup: NetworkSetup::new(vec![
                aggregation_switch("SW0", 2 * d, w),
                DevicePlane::new("SW1", DeviceModel::tofino()),
            ]),
            workload: AggregationConfig { dims: 2 * dims, ..base_workload.clone() },
        },
        Fig13Case {
            label: "1 Switch+SmartNIC",
            setup: NetworkSetup::new(vec![
                compression_nic("NIC0", d, w, 8),
                aggregation_switch("SW0", d, w),
            ]),
            workload: base_workload,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_emulator::run_aggregation_scenario;

    #[test]
    fn fig13_shape_matches_the_paper() {
        let mut results = Vec::new();
        for mut case in fig13_configurations(4, 60, 32) {
            let report = run_aggregation_scenario(&mut case.setup, &case.workload);
            assert!(report.aggregation_correct, "{}: aggregation must stay exact", case.label);
            results.push((case.label, report));
        }
        let goodput = |label: &str| {
            results.iter().find(|(l, _)| *l == label).map(|(_, r)| r.goodput_gbps).unwrap()
        };
        // the ordering the paper reports: every INC configuration beats the
        // baseline, aggregation beats compression-only, and the heterogeneous
        // combination is at least as good as a single switch
        assert!(goodput("SmartNIC") >= goodput("DPDK"));
        assert!(goodput("1 Switch") > goodput("SmartNIC"));
        assert!(goodput("2 Switches") >= goodput("1 Switch") * 0.95);
        assert!(goodput("1 Switch+SmartNIC") >= goodput("1 Switch"));
        // in-network latency exists exactly when a program runs in the network
        let latency = |label: &str| {
            results.iter().find(|(l, _)| *l == label).map(|(_, r)| r.inc_latency_ns).unwrap()
        };
        assert_eq!(latency("DPDK"), 0.0);
        assert!(latency("SmartNIC") > 0.0);
        assert!(latency("1 Switch+SmartNIC") >= latency("1 Switch"));
    }

    #[test]
    fn five_cases_are_generated() {
        let cases = fig13_configurations(2, 10, 16);
        assert_eq!(cases.len(), 5);
        assert_eq!(cases[0].label, "DPDK");
        assert_eq!(cases[4].label, "1 Switch+SmartNIC");
    }
}
