//! Live reconfiguration under traffic: two KVS tenants serve a skewed
//! request stream on the sharded runtime engine while a third tenant's
//! gradient-aggregation program is deployed and removed mid-run through the
//! `ClickIncService` facade (paper §6, Fig. 14 — INC as a service).
//!
//! The same three-phase workload is run twice — once with the mid-run
//! deploy/remove, once without — and the resident tenants' telemetry is
//! compared: goodput, hit ratio and tail latency are bit-for-bit unaffected.
//! Note there is no hook or bridge wiring anywhere: the service owns both
//! the controller and the engine and mirrors every commit automatically.
//!
//! Run with: `cargo run --release --example live_traffic`

use clickinc::lang::templates::{kvs_template, mlagg_template, KvsParams, MlAggParams};
use clickinc::topology::Topology;
use clickinc::{ClickIncService, ServiceRequest, TenantHandle};
use clickinc_emulator::kvs_backend_value;
use clickinc_ir::Value;
use clickinc_runtime::workload::{
    KvsWorkload, KvsWorkloadConfig, MlAggWorkload, MlAggWorkloadConfig,
};
use clickinc_runtime::{EngineConfig, TelemetryReport};

const SHARDS: usize = 4;
const REQUESTS: usize = 3000;

fn populate_cache(tenant: &TenantHandle, hot_keys: i64) {
    let table = format!("{}_cache", tenant.user());
    for key in 0..hot_keys {
        tenant.populate_table(
            &table,
            vec![Value::Int(key)],
            vec![Value::Int(kvs_backend_value(key))],
        );
    }
}

fn kvs_stream(tenant: &TenantHandle, seed: u64) -> KvsWorkload {
    KvsWorkload::new(KvsWorkloadConfig {
        tenant: tenant.user().to_string(),
        user_id: tenant.numeric_id(),
        keys: 1000,
        skew: 1.1,
        requests: REQUESTS,
        rate_pps: 5_000_000.0,
        seed,
    })
}

/// Three traffic phases for the resident tenants; in the middle phase a
/// third tenant optionally arrives, aggregates 400 gradient packets
/// in-network, and leaves — all through the service facade.
fn run(reconfigure: bool) -> TelemetryReport {
    let service = ClickIncService::with_config(
        Topology::emulation_topology_all_tofino(),
        EngineConfig { shards: SHARDS, batch_size: 128, ..Default::default() },
    )
    .expect("engine config is valid");

    let mut residents = Vec::new();
    for (user, srcs) in [("kvs_a", ["pod0a", "pod1a"]), ("kvs_b", ["pod0b", "pod1b"])] {
        let t = kvs_template(user, KvsParams { cache_depth: 2000, ..Default::default() });
        let request = ServiceRequest::builder(user)
            .template(t)
            .from_(srcs[0])
            .from_(srcs[1])
            .to("pod2b")
            .build()
            .expect("well-formed request");
        let tenant = service.deploy(request).expect("resident deploys");
        populate_cache(&tenant, 64);
        residents.push(tenant);
    }
    let mut wl_a = kvs_stream(&residents[0], 5);
    let mut wl_b = kvs_stream(&residents[1], 6);

    // phase 1: both residents flowing
    residents[0].run_workload(&mut wl_a, REQUESTS / 3, 128);
    residents[1].run_workload(&mut wl_b, REQUESTS / 3, 128);

    let newcomer = if reconfigure {
        let t = mlagg_template(
            "agg_c",
            MlAggParams { dims: 16, num_aggregators: 1024, ..Default::default() },
        );
        let request = ServiceRequest::builder("agg_c")
            .template(t)
            .from_("pod1a")
            .from_("pod1b")
            .to("pod2a")
            .build()
            .expect("well-formed request");
        // dry-run first: the plan predicts the post-commit resource ratio
        let plan = service.plan(&request).expect("agg_c plans");
        let predicted = plan.predicted_remaining_ratio();
        let tenant = service.commit(plan).expect("agg_c commits");
        assert_eq!(service.remaining_resource_ratio(), predicted, "plan prediction is exact");
        let mut wl_c = MlAggWorkload::new(MlAggWorkloadConfig {
            tenant: "agg_c".to_string(),
            user_id: tenant.numeric_id(),
            workers: 4,
            rounds: 100,
            dims: 16,
            rate_pps: 5_000_000.0,
            seed: 7,
            ..Default::default()
        });
        tenant.run_workload(&mut wl_c, usize::MAX, 128);
        Some(tenant)
    } else {
        None
    };

    // phase 2: residents keep flowing next to (or without) the newcomer
    residents[0].run_workload(&mut wl_a, REQUESTS / 3, 128);
    residents[1].run_workload(&mut wl_b, REQUESTS / 3, 128);

    if let Some(tenant) = newcomer {
        tenant.remove().expect("agg_c leaves cleanly");
    }

    // phase 3: after the teardown
    residents[0].run_workload(&mut wl_a, usize::MAX, 128);
    residents[1].run_workload(&mut wl_b, usize::MAX, 128);
    service.flush();
    service.finish().telemetry
}

fn main() {
    println!("=== Live reconfiguration under traffic ({SHARDS} shards) ===\n");
    let reconfigured = run(true);
    let quiet = run(false);

    let agg = reconfigured.tenant("agg_c").expect("transient tenant served");
    println!(
        "transient tenant agg_c: {} packets, {} in-network aggregations, {} absorbed, \
         goodput {:.2} Gbps",
        agg.packets, agg.hits, agg.drops, agg.goodput_gbps
    );

    println!(
        "\n{:<8} {:>10} {:>11} {:>14} {:>12} {:>12}  disruption",
        "tenant", "requests", "hit ratio", "goodput Gbps", "p50 ns", "p99 ns"
    );
    for user in ["kvs_a", "kvs_b"] {
        let with = reconfigured.tenant(user).expect("resident tenant served");
        let without = quiet.tenant(user).expect("resident tenant served");
        let unaffected = with == without;
        println!(
            "{:<8} {:>10} {:>11.3} {:>14.3} {:>12} {:>12}  {}",
            user,
            with.packets,
            with.hit_ratio,
            with.goodput_gbps,
            with.latency_p50_ns,
            with.latency_p99_ns,
            if unaffected { "none (bit-for-bit identical)" } else { "DISTURBED" }
        );
        assert!(unaffected, "co-resident tenant {user} must not observe the reconfiguration");
        assert!(with.hit_ratio > 0.3, "hot keys are answered in-network");
    }

    println!("\nTelemetry JSON (agg_c excerpt):");
    for line in reconfigured.to_json().lines().take(18) {
        println!("  {line}");
    }
    println!("  ...");
}
