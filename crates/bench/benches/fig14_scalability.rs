//! Fig. 14 — placement (compile) time versus the number of devices, with and
//! without block construction, with and without pruning, DP vs SMT-style.

use clickinc_blockdag::{build_block_dag, BlockConfig};
use clickinc_frontend::compile_source;
use clickinc_lang::templates::{mlagg_template, MlAggParams};
use clickinc_placement::{
    place, place_smt, PlacementConfig, PlacementNetwork, ResourceLedger, SmtConfig,
};
use clickinc_topology::{reduce_for_traffic, Topology};
use std::time::{Duration, Instant};

fn main() {
    let source = mlagg_template("mlagg", MlAggParams { dims: 12, ..Default::default() }).source;
    let ir = compile_source("mlagg", &source).expect("compiles");
    let dag_blocks = build_block_dag(&ir, &BlockConfig::default());
    let dag_noblocks =
        build_block_dag(&ir, &BlockConfig { enable_merging: false, ..Default::default() });

    println!("== Fig. 14(a,b): DP placement time vs number of devices (MLAgg) ==");
    println!(
        "{:>8} {:>18} {:>18} {:>18} {:>18}",
        "devices",
        "DP block+prune",
        "DP block no-prune",
        "DP no-block prune",
        "DP no-block no-prune"
    );
    for devices in [1usize, 2, 4, 7, 10] {
        let topo = Topology::chain(devices, clickinc_device::DeviceKind::Tofino);
        let servers = topo.servers();
        let reduced = reduce_for_traffic(&topo, &[servers[0]], servers[1], &[]);
        let net = PlacementNetwork::from_reduced(&topo, &reduced, &ResourceLedger::new());
        let time = |dag, pruning| {
            let cfg = PlacementConfig { enable_pruning: pruning, ..Default::default() };
            let start = Instant::now();
            let _ = place(&ir, dag, &net, &cfg);
            start.elapsed()
        };
        println!(
            "{:>8} {:>18.2?} {:>18.2?} {:>18.2?} {:>18.2?}",
            devices,
            time(&dag_blocks, true),
            time(&dag_blocks, false),
            time(&dag_noblocks, true),
            time(&dag_noblocks, false),
        );
    }

    println!();
    println!("== Fig. 14(c): SMT-style solver time vs number of devices ==");
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "devices", "SMT block", "SMT w/o block", "nodes (block)"
    );
    for devices in [1usize, 2, 3, 4] {
        let topo = Topology::chain(devices, clickinc_device::DeviceKind::Tofino);
        let servers = topo.servers();
        let reduced = reduce_for_traffic(&topo, &[servers[0]], servers[1], &[]);
        let net = PlacementNetwork::from_reduced(&topo, &reduced, &ResourceLedger::new());
        let cfg = SmtConfig { time_limit: Duration::from_secs(20), ..Default::default() };
        let start = Instant::now();
        let with_block = place_smt(&ir, &dag_blocks, &net, &cfg);
        let t_block = start.elapsed();
        let start = Instant::now();
        let _ = place_smt(&ir, &dag_noblocks, &net, &cfg);
        let t_noblock = start.elapsed();
        let nodes = with_block.map(|(_, s)| s.nodes_explored).unwrap_or(0);
        println!("{devices:>8} {t_block:>16.2?} {t_noblock:>16.2?} {nodes:>16}");
    }
    println!(
        "(paper: the DP time grows linearly with device count; the SMT time grows exponentially)"
    );
}
