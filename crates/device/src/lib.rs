//! # clickinc-device — heterogeneous device models
//!
//! The placement engine needs, for every programmable device in the data
//! center, (i) which instruction classes it can execute at all (paper Table 9 /
//! Appendix E "Compatibility"), (ii) how many pipeline stages or cores it
//! offers, (iii) how much of each resource a stage/core provides, and (iv) how
//! much of each resource a given IR instruction or block consumes on that
//! device.  This crate provides those models for the five device families the
//! paper targets — Tofino, Tofino2, Trident4 (TD4), Netronome NFP smartNICs and
//! Xilinx FPGAs — plus a plain-server (DPDK) pseudo-device used as the
//! no-offload baseline in the Fig. 13 experiment.
//!
//! The constraint formulas of Appendix E are reproduced in a simplified but
//! faithful form: memory demand is charged in SRAM/TCAM blocks per *object*,
//! compute demand in ALUs/SALUs/hash units per *instruction*, table demand in
//! match-action slots, predication demand in gateway slots, and RTC devices
//! (NFP) charge per-core micro-instruction slots instead of per-stage units.

mod demand;
mod model;

pub use demand::{block_demand, instruction_demand, object_demand};
pub use model::{Architecture, DeviceKind, DeviceModel};

#[cfg(test)]
mod proptests {
    use super::*;
    use clickinc_ir::{AluOp, Operand, ProgramBuilder, Resource};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Block demand is monotone: adding instructions never lowers any
        /// resource dimension.
        #[test]
        fn block_demand_is_monotone(n in 1usize..20, extra in 1usize..10) {
            let mut b = ProgramBuilder::new("p");
            b.array("s", 1, 1024, 32);
            for i in 0..(n + extra) {
                if i % 3 == 0 {
                    b.count(Some(&format!("c{i}")), "s", vec![Operand::int(i as i64)], Operand::int(1));
                } else {
                    b.alu(&format!("v{i}"), AluOp::Add, Operand::hdr("x"), Operand::int(i as i64));
                }
            }
            let program = b.build().expect("generated program is well-formed");
            let dev = DeviceModel::tofino();
            let small: Vec<usize> = (0..n).collect();
            let large: Vec<usize> = (0..n + extra).collect();
            let d_small = block_demand(&dev, &program, &small);
            let d_large = block_demand(&dev, &program, &large);
            for r in Resource::ALL {
                prop_assert!(d_small[r] <= d_large[r] + 1e-9,
                    "{:?}: {} > {}", r, d_small[r], d_large[r]);
            }
        }

        /// Per-device capacities are internally consistent: every stage offers a
        /// non-negative amount of every resource and the stage count is non-zero.
        #[test]
        fn all_models_have_usable_stages(kind_idx in 0usize..6) {
            let dev = match kind_idx {
                0 => DeviceModel::tofino(),
                1 => DeviceModel::tofino2(),
                2 => DeviceModel::trident4(),
                3 => DeviceModel::nfp_smartnic(),
                4 => DeviceModel::fpga_smartnic(),
                _ => DeviceModel::fpga_accelerator(),
            };
            prop_assert!(dev.stages() >= 1);
            for s in 0..dev.stages() {
                for r in Resource::ALL {
                    prop_assert!(dev.stage_capacity(s)[r] >= 0.0);
                }
            }
        }
    }
}
