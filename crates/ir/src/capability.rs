//! Device capability classes (paper Table 9) and functional units (Table 8).
//!
//! Every IR instruction is assigned one of the 13 capability classes.  A device
//! model advertises the subset of classes it supports; the placement algorithm
//! prunes any device that cannot execute a block's classes (paper §5.4,
//! "Placement Constraints and Pruning", constraint 3).

use crate::instr::{Instruction, OpCode};
use crate::object::{MatchKind, ObjectDecl, ObjectKind};
use std::fmt;

/// The 13 instruction classes of paper Table 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CapabilityClass {
    /// Integer addition/subtraction, bit & logical operations, slicing.
    Bin,
    /// Integer multiplication, division, modulus.
    Bic,
    /// Floating-point and other complex arithmetic.
    Bca,
    /// Stateful array operations (register read/write/increment).
    Bso,
    /// Stateless exact-match table lookup.
    Bem,
    /// Stateful exact-match table (data-plane writable).
    Bsem,
    /// Stateless ternary / LPM match table.
    Bnem,
    /// Stateful ternary / LPM match table.
    Bsnem,
    /// Direct-match (index) table.
    Bdm,
    /// Basic packet functions: drop, send/forward, copyTo.
    Bbpf,
    /// Advanced packet functions: mirror, multicast.
    Bapf,
    /// Auxiliary functions: hash (CRC family), checksum, random.
    Baf,
    /// Cryptographic functions: encryption / decryption.
    Bcf,
}

impl CapabilityClass {
    /// All classes, in Table 9 order.
    pub const ALL: [CapabilityClass; 13] = [
        CapabilityClass::Bin,
        CapabilityClass::Bic,
        CapabilityClass::Bca,
        CapabilityClass::Bso,
        CapabilityClass::Bem,
        CapabilityClass::Bsem,
        CapabilityClass::Bnem,
        CapabilityClass::Bsnem,
        CapabilityClass::Bdm,
        CapabilityClass::Bbpf,
        CapabilityClass::Bapf,
        CapabilityClass::Baf,
        CapabilityClass::Bcf,
    ];

    /// Whether this class involves per-packet mutable device state.
    pub fn is_stateful(&self) -> bool {
        matches!(self, CapabilityClass::Bso | CapabilityClass::Bsem | CapabilityClass::Bsnem)
    }
}

impl fmt::Display for CapabilityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CapabilityClass::Bin => "BIN",
            CapabilityClass::Bic => "BIC",
            CapabilityClass::Bca => "BCA",
            CapabilityClass::Bso => "BSO",
            CapabilityClass::Bem => "BEM",
            CapabilityClass::Bsem => "BSEM",
            CapabilityClass::Bnem => "BNEM",
            CapabilityClass::Bsnem => "BSNEM",
            CapabilityClass::Bdm => "BDM",
            CapabilityClass::Bbpf => "BBPF",
            CapabilityClass::Bapf => "BAPF",
            CapabilityClass::Baf => "BAF",
            CapabilityClass::Bcf => "BCF",
        };
        write!(f, "{s}")
    }
}

/// Basic functional units of paper Table 8, used by backends and device models to
/// map instructions onto chip primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FunctionalUnit {
    /// `_ram` — 1-D memory accessed by index.
    Ram,
    /// `_cam` — content-addressable memory.
    Cam,
    /// `_tcam` — ternary CAM.
    Tcam,
    /// `_emt` — stateless exact-match table.
    Emt,
    /// `_semt` — stateful exact-match table.
    Semt,
    /// `_tmt` — stateless ternary-match table.
    Tmt,
    /// `_stmt` — stateful ternary-match table.
    Stmt,
    /// `_lpmt` — longest-prefix-match table.
    Lpmt,
    /// `_randint` — integer random value.
    RandInt,
    /// `_crc` — CRC hashing.
    Crc,
    /// `_identity` — identity hashing (Tofino only).
    Identity,
    /// `_aes` — AES crypto (FPGA only).
    Aes,
    /// `_ecs` — ECS crypto (NFP only).
    Ecs,
    /// `_checksum` — csum16.
    Checksum,
    /// `_mirror` — packet mirroring.
    Mirror,
    /// `_multicast` — packet multicast.
    Multicast,
    /// Plain ALU (not in Table 8 because it is implicit on all devices).
    Alu,
}

/// Classify a single instruction into its capability class.
///
/// Table-referencing instructions need the object declarations to distinguish
/// exact/ternary/direct match and stateless/stateful tables; `objects` is searched
/// by name.  Unknown objects conservatively classify as [`CapabilityClass::Bso`].
pub fn classify_instruction(instr: &Instruction, objects: &[ObjectDecl]) -> CapabilityClass {
    let find = |name: &str| objects.iter().find(|o| o.name == name).map(|o| &o.kind);
    match &instr.op {
        OpCode::Assign { .. } | OpCode::Cmp { .. } | OpCode::SetHeader { .. } | OpCode::NoOp => {
            CapabilityClass::Bin
        }
        OpCode::Alu { op, float, .. } => {
            if *float {
                CapabilityClass::Bca
            } else if op.is_complex_int() {
                CapabilityClass::Bic
            } else {
                CapabilityClass::Bin
            }
        }
        OpCode::Hash { .. } | OpCode::RandInt { .. } | OpCode::Checksum { .. } => {
            CapabilityClass::Baf
        }
        OpCode::Crypto { .. } => CapabilityClass::Bcf,
        OpCode::Drop | OpCode::Forward | OpCode::Back { .. } | OpCode::CopyTo { .. } => {
            CapabilityClass::Bbpf
        }
        OpCode::Mirror { .. } | OpCode::Multicast { .. } => CapabilityClass::Bapf,
        OpCode::ReadState { object, .. } => match find(object) {
            Some(ObjectKind::Table { match_kind, stateful, .. }) => {
                table_class(*match_kind, *stateful)
            }
            Some(ObjectKind::Hash { .. }) => CapabilityClass::Baf,
            Some(ObjectKind::Crypto { .. }) => CapabilityClass::Bcf,
            Some(_) | None => CapabilityClass::Bso,
        },
        OpCode::WriteState { object, .. }
        | OpCode::CountState { object, .. }
        | OpCode::ClearState { object }
        | OpCode::DeleteState { object, .. } => match find(object) {
            Some(ObjectKind::Table { match_kind, .. }) => table_class(*match_kind, true),
            Some(_) | None => CapabilityClass::Bso,
        },
    }
}

fn table_class(match_kind: MatchKind, stateful: bool) -> CapabilityClass {
    match (match_kind, stateful) {
        (MatchKind::Exact, false) => CapabilityClass::Bem,
        (MatchKind::Exact, true) => CapabilityClass::Bsem,
        (MatchKind::Ternary | MatchKind::Lpm, false) => CapabilityClass::Bnem,
        (MatchKind::Ternary | MatchKind::Lpm, true) => CapabilityClass::Bsnem,
        (MatchKind::Index, _) => CapabilityClass::Bdm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Instruction, OpCode, Operand};
    use crate::object::{HashAlgo, ObjectDecl, ObjectKind, SketchKind};

    fn objects() -> Vec<ObjectDecl> {
        vec![
            ObjectDecl::new(
                "cache",
                ObjectKind::Table {
                    match_kind: MatchKind::Exact,
                    key_width: 128,
                    value_width: 512,
                    depth: 5000,
                    stateful: false,
                },
            ),
            ObjectDecl::new(
                "acl",
                ObjectKind::Table {
                    match_kind: MatchKind::Ternary,
                    key_width: 32,
                    value_width: 8,
                    depth: 100,
                    stateful: false,
                },
            ),
            ObjectDecl::new(
                "route",
                ObjectKind::Table {
                    match_kind: MatchKind::Lpm,
                    key_width: 32,
                    value_width: 16,
                    depth: 1000,
                    stateful: false,
                },
            ),
            ObjectDecl::new(
                "mirror_sess",
                ObjectKind::Table {
                    match_kind: MatchKind::Index,
                    key_width: 8,
                    value_width: 16,
                    depth: 16,
                    stateful: false,
                },
            ),
            ObjectDecl::new(
                "flowtab",
                ObjectKind::Table {
                    match_kind: MatchKind::Exact,
                    key_width: 64,
                    value_width: 32,
                    depth: 1024,
                    stateful: true,
                },
            ),
            ObjectDecl::new("agg", ObjectKind::Array { rows: 1, size: 5000, width: 32 }),
            ObjectDecl::new(
                "cms",
                ObjectKind::Sketch { kind: SketchKind::CountMin, rows: 3, cols: 1024, width: 32 },
            ),
            ObjectDecl::new("h", ObjectKind::Hash { algo: HashAlgo::Crc16, modulus: None }),
            ObjectDecl::new("enc", ObjectKind::Crypto { algo: crate::object::CryptoAlgo::Aes }),
        ]
    }

    fn classify(op: OpCode) -> CapabilityClass {
        classify_instruction(&Instruction::new(0, op), &objects())
    }

    #[test]
    fn arithmetic_classes() {
        let add = OpCode::Alu {
            dest: "x".into(),
            op: AluOp::Add,
            lhs: Operand::var("a"),
            rhs: Operand::int(1),
            float: false,
        };
        assert_eq!(classify(add), CapabilityClass::Bin);
        let mul = OpCode::Alu {
            dest: "x".into(),
            op: AluOp::Mul,
            lhs: Operand::var("a"),
            rhs: Operand::int(3),
            float: false,
        };
        assert_eq!(classify(mul), CapabilityClass::Bic);
        let fadd = OpCode::Alu {
            dest: "x".into(),
            op: AluOp::Add,
            lhs: Operand::var("a"),
            rhs: Operand::var("b"),
            float: true,
        };
        assert_eq!(classify(fadd), CapabilityClass::Bca);
    }

    #[test]
    fn table_classes_follow_match_kind_and_statefulness() {
        let read = |obj: &str| OpCode::ReadState {
            dest: "v".into(),
            object: obj.into(),
            index: vec![Operand::hdr("key")],
        };
        assert_eq!(classify(read("cache")), CapabilityClass::Bem);
        assert_eq!(classify(read("acl")), CapabilityClass::Bnem);
        assert_eq!(classify(read("route")), CapabilityClass::Bnem);
        assert_eq!(classify(read("mirror_sess")), CapabilityClass::Bdm);
        assert_eq!(classify(read("flowtab")), CapabilityClass::Bsem);
        assert_eq!(classify(read("agg")), CapabilityClass::Bso);
        assert_eq!(classify(read("cms")), CapabilityClass::Bso);
        // reads of hash / crypto objects are function evaluations
        assert_eq!(classify(read("h")), CapabilityClass::Baf);
        assert_eq!(classify(read("enc")), CapabilityClass::Bcf);
    }

    #[test]
    fn writing_a_stateless_table_makes_it_stateful_class() {
        let wr = OpCode::WriteState {
            object: "cache".into(),
            index: vec![Operand::hdr("key")],
            value: vec![Operand::hdr("vals")],
        };
        assert_eq!(classify(wr), CapabilityClass::Bsem);
        let wr_tern = OpCode::WriteState {
            object: "acl".into(),
            index: vec![Operand::hdr("key")],
            value: vec![Operand::int(1)],
        };
        assert_eq!(classify(wr_tern), CapabilityClass::Bsnem);
    }

    #[test]
    fn packet_and_aux_function_classes() {
        assert_eq!(classify(OpCode::Drop), CapabilityClass::Bbpf);
        assert_eq!(classify(OpCode::Forward), CapabilityClass::Bbpf);
        assert_eq!(classify(OpCode::Mirror { updates: vec![] }), CapabilityClass::Bapf);
        assert_eq!(classify(OpCode::Multicast { group: Operand::int(1) }), CapabilityClass::Bapf);
        assert_eq!(
            classify(OpCode::Hash { dest: "i".into(), object: "h".into(), keys: vec![] }),
            CapabilityClass::Baf
        );
        assert_eq!(
            classify(OpCode::Checksum { dest: "c".into(), inputs: vec![] }),
            CapabilityClass::Baf
        );
        assert_eq!(
            classify(OpCode::Crypto {
                dest: "e".into(),
                object: "enc".into(),
                input: Operand::hdr("key"),
                encrypt: true
            }),
            CapabilityClass::Bcf
        );
        assert_eq!(classify(OpCode::NoOp), CapabilityClass::Bin);
    }

    #[test]
    fn unknown_object_defaults_to_stateful_array() {
        let read =
            OpCode::ReadState { dest: "v".into(), object: "nonexistent".into(), index: vec![] };
        assert_eq!(classify(read), CapabilityClass::Bso);
    }

    #[test]
    fn stateful_class_flag() {
        assert!(CapabilityClass::Bso.is_stateful());
        assert!(CapabilityClass::Bsem.is_stateful());
        assert!(CapabilityClass::Bsnem.is_stateful());
        assert!(!CapabilityClass::Bem.is_stateful());
        assert!(!CapabilityClass::Bin.is_stateful());
    }

    #[test]
    fn all_classes_unique_and_displayable() {
        let mut names: Vec<String> = CapabilityClass::ALL.iter().map(|c| c.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 13);
    }
}
