//! # clickinc-apps — the evaluated INC applications as ready-made scenarios
//!
//! The paper's evaluation revolves around three applications (KVS, MLAgg with
//! its sparse-gradient extension, and DQAcc) deployed over the Fig. 11
//! emulation topology and the Fig. 12 testbed.  This crate packages those
//! applications and workloads so the benches, examples and integration tests
//! share one definition of every experiment:
//!
//! * [`fig13`] — the five network configurations of Fig. 13 (DPDK baseline,
//!   smartNIC only, one switch, two switches, switch + smartNIC) with the
//!   sparse-gradient workload, swept by the single-threaded scenario loop
//!   (the path-shape ablation);
//! * [`serving`] — the same KVS/MLAgg workloads deployed through the
//!   `ClickIncService` facade and served by the sharded traffic engine —
//!   the default serving path — plus the overload scenario that drives a
//!   hot, flow-sharded tenant into the bounded ingress queues;
//! * [`adaptive`] — the load-shift scenario for the adaptive runtime: a
//!   pinned hot tenant saturates its home shard, the telemetry-driven
//!   control loop live-reshards it and rebalances ingress budgets, and the
//!   admit ratio recovers with bit-identical results;
//! * [`failover`] — the device-failure scenario: a victim tenant's device
//!   dies mid-run on the virtual clock, the controller quiesces and
//!   re-places it around the failure (or parks it `Degraded`), the restore
//!   revives it, and a co-resident tenant on disjoint routes stays
//!   bit-identical to a fault-free run;
//! * [`churn`] — the 1000-tenant arrival/departure churn scenario: a
//!   provider's arrival queue cycling a pool of program shapes through a
//!   capped resident set, sustained against the serving engine — the
//!   placement memo's and the reactive admission pipeline's showcase;
//! * [`multiuser`] — the six program instances and traffic endpoints of
//!   Table 3, the seven-instance sequence of Table 5, and the
//!   add/remove sequence of Table 6.

pub mod adaptive;
pub mod churn;
pub mod failover;
pub mod fig13;
pub mod multiuser;
pub mod serving;

pub use adaptive::{
    serve_adaptive_scenario, AdaptiveServingConfig, AdaptiveServingReport, PhaseStats,
};
pub use churn::{run_churn_scenario, ChurnConfig, ChurnReport};
pub use failover::{serve_failover_scenario, FailoverServingConfig, FailoverServingReport};
pub use fig13::{fig13_configurations, Fig13Case};
pub use multiuser::{table3_requests, table5_requests, table6_steps, Table6Step};
pub use serving::{
    serve_fig13_workloads, serve_overload_scenario, OverloadConfig, OverloadReport, ServingConfig,
    ServingReport,
};
