//! The adaptive-serving scenario: a load shift absorbed by the
//! telemetry-driven reconfiguration loop.
//!
//! A hot KVS tenant and a background MLAgg tenant are deployed with
//! [`InitialSharding::Pinned`] — conservative placement, everyone starts on
//! one shard — and driven through three phases:
//!
//! 1. **warm** — moderate load, small inject batches; the control loop
//!    observes a baseline and acts on nothing;
//! 2. **surge** — the hot tenant floods the bounded ingress queues with
//!    inject batches far beyond the per-shard bound; its admit ratio
//!    collapses while it sits on one shard;
//! 3. **adapted** — between the phases the [`AdaptiveRuntime`] stepped: it
//!    saw the saturation, live-resharded the hot tenant `ByTenant → ByFlow`
//!    (its state profile admits it) and rebalanced the per-tenant ingress
//!    budgets.  The same surge now lands on every shard and the admit ratio
//!    recovers.
//!
//! The recovery is *observable* ([`AdaptiveServingReport::recovery`] — the
//! adapted-to-surge admit-ratio quotient) and *safe*: under a policy that
//! sheds nothing ([`OverloadPolicy::Backpressure`] with ample credits) the
//! adaptive run's per-tenant totals and store fingerprints are bit-identical
//! to a static run that never adapts — adaptation changes goodput, never
//! results.

use clickinc::{AdaptiveRuntime, ClickIncError, ClickIncService, InitialSharding, ServiceRequest};
use clickinc_emulator::kvs_backend_value;
use clickinc_ir::Value;
use clickinc_lang::templates::{kvs_template, mlagg_template, KvsParams, MlAggParams};
use clickinc_runtime::workload::{
    KvsWorkload, KvsWorkloadConfig, MlAggWorkload, MlAggWorkloadConfig,
};
use clickinc_runtime::{
    AdaptivePolicy, EngineConfig, OverloadPolicy, ShardingMode, TenantStats, WorkloadReport,
};
use clickinc_topology::Topology;
use std::collections::BTreeMap;

/// Sizing of the adaptive-serving scenario.
#[derive(Debug, Clone)]
pub struct AdaptiveServingConfig {
    /// Engine shard worker threads.
    pub shards: usize,
    /// Packets per device-queue drain batch.
    pub batch_size: usize,
    /// Per-shard bound on in-flight packets.
    pub queue_capacity: usize,
    /// What the engine does at the bound.
    pub overload: OverloadPolicy,
    /// Hot-tenant requests in the warm phase (below
    /// `policy.min_epoch_packets`, so the loop never acts on warm noise).
    pub warm_requests: usize,
    /// Hot-tenant requests in each of the surge and adapted phases.
    pub surge_requests: usize,
    /// Inject batch during the surge phases — far beyond `queue_capacity`,
    /// so a single-shard tenant must shed (or stall) most of every batch.
    pub surge_batch: usize,
    /// Hot tenant's key universe.
    pub hot_keys: usize,
    /// Hot keys pre-installed in the in-network cache.
    pub cached_keys: i64,
    /// Offered hot-tenant load in packets per second (virtual clock).
    pub rate_pps: f64,
    /// Background gradient-aggregation rounds (spread across the phases).
    pub background_rounds: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Whether the adaptive loop runs.  `false` is the static control: same
    /// phases, same traffic, no reconfiguration — the baseline the adaptive
    /// run's results must match bit-identically.
    pub adapt: bool,
    /// Control-loop thresholds.
    pub policy: AdaptivePolicy,
}

impl Default for AdaptiveServingConfig {
    fn default() -> Self {
        AdaptiveServingConfig {
            shards: 4,
            batch_size: 64,
            queue_capacity: 96,
            overload: OverloadPolicy::DropTail,
            warm_requests: 512,
            surge_requests: 4096,
            surge_batch: 1024,
            hot_keys: 2000,
            cached_keys: 128,
            rate_pps: 50_000_000.0,
            background_rounds: 60,
            seed: 29,
            adapt: true,
            policy: AdaptivePolicy {
                // the warm phase offers fewer packets than this, so only the
                // surge epochs can trigger actions — the phase boundaries,
                // not drain-timing noise, decide when the loop moves
                min_epoch_packets: 1024,
                // keep the escalation path out of this scenario: a replan
                // redeploys from a clean slate, which is exactly the result
                // divergence the reshard path exists to avoid
                replan_epochs: 8,
                ..Default::default()
            },
        }
    }
}

/// The admit/shed split of one phase, from the hot tenant's injection
/// reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStats {
    /// Packets pulled from the generator this phase.
    pub offered: usize,
    /// Packets the bounded queues admitted.
    pub admitted: usize,
    /// Packets shed under the overload policy.
    pub shed: usize,
}

impl PhaseStats {
    fn from_report(report: &WorkloadReport) -> PhaseStats {
        PhaseStats { offered: report.generated, admitted: report.admitted, shed: report.shed }
    }

    /// Fraction of offered packets the queues admitted.
    pub fn admit_ratio(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.admitted as f64 / self.offered as f64
    }
}

/// What the adaptive-serving scenario leaves behind.
#[derive(Debug, Clone)]
pub struct AdaptiveServingReport {
    /// Hot-tenant admission during the warm phase.
    pub warm: PhaseStats,
    /// Hot-tenant admission during the surge, before the loop adapted.
    pub surge: PhaseStats,
    /// Hot-tenant admission during the identical surge after adaptation.
    pub adapted: PhaseStats,
    /// Every action the loop decided on, rendered, in decision order.
    pub actions: Vec<String>,
    /// The hot tenant's sharding mode when the surge began.
    pub hot_mode_before: ShardingMode,
    /// The hot tenant's sharding mode after the loop (if any) acted.
    pub hot_mode_after: ShardingMode,
    /// Final telemetry of the hot tenant (`hot_kvs`).
    pub hot: TenantStats,
    /// Final telemetry of the background tenant (`bg_agg`).
    pub background: TenantStats,
    /// Final object-store fingerprints per device, merged across shards.
    pub store_fingerprints: BTreeMap<String, u64>,
}

impl AdaptiveServingReport {
    /// Goodput recovery: the adapted phase's admit ratio over the surge
    /// phase's.  ≈ 1 for a static run; > 1 when adaptation freed capacity.
    pub fn recovery(&self) -> f64 {
        let before = self.surge.admit_ratio();
        if before == 0.0 {
            return if self.adapted.admitted > 0 { f64::INFINITY } else { 1.0 };
        }
        self.adapted.admit_ratio() / before
    }
}

/// Run the load-shift scenario; see the [module docs](self) for the phases.
pub fn serve_adaptive_scenario(
    config: &AdaptiveServingConfig,
) -> Result<AdaptiveServingReport, ClickIncError> {
    let service = ClickIncService::with_config(
        Topology::emulation_topology_all_tofino(),
        EngineConfig {
            shards: config.shards,
            batch_size: config.batch_size,
            queue_capacity: config.queue_capacity,
            overload: config.overload.clone(),
            ..Default::default()
        },
    )?;
    // conservative placement: everyone starts on one shard, and only the
    // control loop — under observed saturation — spreads a tenant out
    service.set_initial_sharding(InitialSharding::Pinned);
    let handles = service.deploy_all(vec![
        ServiceRequest::builder("hot_kvs")
            .template(kvs_template(
                "hot_kvs",
                KvsParams { cache_depth: 2000, ..Default::default() },
            ))
            .from_("pod0a")
            .from_("pod1a")
            .to("pod2b")
            .build()?,
        ServiceRequest::builder("bg_agg")
            .template(mlagg_template(
                "bg_agg",
                MlAggParams { dims: 16, num_workers: 4, num_aggregators: 1024, is_float: false },
            ))
            .from_("pod0b")
            .from_("pod1b")
            .to("pod2a")
            .build()?,
    ])?;
    let (hot, background) = (&handles[0], &handles[1]);
    for key in 0..config.cached_keys {
        hot.populate_table(
            "hot_kvs_cache",
            vec![Value::Int(key)],
            vec![Value::Int(kvs_backend_value(key))],
        );
    }

    let mut adaptive = AdaptiveRuntime::new(config.policy.clone());
    if config.adapt {
        adaptive.track(&service, "hot_kvs");
        adaptive.track(&service, "bg_agg");
    }
    let mut actions: Vec<String> = Vec::new();
    let mut step = |adaptive: &mut AdaptiveRuntime| {
        if !config.adapt {
            return;
        }
        // exact telemetry at the epoch boundary: drain everything in flight
        service.flush();
        let outcome = adaptive.step(&service);
        actions.extend(outcome.tick.actions.iter().map(|a| a.to_string()));
    };

    let mut hot_wl = KvsWorkload::new(KvsWorkloadConfig {
        tenant: hot.user().to_string(),
        user_id: hot.numeric_id(),
        keys: config.hot_keys,
        skew: 1.1,
        requests: config.warm_requests + 2 * config.surge_requests,
        rate_pps: config.rate_pps,
        seed: config.seed,
    });
    let mut bg_wl = MlAggWorkload::new(MlAggWorkloadConfig {
        tenant: background.user().to_string(),
        user_id: background.numeric_id(),
        workers: 4,
        rounds: config.background_rounds,
        dims: 16,
        sparsity: 0.5,
        block_size: 8,
        rate_pps: config.rate_pps / 10.0,
        seed: config.seed + 1,
    });
    let bg_chunk = (config.background_rounds * 4).div_ceil(3);

    // baseline epoch: the loop observes the deployed-but-idle system
    step(&mut adaptive);

    // phase 1: warm — below the policy's per-epoch packet floor
    let warm = hot.run_workload(&mut hot_wl, config.warm_requests, 32);
    background.run_workload(&mut bg_wl, bg_chunk, 32);
    step(&mut adaptive);

    // phase 2: surge — the flood hits a single home shard
    let hot_mode_before =
        service.engine_handle().sharding_mode("hot_kvs").expect("hot tenant is live");
    let surge = hot.run_workload(&mut hot_wl, config.surge_requests, config.surge_batch);
    background.run_workload(&mut bg_wl, bg_chunk, 32);
    step(&mut adaptive); // <- the loop sees the saturation and acts here

    // phase 3: the identical surge against the adapted configuration
    let adapted = hot.run_workload(&mut hot_wl, usize::MAX, config.surge_batch);
    background.run_workload(&mut bg_wl, usize::MAX, 32);
    step(&mut adaptive);

    let hot_mode_after =
        service.engine_handle().sharding_mode("hot_kvs").expect("hot tenant is live");
    service.flush();
    let outcome = service.finish();
    let stats = |user: &str| {
        outcome.telemetry.tenant(user).cloned().unwrap_or_else(|| panic!("{user} was served"))
    };
    Ok(AdaptiveServingReport {
        warm: PhaseStats::from_report(&warm),
        surge: PhaseStats::from_report(&surge),
        adapted: PhaseStats::from_report(&adapted),
        actions,
        hot_mode_before,
        hot_mode_after,
        hot: stats("hot_kvs"),
        background: stats("bg_agg"),
        store_fingerprints: outcome
            .stores
            .iter()
            .map(|(device, store)| (device.clone(), store.fingerprint()))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normalized(mut stats: TenantStats) -> TenantStats {
        stats.per_shard_packets.clear();
        stats
    }

    #[test]
    fn the_loop_recovers_the_hot_tenants_admit_ratio_under_droptail() {
        let adaptive = serve_adaptive_scenario(&AdaptiveServingConfig::default())
            .expect("adaptive scenario serves");
        assert_eq!(adaptive.hot_mode_before, ShardingMode::ByTenant, "pinned start");
        assert!(
            adaptive.hot_mode_after.is_by_flow(),
            "the loop spread the hot tenant: {:?}",
            adaptive.actions
        );
        assert!(
            adaptive.actions.iter().any(|a| a.starts_with("reshard hot_kvs")),
            "a reshard was decided: {:?}",
            adaptive.actions
        );
        assert!(
            adaptive.actions.iter().any(|a| a.starts_with("budget ")),
            "ingress budgets were rebalanced: {:?}",
            adaptive.actions
        );
        assert!(adaptive.surge.shed > 0, "the surge saturated the home shard");
        let static_run =
            serve_adaptive_scenario(&AdaptiveServingConfig { adapt: false, ..Default::default() })
                .expect("static scenario serves");
        assert_eq!(static_run.hot_mode_after, ShardingMode::ByTenant, "the control never moves");
        // compare the post-adaptation phases absolutely: a resharded tenant
        // admits through every shard's queue (structurally ~shards x the
        // pinned bound), where the recovery *ratio* has a noisy near-zero
        // denominator (surge admits depend on how much the workers drain
        // mid-burst) and is only printed, never gated
        assert!(
            adaptive.adapted.admit_ratio() > 1.5 * static_run.adapted.admit_ratio(),
            "adaptation recovered goodput: adapted-phase admit ratio {:.3} vs static {:.3}",
            adaptive.adapted.admit_ratio(),
            static_run.adapted.admit_ratio()
        );
        assert!(
            adaptive.adapted.admit_ratio() > adaptive.surge.admit_ratio(),
            "the adapted surge admits above the saturated one: {:.3} vs {:.3}",
            adaptive.adapted.admit_ratio(),
            adaptive.surge.admit_ratio()
        );
    }

    #[test]
    fn adaptation_changes_goodput_never_results_under_backpressure() {
        // ample credits: nothing is shed, so both runs serve the identical
        // packet stream and their results must match bit-for-bit
        let config = AdaptiveServingConfig {
            overload: OverloadPolicy::Backpressure { credits: 256 },
            ..Default::default()
        };
        let adaptive = serve_adaptive_scenario(&config).expect("adaptive scenario serves");
        let static_run =
            serve_adaptive_scenario(&AdaptiveServingConfig { adapt: false, ..config.clone() })
                .expect("static scenario serves");
        assert_eq!(adaptive.hot.shed_packets, 0, "credits absorb the surge");
        assert_eq!(static_run.hot.shed_packets, 0);
        assert!(
            adaptive.hot_mode_after.is_by_flow(),
            "the loop really adapted mid-run: {:?}",
            adaptive.actions
        );
        assert_eq!(
            normalized(adaptive.hot.clone()),
            normalized(static_run.hot.clone()),
            "hot-tenant results diverged under adaptation"
        );
        assert_eq!(
            normalized(adaptive.background.clone()),
            normalized(static_run.background.clone()),
            "background results diverged under adaptation"
        );
        assert_eq!(
            adaptive.store_fingerprints, static_run.store_fingerprints,
            "store fingerprints diverged under adaptation"
        );
    }
}
