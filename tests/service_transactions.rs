//! Transactional guarantees of the `ClickIncService` facade:
//!
//! 1. **Round-trip equivalence** — `plan` → `commit` produces a deployment
//!    bit-identical to the direct `Controller::deploy` path (numeric id,
//!    snippets, plane fingerprints, telemetry after a fixed seeded
//!    workload).
//! 2. **Plan purity** — planning never changes the remaining resource
//!    ratio, the active user set, or any plane's store fingerprint.
//! 3. **All-or-nothing batches** — a failed `deploy_all` (unknown host,
//!    compile error, stale plan) leaves the ledger ratio, the active users,
//!    the engine tenants and every plane's store fingerprint bit-identical
//!    to before the call, even when earlier requests of the batch had
//!    already committed.

use clickinc::lang::templates::{
    count_min_sketch, dqacc_template, kvs_template, mlagg_template, DqAccParams, KvsParams,
    MlAggParams,
};
use clickinc::topology::Topology;
use clickinc::{ClickIncError, ClickIncService, Controller, ServiceRequest};
use clickinc_emulator::kvs_backend_value;
use clickinc_ir::Value;
use clickinc_runtime::workload::{KvsWorkload, KvsWorkloadConfig};
use clickinc_runtime::{EngineConfig, TrafficEngine};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn engine_config() -> EngineConfig {
    EngineConfig { shards: 2, batch_size: 32 }
}

fn kvs_request(user: &str) -> ServiceRequest {
    ServiceRequest::builder(user)
        .template(kvs_template(user, KvsParams { cache_depth: 2000, ..Default::default() }))
        .from_("pod0a")
        .from_("pod1a")
        .to("pod2b")
        .build()
        .expect("well-formed request")
}

fn seeded_workload(user: &str, id: i64) -> KvsWorkload {
    KvsWorkload::new(KvsWorkloadConfig {
        tenant: user.to_string(),
        user_id: id,
        keys: 500,
        skew: 1.2,
        requests: 800,
        rate_pps: 1_000_000.0,
        seed: 9,
    })
}

/// Everything observable a serving run leaves behind, for equivalence
/// comparison across the two deployment paths.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    numeric_id: i64,
    snippets: Vec<clickinc::ir::IrProgram>,
    controller_planes: BTreeMap<String, u64>,
    engine_stores: BTreeMap<String, u64>,
    telemetry: clickinc_runtime::TelemetryReport,
}

/// The old two-API wiring: a controller bridged onto an engine by hand.
fn run_direct_controller_path() -> RunFingerprint {
    let engine = TrafficEngine::new(engine_config());
    let mut controller = Controller::new(Topology::emulation_topology_all_tofino());
    controller.attach_engine(engine.handle());
    let deployment = controller.deploy(kvs_request("kvs0")).expect("deploys");
    let numeric_id = deployment.numeric_id;
    let snippets: Vec<_> = deployment.snippets.values().flatten().cloned().collect();

    let handle = engine.handle();
    for hop in controller.tenant_hops("kvs0") {
        if hop.snippets.iter().any(|s| s.objects.iter().any(|o| o.name == "kvs0_cache")) {
            for key in 0..64 {
                handle.populate_table(
                    "kvs0",
                    &hop.device,
                    "kvs0_cache",
                    vec![Value::Int(key)],
                    vec![Value::Int(kvs_backend_value(key))],
                );
            }
        }
    }
    let mut wl = seeded_workload("kvs0", numeric_id);
    handle.run_workload(&mut wl, usize::MAX, 64);
    handle.flush();
    let outcome = engine.finish();
    RunFingerprint {
        numeric_id,
        snippets,
        controller_planes: controller.plane_fingerprints(),
        engine_stores: outcome.stores.iter().map(|(d, s)| (d.clone(), s.fingerprint())).collect(),
        telemetry: outcome.telemetry,
    }
}

/// The facade path: plan → commit → handle.
fn run_service_path() -> RunFingerprint {
    let service =
        ClickIncService::with_config(Topology::emulation_topology_all_tofino(), engine_config())
            .expect("engine config is valid");
    let plan = service.plan(&kvs_request("kvs0")).expect("plans");
    let tenant = service.commit(plan).expect("commits");
    let numeric_id = tenant.numeric_id();
    let (snippets, controller_planes) = {
        let controller = service.controller();
        let deployment = controller.deployment("kvs0").expect("active");
        let snippets: Vec<_> = deployment.snippets.values().flatten().cloned().collect();
        (snippets, controller.plane_fingerprints())
    };
    for key in 0..64 {
        tenant.populate_table(
            "kvs0_cache",
            vec![Value::Int(key)],
            vec![Value::Int(kvs_backend_value(key))],
        );
    }
    let mut wl = seeded_workload("kvs0", numeric_id);
    tenant.run_workload(&mut wl, usize::MAX, 64);
    service.flush();
    let outcome = service.finish();
    RunFingerprint {
        numeric_id,
        snippets,
        controller_planes,
        engine_stores: outcome.stores.iter().map(|(d, s)| (d.clone(), s.fingerprint())).collect(),
        telemetry: outcome.telemetry,
    }
}

#[test]
fn plan_commit_round_trip_equals_the_direct_deploy_path() {
    let direct = run_direct_controller_path();
    let service = run_service_path();
    assert_eq!(direct.numeric_id, service.numeric_id, "same numeric id");
    assert_eq!(direct.snippets, service.snippets, "same installed snippets");
    assert_eq!(direct.controller_planes, service.controller_planes, "same plane fingerprints");
    assert_eq!(direct.engine_stores, service.engine_stores, "same engine store fingerprints");
    assert_eq!(direct.telemetry, service.telemetry, "same telemetry for the seeded workload");
    // the workload actually did something on both paths
    let stats = direct.telemetry.tenant("kvs0").expect("served");
    assert_eq!(stats.completed, 800);
    assert!(stats.hit_ratio > 0.3);
}

/// A snapshot of every piece of observable controller/engine state the
/// rollback guarantees protect.
fn snapshot(service: &ClickIncService) -> (u64, Vec<String>, BTreeMap<String, u64>, String) {
    (
        service.remaining_resource_ratio().to_bits(),
        service.active_users(),
        service.controller().plane_fingerprints(),
        service.telemetry().to_json(),
    )
}

#[test]
fn failed_deploy_all_rolls_back_already_committed_tenants() {
    let service =
        ClickIncService::with_config(Topology::emulation_topology_all_tofino(), engine_config())
            .expect("engine config is valid");
    // a resident tenant outside the batch must be untouched too
    let resident = service.deploy(kvs_request("resident")).expect("resident deploys");
    let before = snapshot(&service);

    // two good requests followed by one that exceeds nothing but names an
    // unknown host: the first two commit, then the batch unwinds
    let err = service
        .deploy_all(vec![
            kvs_request("batch_a"),
            ServiceRequest::builder("batch_b")
                .template(dqacc_template("batch_b", DqAccParams { depth: 2000, ways: 4 }))
                .from_("pod0b")
                .to("pod2b")
                .build()
                .unwrap(),
            ServiceRequest::builder("batch_poison")
                .source("forward()\n")
                .from_("mars")
                .to("pod2b")
                .build()
                .unwrap(),
        ])
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, ClickIncError::UnknownHost(h) if h == "mars"));
    assert_eq!(snapshot(&service), before, "rollback restored every observable");

    // a compile error late in the batch rolls back the same way
    let err = service
        .deploy_all(vec![
            kvs_request("batch_a"),
            ServiceRequest::builder("batch_bad_src")
                .source("x = undefined_thing(1)\n")
                .from_("pod0a")
                .to("pod2b")
                .build()
                .unwrap(),
        ])
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, ClickIncError::Compile(_)));
    assert_eq!(snapshot(&service), before, "rollback restored every observable");

    // the resident still serves traffic after both rollbacks
    let mut wl = seeded_workload("resident", resident.numeric_id());
    resident.run_workload(&mut wl, usize::MAX, 64);
    service.flush();
    let stats = resident.telemetry().expect("resident served");
    assert_eq!(stats.completed, 800);
    service.finish();
}

fn request_from_op(op: u8, index: usize) -> ServiceRequest {
    let user = format!("u{index}");
    match op % 6 {
        0 => ServiceRequest::builder(&user)
            .template(kvs_template(&user, KvsParams { cache_depth: 1000, ..Default::default() }))
            .from_("pod0a")
            .to("pod2b")
            .build()
            .unwrap(),
        1 => ServiceRequest::builder(&user)
            .template(mlagg_template(
                &user,
                MlAggParams { dims: 8, num_aggregators: 512, ..Default::default() },
            ))
            .from_("pod1a")
            .to("pod2a")
            .build()
            .unwrap(),
        2 => ServiceRequest::builder(&user)
            .template(dqacc_template(&user, DqAccParams { depth: 1000, ways: 4 }))
            .from_("pod0b")
            .to("pod2b")
            .build()
            .unwrap(),
        3 => ServiceRequest::builder(&user)
            .template(count_min_sketch(&user, 3, 512))
            .from_("pod1b")
            .to("pod2b")
            .build()
            .unwrap(),
        4 => ServiceRequest::builder(&user)
            .source("forward()\n")
            .from_("no-such-host")
            .to("pod2b")
            .build()
            .unwrap(),
        _ => ServiceRequest::builder(&user)
            .source("x = undefined_thing(1)\n")
            .from_("pod0a")
            .to("pod2b")
            .build()
            .unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any request sequence: `plan` is pure, and a failed `deploy_all`
    /// leaves the ledger ratio, the active users, the engine tenants and
    /// every plane's store fingerprint bit-identical to before the call.
    #[test]
    fn rollback_invariants_hold_for_any_request_sequence(
        ops in proptest::collection::vec(0u8..6, 1..4),
    ) {
        let service = ClickIncService::with_config(
            Topology::emulation_topology_all_tofino(),
            EngineConfig { shards: 1, batch_size: 16 },
        )
        .expect("engine config is valid");
        let mut requests: Vec<ServiceRequest> =
            ops.iter().enumerate().map(|(i, op)| request_from_op(*op, i)).collect();
        // force at least one poison request so deploy_all must fail
        if !ops.iter().any(|op| op % 6 >= 4) {
            requests.push(request_from_op(4, requests.len()));
        }

        let before = snapshot(&service);

        // planning any of the valid requests is a pure dry-run
        for request in &requests {
            let planned = service.plan(request);
            if let Ok(plan) = &planned {
                prop_assert!(plan.predicted_remaining_ratio() <= service.remaining_resource_ratio());
            }
            prop_assert_eq!(snapshot(&service), before);
        }

        // the poisoned batch fails and rolls back everything
        prop_assert!(service.deploy_all(requests).map(|_| ()).is_err());
        prop_assert_eq!(snapshot(&service), before);
        service.finish();
    }
}
