//! # clickinc-lang — the ClickINC user language
//!
//! ClickINC programs are written in a high-level, Python-style language (paper
//! §4.1, Fig. 5): simple statements assign expressions to variables, compound
//! statements provide branching (`if`/`elif`/`else`) and constant-trip-count
//! loops (`for i in range(N)`), and a small set of INC-specific *objects*
//! (`Table`, `Array`, `Hash`, `Seq`, `Sketch`, `Crypto`) and *primitives*
//! (`get`, `write`, `count`, `del`, `drop`, `forward`, `back`, `mirror`,
//! `copyto`) operate on device state and packets.
//!
//! This crate contains everything on the *source* side of the toolchain:
//!
//! * [`token`] / [`lexer`] — tokenizer with Python-style significant indentation;
//! * [`ast`] — the abstract syntax tree matching the Fig. 5 grammar;
//! * [`parser`] — recursive-descent parser producing the AST;
//! * [`modules`] — the built-in module library (object constructors, primitives,
//!   Python built-ins of Table 7) that the frontend links against;
//! * [`profile`] — configuration profiles (Fig. 6 / Table 10), parsed from JSON;
//! * [`templates`] — the provider-supplied templates: KVS (Fig. 15), MLAgg
//!   (Fig. 16), DQAcc, the count-min-sketch example of Fig. 1, and the
//!   sparse-gradient user program of Fig. 7;
//! * [`params`] — the learning-based template parameter setter of Appendix A.3.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod modules;
pub mod params;
pub mod parser;
pub mod profile;
pub mod templates;
pub mod token;

pub use ast::{BinOp, CmpOp as AstCmpOp, Expr, Program, Stmt, UnaryOp};
pub use error::LangError;
pub use lexer::Lexer;
pub use modules::{BuiltinFn, ModuleLibrary, ObjectCtor, PrimitiveKind};
pub use parser::parse_program;
pub use profile::{PacketFormat, PerformanceSpec, Profile, TrafficSpec};
pub use templates::{Template, TemplateKind};
pub use token::{Token, TokenKind};

/// Parse ClickINC source text into an AST program.
///
/// Convenience wrapper over [`Lexer`] + [`parse_program`].
pub fn parse(source: &str) -> Result<Program, LangError> {
    let tokens = Lexer::new(source).tokenize()?;
    parse_program(&tokens)
}

/// Count the lines of code of a ClickINC (or generated device) program the same
/// way the paper's Table 1 does: non-empty, non-comment lines.
pub fn lines_of_code(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#') && !l.starts_with("//"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_smoke_test() {
        let prog = parse("x = 1\nif x > 0:\n    y = x + 1\nelse:\n    y = 0\n").unwrap();
        assert_eq!(prog.stmts.len(), 2);
    }

    #[test]
    fn loc_counts_skip_blank_and_comment_lines() {
        let src = "# a comment\n\nx = 1\n   \ny = 2  \n// generated\n";
        assert_eq!(lines_of_code(src), 2);
        assert_eq!(lines_of_code(""), 0);
    }
}
