//! Frontend error type.

use clickinc_lang::LangError;
use std::fmt;

/// Errors raised while lowering a ClickINC program to IR.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// Lexer/parser error in the source program.
    Lang(LangError),
    /// A `for` loop whose trip count is not a compile-time constant
    /// (the paper reports this as an error, §4.2 pass 2).
    NonConstantLoop {
        /// The loop variable.
        var: String,
    },
    /// A name was used before being defined.
    UndefinedName(String),
    /// A call to an unknown function / module.
    UnknownCall(String),
    /// An object was used in a way incompatible with its kind.
    BadObjectUse {
        /// The object name.
        object: String,
        /// Description of the misuse.
        reason: String,
    },
    /// A construct that the ClickINC language does not support on the data
    /// plane (e.g. `while` loops, recursion, non-constant indexing).
    Unsupported(String),
    /// Wrong arguments to a constructor, primitive or builtin.
    BadArguments {
        /// The callee.
        callee: String,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Lang(e) => write!(f, "{e}"),
            FrontendError::NonConstantLoop { var } => {
                write!(f, "loop over `{var}` does not have a constant trip count")
            }
            FrontendError::UndefinedName(n) => write!(f, "use of undefined name `{n}`"),
            FrontendError::UnknownCall(n) => write!(f, "call to unknown function `{n}`"),
            FrontendError::BadObjectUse { object, reason } => {
                write!(f, "invalid use of object `{object}`: {reason}")
            }
            FrontendError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
            FrontendError::BadArguments { callee, reason } => {
                write!(f, "bad arguments to `{callee}`: {reason}")
            }
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<LangError> for FrontendError {
    fn from(e: LangError) -> Self {
        FrontendError::Lang(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = FrontendError::NonConstantLoop { var: "i".into() };
        assert!(e.to_string().contains('i'));
        let e = FrontendError::UnknownCall("mystery".into());
        assert!(e.to_string().contains("mystery"));
        let e =
            FrontendError::BadArguments { callee: "Array".into(), reason: "missing size".into() };
        assert!(e.to_string().contains("Array"));
    }

    #[test]
    fn lang_errors_convert() {
        let e: FrontendError = LangError::Semantic("oops".into()).into();
        assert!(matches!(e, FrontendError::Lang(_)));
    }
}
