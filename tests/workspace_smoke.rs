//! Workspace-wiring smoke test: every façade path a downstream user starts
//! from must resolve, and one template request must deploy end-to-end through
//! frontend → blockdag → placement → synthesis → backend → emulator.

use clickinc::topology::Topology;
use clickinc::{Controller, ServiceRequest};

#[test]
fn facade_reexports_resolve() {
    // The subsystem re-exports under `clickinc::*` point at the same crates
    // the workspace links directly; a type from one must be accepted by the
    // other.
    let model: clickinc::device::DeviceModel = clickinc_device::DeviceModel::tofino();
    let plane = clickinc::emulator::DevicePlane::new("SW0", model);
    assert!(!plane.has_program());
    assert!(clickinc::lang::lines_of_code("forward()\n") >= 1);
    let _cfg: clickinc::blockdag::BlockConfig = clickinc_blockdag::BlockConfig::default();
    let _ir: clickinc::ir::IrProgram = clickinc_ir::IrProgram::new("smoke");
}

#[test]
fn kvs_template_deploys_end_to_end_on_the_emulation_topology() {
    let mut controller = Controller::new(Topology::emulation_topology_all_tofino());
    let template = clickinc::lang::templates::kvs_template(
        "kvs_smoke",
        clickinc::lang::templates::KvsParams::default(),
    );
    let deployment = controller
        .deploy(ServiceRequest::from_template(template, &["pod0a"], "pod2b"))
        .expect("kvs template deploys")
        .clone();

    assert!(!deployment.plan.devices_used().is_empty(), "placement chose at least one device");
    assert!(!deployment.program.is_empty(), "the isolated IR is non-empty");
    assert!(!deployment.device_programs.is_empty(), "backend emitted device programs");
    assert_eq!(controller.active_users(), vec!["kvs_smoke"]);
    assert_eq!(controller.numeric_id_of("kvs_smoke"), Some(deployment.numeric_id));

    // The hosting planes actually hold the installed program.
    let devices = controller.devices_of("kvs_smoke");
    assert!(!devices.is_empty());
    assert!(devices
        .iter()
        .any(|d| controller.plane(*d).is_some_and(clickinc::emulator::DevicePlane::has_program)));

    // And removal releases the resources again.
    controller.remove("kvs_smoke").expect("removal succeeds");
    assert!(controller.active_users().is_empty());
    assert!((controller.remaining_resource_ratio() - 1.0).abs() < 1e-9);
}
