//! runtime_throughput — packets/sec through the sharded traffic engine.
//!
//! Eight co-resident MLAgg tenants share one ToR device.  With one shard,
//! every packet walks all eight tenants' guarded instruction streams on a
//! single worker; with N shards the tenants (and their state) are
//! partitioned, so each worker scans only its own residents — the
//! architectural win of tenant sharding, on top of thread parallelism on
//! multi-core hosts.
//!
//! Results are *appended* to the history in `BENCH_runtime.json` so the
//! repo's performance trajectory accumulates across PRs.  Environment
//! knobs (for the CI bench-trend step):
//!
//! * `RUNTIME_BENCH_SMOKE=1` — reduced configuration (fewer rounds, 1 vs 4
//!   shards only) suitable for a CI smoke run;
//! * `RUNTIME_BENCH_MIN_SPEEDUP=<x>` — exit non-zero if the best N-shard
//!   throughput regresses below `x`× the 1-shard baseline.

use clickinc_device::DeviceModel;
use clickinc_frontend::compile_source;
use clickinc_lang::templates::{mlagg_template, MlAggParams};
use clickinc_runtime::workload::{MixedWorkload, MlAggWorkload, MlAggWorkloadConfig, Workload};
use clickinc_runtime::{EngineConfig, TenantHop, TrafficEngine};
use clickinc_synthesis::isolate_user_program;
use serde::{Deserialize, Serialize};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

const TENANTS: usize = 8;
const WORKERS: usize = 4;
const DIMS: u32 = 16;
const HISTORY_CAP: usize = 100;

#[derive(Serialize, Deserialize)]
struct ShardResult {
    shards: usize,
    elapsed_ms: f64,
    packets_per_sec: f64,
}

/// One bench invocation: a row of the accumulated history.
#[derive(Serialize, Deserialize)]
struct RunEntry {
    #[serde(default)]
    unix_time_s: u64,
    #[serde(default)]
    smoke: bool,
    tenants: usize,
    packets: usize,
    results: Vec<ShardResult>,
    speedup_best_vs_one_shard: f64,
}

#[derive(Serialize, Deserialize)]
struct BenchHistory {
    bench: String,
    history: Vec<RunEntry>,
}

fn tenant_hops(name: &str, id: i64) -> Vec<TenantHop> {
    let t = mlagg_template(
        name,
        MlAggParams {
            dims: DIMS,
            num_workers: WORKERS as u32,
            num_aggregators: 4096,
            ..Default::default()
        },
    );
    let ir = compile_source(name, &t.source).expect("template compiles");
    vec![TenantHop {
        device: "tor0".to_string(),
        model: DeviceModel::tofino(),
        snippets: vec![isolate_user_program(&ir, name, id)],
    }]
}

fn run_once(shards: usize, rounds: usize) -> (f64, usize) {
    let engine = TrafficEngine::new(EngineConfig { shards, batch_size: 256 });
    let handle = engine.handle();
    let mut parts: Vec<Box<dyn Workload>> = Vec::new();
    for i in 0..TENANTS {
        let name = format!("tenant{i}");
        let id = i as i64 + 1;
        handle.add_tenant(&name, tenant_hops(&name, id));
        parts.push(Box::new(MlAggWorkload::new(MlAggWorkloadConfig {
            tenant: name,
            user_id: id,
            workers: WORKERS,
            rounds,
            dims: DIMS as usize,
            sparsity: 0.5,
            block_size: 8,
            rate_pps: 100_000_000.0,
            seed: 42 + i as u64,
        })));
    }
    let mut mixed = MixedWorkload::new(parts);

    let start = Instant::now();
    let sent = handle.run_workload(&mut mixed, usize::MAX, 256);
    handle.flush();
    let elapsed = start.elapsed().as_secs_f64();
    let outcome = engine.finish();
    let completed: u64 = outcome.telemetry.tenants.values().map(|t| t.completed).sum();
    assert_eq!(completed as usize, sent, "every packet completes");
    (elapsed, sent)
}

/// Load the accumulated history, migrating a pre-history single-report file
/// into its first entry.
fn load_history(path: &str) -> BenchHistory {
    let empty = || BenchHistory { bench: "runtime_throughput".to_string(), history: Vec::new() };
    let Ok(text) = std::fs::read_to_string(path) else { return empty() };
    if let Ok(history) = serde_json::from_str::<BenchHistory>(&text) {
        return history;
    }
    // legacy layout: the file was one report, not a history
    match serde_json::from_str::<RunEntry>(&text) {
        Ok(entry) => BenchHistory { bench: "runtime_throughput".to_string(), history: vec![entry] },
        Err(_) => empty(),
    }
}

fn main() {
    let smoke = std::env::var("RUNTIME_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let (rounds, shard_counts): (usize, &[usize]) =
        if smoke { (400, &[1, 4]) } else { (1500, &[1, 2, 4, 8]) };

    println!(
        "== runtime_throughput: {TENANTS} co-resident MLAgg tenants, 1 vs N shards{} ==",
        if smoke { " (smoke)" } else { "" }
    );
    println!("{:>8} {:>12} {:>16}", "shards", "elapsed", "packets/sec");
    let mut results = Vec::new();
    for &shards in shard_counts {
        // best of two runs to shave scheduler noise
        let (mut elapsed, mut packets) = run_once(shards, rounds);
        let (e2, p2) = run_once(shards, rounds);
        if e2 < elapsed {
            elapsed = e2;
            packets = p2;
        }
        let pps = packets as f64 / elapsed.max(1e-9);
        println!("{shards:>8} {:>10.1}ms {pps:>16.0}", elapsed * 1e3);
        results.push(ShardResult { shards, elapsed_ms: elapsed * 1e3, packets_per_sec: pps });
    }

    let one = results[0].packets_per_sec;
    let best = results.iter().map(|r| r.packets_per_sec).fold(0.0f64, f64::max);
    let speedup = best / one.max(1e-9);
    println!(
        "best N-shard throughput is {speedup:.2}x the 1-shard baseline ({})",
        if speedup > 1.0 { "sharding wins" } else { "REGRESSION" }
    );

    // append to the accumulated history at the workspace root
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    let mut report = load_history(path);
    report.history.push(RunEntry {
        unix_time_s: SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0),
        smoke,
        tenants: TENANTS,
        packets: TENANTS * rounds * WORKERS,
        results,
        speedup_best_vs_one_shard: speedup,
    });
    if report.history.len() > HISTORY_CAP {
        let drop = report.history.len() - HISTORY_CAP;
        report.history.drain(..drop);
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, &json).expect("BENCH_runtime.json written");
    println!("appended run #{} to BENCH_runtime.json", report.history.len());

    // optional regression gate for the CI bench-trend step
    if let Ok(min) = std::env::var("RUNTIME_BENCH_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("RUNTIME_BENCH_MIN_SPEEDUP is a number");
        if speedup < min {
            eprintln!(
                "FAIL: speedup_best_vs_one_shard {speedup:.2} regressed below the {min:.2}x gate"
            );
            std::process::exit(1);
        }
        println!("bench-trend gate passed: {speedup:.2}x >= {min:.2}x");
    }
}
