//! Errors produced by the lexer, parser and profile loader.

use std::fmt;

/// A source location (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl Span {
    /// Create a span.
    pub fn new(line: usize, col: usize) -> Span {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from the ClickINC language toolchain front half.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    /// The lexer met a character it does not understand.
    UnexpectedChar {
        /// The character.
        ch: char,
        /// Where it was found.
        span: Span,
    },
    /// Inconsistent indentation (dedent to a level never used).
    BadIndentation {
        /// Where it was found.
        span: Span,
    },
    /// An unterminated string literal.
    UnterminatedString {
        /// Where the string started.
        span: Span,
    },
    /// The parser met an unexpected token.
    UnexpectedToken {
        /// What was found.
        found: String,
        /// What was expected.
        expected: String,
        /// Where.
        span: Span,
    },
    /// The parser reached the end of input prematurely.
    UnexpectedEof {
        /// What was expected.
        expected: String,
    },
    /// A profile document is malformed.
    BadProfile(String),
    /// Generic semantic error raised while resolving modules.
    Semantic(String),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::UnexpectedChar { ch, span } => {
                write!(f, "unexpected character `{ch}` at {span}")
            }
            LangError::BadIndentation { span } => write!(f, "inconsistent indentation at {span}"),
            LangError::UnterminatedString { span } => {
                write!(f, "unterminated string literal starting at {span}")
            }
            LangError::UnexpectedToken { found, expected, span } => {
                write!(f, "expected {expected} but found `{found}` at {span}")
            }
            LangError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            LangError::BadProfile(msg) => write!(f, "bad configuration profile: {msg}"),
            LangError::Semantic(msg) => write!(f, "semantic error: {msg}"),
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_render_line_and_col() {
        assert_eq!(Span::new(3, 7).to_string(), "3:7");
    }

    #[test]
    fn errors_render_context() {
        let e = LangError::UnexpectedChar { ch: '$', span: Span::new(1, 2) };
        assert!(e.to_string().contains('$'));
        let e = LangError::UnexpectedToken {
            found: ")".into(),
            expected: "an expression".into(),
            span: Span::new(2, 5),
        };
        assert!(e.to_string().contains("an expression"));
        assert!(LangError::UnexpectedEof { expected: "`:`".into() }.to_string().contains("`:`"));
    }
}
