//! Engine-backed scenario drivers: the paper's KVS and sparse-MLAgg
//! workloads (Figs. 7/13) deployed through the [`ClickIncService`] facade
//! and served by the sharded traffic engine.
//!
//! The single-threaded scenario loop in `clickinc-emulator` remains as the
//! path-shape ablation (it is what sweeps the five Fig. 13 device chains);
//! *this* module is the default serving path: programs are solved by the
//! service's planner (the batch fans out over worker threads), admitted
//! under a provider resource-floor policy, committed transactionally,
//! mirrored onto the engine's shards, and loaded with the open-loop seeded
//! workload generators — no manual hook wiring anywhere.

use clickinc::{ClickIncError, ClickIncService, ResourceFloor, ServiceRequest};
use clickinc_emulator::kvs_backend_value;
use clickinc_ir::Value;
use clickinc_lang::templates::{kvs_template, mlagg_template, KvsParams, MlAggParams};
use clickinc_runtime::workload::{
    KvsWorkload, KvsWorkloadConfig, MlAggWorkload, MlAggWorkloadConfig,
};
use clickinc_runtime::{EngineConfig, OverloadPolicy, ShardingMode, TenantStats};
use clickinc_topology::Topology;
use std::collections::BTreeMap;

/// Sizing of the engine-served KVS + MLAgg scenario pair.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Engine shard worker threads.
    pub shards: usize,
    /// Packets per device-queue batch.
    pub batch_size: usize,
    /// KVS requests to serve.
    pub kvs_requests: usize,
    /// KVS key universe size.
    pub kvs_keys: usize,
    /// KVS Zipf skew exponent.
    pub kvs_skew: f64,
    /// Hot keys pre-installed in the in-network cache.
    pub hot_keys: i64,
    /// Gradient-aggregation rounds.
    pub agg_rounds: usize,
    /// Workers contributing per aggregation round.
    pub agg_workers: usize,
    /// Parameter-vector dimensions per gradient packet.
    pub dims: u32,
    /// Offered load per tenant in packets per second (virtual clock).
    pub rate_pps: f64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Admission floor: the batch is refused (typed
    /// [`ClickIncError::Rejected`]) if committing would push the
    /// network-wide remaining resource ratio below this value.
    pub admission_floor: f64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            shards: 4,
            batch_size: 128,
            kvs_requests: 2000,
            kvs_keys: 1000,
            kvs_skew: 1.1,
            hot_keys: 64,
            agg_rounds: 200,
            agg_workers: 4,
            dims: 16,
            rate_pps: 5_000_000.0,
            seed: 17,
            admission_floor: 0.05,
        }
    }
}

/// What the engine-served scenario pair leaves behind.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Telemetry of the KVS tenant (`kvs_srv`).
    pub kvs: TenantStats,
    /// Telemetry of the MLAgg tenant (`mlagg_srv`).
    pub mlagg: TenantStats,
    /// The sharding mode the service derived per tenant from its deployed
    /// program's state profile.
    pub modes: BTreeMap<String, ShardingMode>,
    /// Final object-store fingerprints per device, merged across shards.
    pub store_fingerprints: BTreeMap<String, u64>,
}

/// Deploy the paper's KVS and sparse-MLAgg applications through the
/// [`ClickIncService`] facade (one transactional batch) and serve both
/// seeded open-loop workloads on the sharded engine.
///
/// Returns per-tenant telemetry and the final store fingerprints; a fixed
/// config produces bit-identical reports regardless of the shard count.
pub fn serve_fig13_workloads(config: &ServingConfig) -> Result<ServingReport, ClickIncError> {
    let service = ClickIncService::with_config(
        Topology::emulation_topology_all_tofino(),
        EngineConfig { shards: config.shards, batch_size: config.batch_size, ..Default::default() },
    )?;

    // both applications land (or neither does): one all-or-nothing batch
    // through the planner — the two solves fan out over worker threads, and
    // every commit passes the provider's resource-floor admission policy
    let planner = service
        .planner()
        .with_policy(ResourceFloor { min_remaining_ratio: config.admission_floor });
    let handles = planner.deploy_all(vec![
        ServiceRequest::builder("kvs_srv")
            .template(kvs_template(
                "kvs_srv",
                KvsParams { cache_depth: 2000, ..Default::default() },
            ))
            .from_("pod0a")
            .from_("pod1a")
            .to("pod2b")
            .build()?,
        ServiceRequest::builder("mlagg_srv")
            .template(mlagg_template(
                "mlagg_srv",
                MlAggParams {
                    dims: config.dims,
                    num_workers: config.agg_workers as u32,
                    num_aggregators: 1024,
                    is_float: false,
                },
            ))
            .from_("pod0b")
            .from_("pod1b")
            .to("pod2a")
            .build()?,
    ])?;
    let (kvs, mlagg) = (&handles[0], &handles[1]);

    // pre-populate the isolation-renamed cache wherever it was placed
    for key in 0..config.hot_keys {
        kvs.populate_table(
            "kvs_srv_cache",
            vec![Value::Int(key)],
            vec![Value::Int(kvs_backend_value(key))],
        );
    }

    let mut kvs_wl = KvsWorkload::new(KvsWorkloadConfig {
        tenant: kvs.user().to_string(),
        user_id: kvs.numeric_id(),
        keys: config.kvs_keys,
        skew: config.kvs_skew,
        requests: config.kvs_requests,
        rate_pps: config.rate_pps,
        seed: config.seed,
    });
    let mut agg_wl = MlAggWorkload::new(MlAggWorkloadConfig {
        tenant: mlagg.user().to_string(),
        user_id: mlagg.numeric_id(),
        workers: config.agg_workers,
        rounds: config.agg_rounds,
        dims: config.dims as usize,
        sparsity: 0.5,
        block_size: 8,
        rate_pps: config.rate_pps,
        seed: config.seed + 1,
    });
    kvs.run_workload(&mut kvs_wl, usize::MAX, config.batch_size);
    mlagg.run_workload(&mut agg_wl, usize::MAX, config.batch_size);
    service.flush();

    let modes: BTreeMap<String, ShardingMode> =
        handles.iter().map(|h| (h.user().to_string(), h.sharding_mode().clone())).collect();
    let outcome = service.finish();
    let stats = |user: &str| {
        outcome.telemetry.tenant(user).cloned().unwrap_or_else(|| panic!("{user} was served"))
    };
    Ok(ServingReport {
        kvs: stats("kvs_srv"),
        mlagg: stats("mlagg_srv"),
        modes,
        store_fingerprints: outcome
            .stores
            .iter()
            .map(|(device, store)| (device.clone(), store.fingerprint()))
            .collect(),
    })
}

/// Sizing of the overload scenario: a hot, flow-sharded KVS tenant driven
/// into saturation against deliberately small bounded ingress queues, next
/// to a background MLAgg tenant.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Engine shard worker threads.
    pub shards: usize,
    /// Packets per inject batch and per device-queue drain batch.  Larger
    /// than `queue_capacity` by design, so every full-size inject overruns
    /// the bound and the overload policy has to act.
    pub batch_size: usize,
    /// Per-shard bound on in-flight packets.
    pub queue_capacity: usize,
    /// What the engine does at the bound.
    pub overload: OverloadPolicy,
    /// Requests offered by the hot tenant.
    pub hot_requests: usize,
    /// Hot tenant's key universe.
    pub hot_keys: usize,
    /// Hot keys pre-installed in the in-network cache.
    pub cached_keys: i64,
    /// Offered hot-tenant load in packets per second (virtual clock).
    pub hot_rate_pps: f64,
    /// Background gradient-aggregation rounds.
    pub background_rounds: usize,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            shards: 2,
            batch_size: 256,
            queue_capacity: 96,
            overload: OverloadPolicy::DropTail,
            hot_requests: 4000,
            hot_keys: 2000,
            cached_keys: 128,
            hot_rate_pps: 50_000_000.0,
            background_rounds: 100,
            seed: 23,
        }
    }
}

/// What the overload scenario leaves behind: per-tenant telemetry including
/// the congestion counters, the admission split, and how many shards the hot
/// tenant actually spread across.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadReport {
    /// Telemetry of the hot tenant (`hot_kvs`).
    pub hot: TenantStats,
    /// Telemetry of the background tenant (`bg_agg`).
    pub background: TenantStats,
    /// The sharding mode the service derived for the hot tenant.
    pub hot_mode: ShardingMode,
    /// Packets pulled from the generators.
    pub offered: usize,
    /// Packets the bounded queues admitted.
    pub admitted: usize,
    /// Packets shed under the overload policy.
    pub shed: usize,
    /// Shards that carried hot-tenant traffic (non-zero per-shard packets).
    pub shards_utilized: usize,
}

/// Drive a hot-tenant mix into saturation: a flow-sharded KVS tenant offers
/// far more traffic than the bounded per-shard ingress queues hold, next to
/// a moderate background MLAgg tenant.  Under
/// [`OverloadPolicy::DropTail`] the overrun is shed and reported; under
/// [`OverloadPolicy::Backpressure`] the open-loop generator is throttled
/// against the credit budget instead.  Either way the overload is *modeled*:
/// admitted/shed splits come back from the drivers and per-tenant
/// `shed_packets` / `backpressure_waits` / `queue_depth_hwm` appear in the
/// telemetry.
pub fn serve_overload_scenario(config: &OverloadConfig) -> Result<OverloadReport, ClickIncError> {
    let service = ClickIncService::with_config(
        Topology::emulation_topology_all_tofino(),
        EngineConfig {
            shards: config.shards,
            batch_size: config.batch_size,
            queue_capacity: config.queue_capacity,
            overload: config.overload.clone(),
            ..Default::default()
        },
    )?;
    let handles = service.deploy_all(vec![
        ServiceRequest::builder("hot_kvs")
            .template(kvs_template(
                "hot_kvs",
                KvsParams { cache_depth: 2000, ..Default::default() },
            ))
            .from_("pod0a")
            .from_("pod1a")
            .to("pod2b")
            .build()?,
        ServiceRequest::builder("bg_agg")
            .template(mlagg_template(
                "bg_agg",
                MlAggParams { dims: 16, num_workers: 4, num_aggregators: 1024, is_float: false },
            ))
            .from_("pod0b")
            .from_("pod1b")
            .to("pod2a")
            .build()?,
    ])?;
    let (hot, background) = (&handles[0], &handles[1]);

    for key in 0..config.cached_keys {
        hot.populate_table(
            "hot_kvs_cache",
            vec![Value::Int(key)],
            vec![Value::Int(kvs_backend_value(key))],
        );
    }

    let mut hot_wl = KvsWorkload::new(KvsWorkloadConfig {
        tenant: hot.user().to_string(),
        user_id: hot.numeric_id(),
        keys: config.hot_keys,
        skew: 1.1,
        requests: config.hot_requests,
        rate_pps: config.hot_rate_pps,
        seed: config.seed,
    });
    let mut bg_wl = MlAggWorkload::new(MlAggWorkloadConfig {
        tenant: background.user().to_string(),
        user_id: background.numeric_id(),
        workers: 4,
        rounds: config.background_rounds,
        dims: 16,
        sparsity: 0.5,
        block_size: 8,
        rate_pps: config.hot_rate_pps / 10.0,
        seed: config.seed + 1,
    });
    // the hot tenant floods the bounded queues; the background tenant rides
    // along in the same saturated engine
    let hot_report = hot.run_workload(&mut hot_wl, usize::MAX, config.batch_size);
    let bg_report = background.run_workload(&mut bg_wl, usize::MAX, config.batch_size);
    service.flush();

    let hot_mode = hot.sharding_mode().clone();
    let outcome = service.finish();
    let stats = |user: &str| {
        outcome.telemetry.tenant(user).cloned().unwrap_or_else(|| panic!("{user} was served"))
    };
    let hot_stats = stats("hot_kvs");
    let shards_utilized = hot_stats.per_shard_packets.iter().filter(|&&p| p > 0).count();
    Ok(OverloadReport {
        hot: hot_stats,
        background: stats("bg_agg"),
        hot_mode,
        offered: hot_report.generated + bg_report.generated,
        admitted: hot_report.admitted + bg_report.admitted,
        shed: hot_report.shed + bg_report.shed,
        shards_utilized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(shards: usize) -> ServingConfig {
        ServingConfig {
            shards,
            batch_size: 32,
            kvs_requests: 600,
            agg_rounds: 60,
            ..Default::default()
        }
    }

    /// Clear the per-counter-block vector so reports taken at different
    /// shard counts become comparable: a flow-sharded tenant has one block
    /// per shard, so the vector's *length* tracks the engine sizing even
    /// though every aggregate it feeds is invariant.
    fn normalized(mut report: ServingReport) -> ServingReport {
        report.kvs.per_shard_packets.clear();
        report.mlagg.per_shard_packets.clear();
        report
    }

    #[test]
    fn the_engine_serves_both_applications_end_to_end() {
        let report = serve_fig13_workloads(&small(2)).expect("scenario serves");
        assert_eq!(report.kvs.packets, 600);
        assert_eq!(report.kvs.completed, 600);
        assert!(
            report.kvs.hit_ratio > 0.3,
            "hot keys answered in-network: {}",
            report.kvs.hit_ratio
        );
        assert!(report.mlagg.hits > 0, "completed aggregates bounce back");
        assert!(report.mlagg.drops > 0, "partial aggregates are absorbed in-network");
        assert!(report.kvs.goodput_gbps > 0.0 && report.mlagg.goodput_gbps > 0.0);
        assert_eq!(report.kvs.shed_packets, 0, "ample queues shed nothing");
        assert!(!report.store_fingerprints.is_empty());
    }

    #[test]
    fn an_impossible_admission_floor_rejects_the_whole_batch() {
        let config = ServingConfig { admission_floor: 1.0, ..small(2) };
        let err = serve_fig13_workloads(&config).map(|_| ()).unwrap_err();
        assert!(
            matches!(&err, ClickIncError::Rejected { policy, .. } if policy == "resource_floor"),
            "got {err}"
        );
    }

    #[test]
    fn served_scenario_is_invariant_in_the_shard_count() {
        let one = serve_fig13_workloads(&small(1)).expect("1 shard serves");
        let four = serve_fig13_workloads(&small(4)).expect("4 shards serve");
        assert_eq!(
            normalized(one),
            normalized(four),
            "sharding is an optimization, not a semantics change"
        );
    }

    #[test]
    fn droptail_overload_sheds_observably_and_serves_whatever_was_admitted() {
        let config =
            OverloadConfig { hot_requests: 2000, background_rounds: 40, ..Default::default() };
        let report = serve_overload_scenario(&config).expect("overload scenario serves");
        assert_eq!(report.offered, 2000 + 40 * 4);
        assert_eq!(report.admitted + report.shed, report.offered, "every packet is accounted");
        // the inject batch (256) exceeds the per-shard bound (96), so
        // drop-tail must shed — and the sheds are visible both in the driver
        // report and in the per-tenant telemetry
        assert!(report.shed > 0, "saturation sheds under drop-tail");
        assert!(report.hot.shed_packets > 0, "sheds surface in the hot tenant's telemetry");
        assert_eq!(
            report.hot.shed_packets + report.background.shed_packets,
            report.shed as u64,
            "driver-side and telemetry-side sheds agree"
        );
        // admitted traffic still completes exactly
        assert_eq!(report.hot.completed, report.hot.packets);
        assert_eq!(report.background.completed, report.background.packets);
        // the hot tenant is flow-sharded by its request key and really uses
        // more than one shard
        assert!(
            report.hot_mode.is_by_flow(),
            "KVS state profile flow-shards: {:?}",
            report.hot_mode
        );
        assert!(report.shards_utilized > 1, "a single hot tenant spreads past one shard");
    }

    #[test]
    fn backpressure_throttles_the_generator_instead_of_shedding() {
        let config = OverloadConfig {
            overload: OverloadPolicy::Backpressure { credits: 64 },
            hot_requests: 2000,
            background_rounds: 40,
            ..Default::default()
        };
        let report = serve_overload_scenario(&config).expect("overload scenario serves");
        assert_eq!(report.shed, 0, "credits absorb the whole stream");
        assert_eq!(report.admitted, report.offered);
        assert!(
            report.hot.backpressure_waits > 0,
            "the open-loop generator was throttled at least once"
        );
        assert_eq!(report.hot.completed, report.hot.packets);
        assert_eq!(report.hot.shed_packets, 0);
    }
}
