//! Per-tenant telemetry: lock-free shard-side counters, merged snapshots.
//!
//! Every shard worker owns an [`TenantCounters`] per resident tenant and
//! updates it with relaxed atomic adds on the packet hot path — no locks, no
//! cross-shard cache-line sharing.  The engine's snapshot path walks a small
//! registry (one mutex acquisition per snapshot, never per packet) and merges
//! the per-shard counters into immutable [`TenantStats`] values that derive
//! `serde::Serialize` for JSON export.
//!
//! Latency percentiles come from a 64-bucket log₂ histogram: deterministic,
//! constant-size, and mergeable by addition.  Goodput is computed against the
//! workload's *virtual* clock (open-loop arrival time + accumulated device
//! latency), so identical workloads report identical goodput regardless of
//! how many OS threads the engine happens to run on.

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ latency-histogram buckets (covers 1 ns … ~18 s).
pub const HIST_BUCKETS: usize = 64;

/// Lock-free counters for one tenant on one shard.  All updates are relaxed
/// atomics; reads may race with traffic and observe a consistent-enough
/// snapshot (exact once the engine is flushed).
#[derive(Debug)]
pub struct TenantCounters {
    /// Packets injected for the tenant.
    pub packets: AtomicU64,
    /// Packets that reached a terminal outcome (hit, drop or server).
    pub completed: AtomicU64,
    /// Packets answered in-network (a device bounced them back).
    pub hits: AtomicU64,
    /// Packets absorbed by a device (aggregated or filtered).
    pub drops: AtomicU64,
    /// Packets that traversed every hop and reached the destination server.
    pub to_server: AtomicU64,
    /// Wire bytes that crossed the final (server) link.
    pub server_bytes: AtomicU64,
    /// Application payload bytes carried by completed packets.
    pub payload_bytes: AtomicU64,
    /// Sum of per-packet end-to-end latency in nanoseconds.
    pub latency_sum_ns: AtomicU64,
    /// Virtual completion clock: max(arrival + latency) over completions.
    pub vtime_max_ns: AtomicU64,
    /// log₂ latency histogram.
    pub hist: [AtomicU64; HIST_BUCKETS],
    /// Wire bytes entering each hop (`route.len()` hops) plus the final
    /// server link (last entry).
    pub link_bytes: Vec<AtomicU64>,
    /// Packets refused at ingress because the shard's bounded queue was full
    /// (drop-tail) or the injector's backpressure credits ran out.
    pub shed: AtomicU64,
    /// Times an injector stalled waiting for the shard to drain
    /// (backpressure credit cycles).
    pub backpressure_waits: AtomicU64,
    /// High-water mark of the owning shard's in-flight packet depth observed
    /// by this tenant's injections.
    pub queue_depth_hwm: AtomicU64,
    /// Packets of this tenant currently in flight on this shard (admitted,
    /// not yet at a terminal outcome).  Transient gauge — the engine's
    /// per-tenant credit-budget admission sums it across the tenant's shard
    /// blocks; it drains back to zero at every flush.
    pub in_flight: AtomicU64,
    /// Packets lost to an injected fault (a `Down` device swallowed them or
    /// a `Flaky` device dropped them).  Distinct from in-network `drops`
    /// (program semantics) and `shed` (ingress overload).
    pub fault_lost: AtomicU64,
    /// Virtual arrival time of the *first* packet lost to a fault
    /// (`u64::MAX` until a fault loss occurs) — the start of the tenant's
    /// observed fault window.
    pub fault_first_vtime_ns: AtomicU64,
    /// Virtual arrival time of the *first* completion this counter block
    /// ever recorded (`u64::MAX` until one completes).  Blocks registered by
    /// a post-fault re-placement use it to date the tenant's recovery.
    pub vtime_first_ns: AtomicU64,
}

impl TenantCounters {
    /// Counters for a tenant whose route has `hops` programmable hops.
    pub fn new(hops: usize) -> TenantCounters {
        TenantCounters {
            packets: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            to_server: AtomicU64::new(0),
            server_bytes: AtomicU64::new(0),
            payload_bytes: AtomicU64::new(0),
            latency_sum_ns: AtomicU64::new(0),
            vtime_max_ns: AtomicU64::new(0),
            hist: std::array::from_fn(|_| AtomicU64::new(0)),
            link_bytes: (0..=hops).map(|_| AtomicU64::new(0)).collect(),
            shed: AtomicU64::new(0),
            backpressure_waits: AtomicU64::new(0),
            queue_depth_hwm: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            fault_lost: AtomicU64::new(0),
            fault_first_vtime_ns: AtomicU64::new(u64::MAX),
            vtime_first_ns: AtomicU64::new(u64::MAX),
        }
    }

    /// Record a terminal outcome: end-to-end latency and virtual completion
    /// time.
    pub fn record_completion(&self, latency_ns: f64, vtime_ns: u64) {
        let lat = latency_ns.round().max(0.0) as u64;
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency_sum_ns.fetch_add(lat, Ordering::Relaxed);
        self.hist[bucket_of(lat)].fetch_add(1, Ordering::Relaxed);
        self.vtime_max_ns.fetch_max(vtime_ns.saturating_add(lat), Ordering::Relaxed);
        self.vtime_first_ns.fetch_min(vtime_ns, Ordering::Relaxed);
    }

    /// Record a packet lost to an injected fault at its virtual arrival
    /// time.
    pub fn note_fault_loss(&self, vtime_ns: u64) {
        self.fault_lost.fetch_add(1, Ordering::Relaxed);
        self.fault_first_vtime_ns.fetch_min(vtime_ns, Ordering::Relaxed);
    }
}

/// Histogram bucket for a latency in nanoseconds.
fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

/// Representative latency of a bucket (geometric midpoint of its range).
fn bucket_value(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        1 => 1,
        b => (1u64 << (b - 1)) + (1u64 << (b - 2)),
    }
}

/// Immutable per-tenant statistics, merged across shards.
///
/// Equality deliberately ignores [`queue_depth_hwm`](TenantStats::queue_depth_hwm)
/// and [`backpressure_waits`](TenantStats::backpressure_waits): both observe
/// *wall-clock* drain timing (how far a worker thread happened to lag its
/// injector), so they vary run to run even for a fixed seed.  It also
/// ignores [`sharding_mode`](TenantStats::sharding_mode) and
/// [`queue_budget`](TenantStats::queue_budget), which describe deployment
/// configuration rather than traffic outcomes (the adaptive-runtime identity
/// tests compare a resharded run against a static one).  Every other field —
/// including [`shed_packets`](TenantStats::shed_packets), which is
/// deterministic whenever the queue bound is deterministic — participates in
/// the bit-identity the invariance tests assert.
#[derive(Debug, Clone, Serialize)]
pub struct TenantStats {
    /// Tenant (user) id.
    pub tenant: String,
    /// Packets injected.
    pub packets: u64,
    /// Packets that reached a terminal outcome.
    pub completed: u64,
    /// Packets answered in-network.
    pub hits: u64,
    /// Packets absorbed in-network.
    pub drops: u64,
    /// Packets that reached the destination server.
    pub to_server: u64,
    /// In-network hit ratio: `hits / completed`.
    pub hit_ratio: f64,
    /// Application payload bytes carried by completed packets.
    pub payload_bytes: u64,
    /// Wire bytes that crossed the final (server) link.
    pub server_bytes: u64,
    /// Payload bits per virtual nanosecond — Gbps against the workload clock.
    pub goodput_gbps: f64,
    /// Mean end-to-end latency in nanoseconds.
    pub latency_mean_ns: f64,
    /// Median latency (log-bucket resolution).
    pub latency_p50_ns: u64,
    /// 99th-percentile latency (log-bucket resolution).
    pub latency_p99_ns: u64,
    /// Wire bytes entering each hop, final server link last.
    pub link_bytes: Vec<u64>,
    /// Packets refused at ingress (bounded-queue drop-tail or backpressure
    /// credit exhaustion).  Schema-stable JSON field name.
    pub shed_packets: u64,
    /// Injector stalls waiting for a shard to drain (backpressure cycles).
    /// Timing-dependent; excluded from equality.
    pub backpressure_waits: u64,
    /// Maximum shard in-flight packet depth observed at this tenant's
    /// injections, across shards.  Timing-dependent; excluded from equality.
    pub queue_depth_hwm: u64,
    /// Packets injected per counter block, in shard-registration order: one
    /// entry for a `ByTenant` tenant, one per shard for a flow-sharded
    /// tenant (a live reshard appends the new mode's blocks, so the vector
    /// also records pre-reshard history).  Non-zero entries = counter blocks
    /// the tenant actually utilized.
    pub per_shard_packets: Vec<u64>,
    /// The tenant's *active* [`ShardingMode`](crate::tenant::ShardingMode)
    /// label (`"by_tenant"`, `"by_flow"`, `"by_flow:<fields>"`) — so
    /// operators can watch the adaptive runtime reshard.  Deployment
    /// configuration, not a traffic outcome; excluded from equality.
    pub sharding_mode: String,
    /// The tenant's active ingress credit budget (max in-flight packets
    /// across shards).  Deployment configuration; excluded from equality.
    pub queue_budget: u64,
    /// Packets lost to injected faults (dead or flaky devices) — never
    /// conflated with in-network `drops` or ingress `shed_packets`.  The
    /// fault schedule rides the virtual clock, so this is deterministic and
    /// participates in equality (co-residents of a failed device must show
    /// exactly zero).
    pub fault_lost_packets: u64,
    /// Virtual arrival time of the first packet lost to a fault (0 when the
    /// tenant never lost one).
    pub fault_vtime_ns: u64,
    /// Virtual arrival time of the first packet served *after* the tenant
    /// was re-placed past its fault window (0 until recovery).  Dated from
    /// the counter blocks the re-placement registered.
    pub recovery_vtime_ns: u64,
    /// Virtual-clock time from first fault loss to first post-re-placement
    /// service — 0 while unrecovered or never faulted.
    pub time_to_recovery_ns: u64,
}

impl PartialEq for TenantStats {
    fn eq(&self, other: &Self) -> bool {
        self.tenant == other.tenant
            && self.packets == other.packets
            && self.completed == other.completed
            && self.hits == other.hits
            && self.drops == other.drops
            && self.to_server == other.to_server
            && self.hit_ratio == other.hit_ratio
            && self.payload_bytes == other.payload_bytes
            && self.server_bytes == other.server_bytes
            && self.goodput_gbps == other.goodput_gbps
            && self.latency_mean_ns == other.latency_mean_ns
            && self.latency_p50_ns == other.latency_p50_ns
            && self.latency_p99_ns == other.latency_p99_ns
            && self.link_bytes == other.link_bytes
            && self.shed_packets == other.shed_packets
            && self.per_shard_packets == other.per_shard_packets
            && self.fault_lost_packets == other.fault_lost_packets
            && self.fault_vtime_ns == other.fault_vtime_ns
            && self.recovery_vtime_ns == other.recovery_vtime_ns
            && self.time_to_recovery_ns == other.time_to_recovery_ns
    }
}

impl TenantStats {
    /// Merge one tenant's per-shard counters into a stats value.
    pub fn merge(tenant: &str, parts: &[Arc<TenantCounters>]) -> TenantStats {
        let sum = |f: &dyn Fn(&TenantCounters) -> &AtomicU64| -> u64 {
            parts.iter().map(|c| f(c).load(Ordering::Relaxed)).sum()
        };
        let packets = sum(&|c| &c.packets);
        let completed = sum(&|c| &c.completed);
        let hits = sum(&|c| &c.hits);
        let drops = sum(&|c| &c.drops);
        let to_server = sum(&|c| &c.to_server);
        let payload_bytes = sum(&|c| &c.payload_bytes);
        let server_bytes = sum(&|c| &c.server_bytes);
        let latency_sum = sum(&|c| &c.latency_sum_ns);
        let shed_packets = sum(&|c| &c.shed);
        let backpressure_waits = sum(&|c| &c.backpressure_waits);
        let vtime_max =
            parts.iter().map(|c| c.vtime_max_ns.load(Ordering::Relaxed)).max().unwrap_or(0);
        let queue_depth_hwm =
            parts.iter().map(|c| c.queue_depth_hwm.load(Ordering::Relaxed)).max().unwrap_or(0);
        let per_shard_packets: Vec<u64> =
            parts.iter().map(|c| c.packets.load(Ordering::Relaxed)).collect();
        let fault_lost_packets = sum(&|c| &c.fault_lost);
        let fault_vtime_raw = parts
            .iter()
            .map(|c| c.fault_first_vtime_ns.load(Ordering::Relaxed))
            .min()
            .unwrap_or(u64::MAX);
        // recovery is dated from the counter blocks registered *after* the
        // last block that observed a fault loss: a post-fault re-placement
        // installs the tenant with fresh blocks, so their earliest served
        // arrival is the moment the tenant was serving again
        let recovery_vtime_raw = parts
            .iter()
            .rposition(|c| c.fault_lost.load(Ordering::Relaxed) > 0)
            .map(|last_faulted| {
                parts[last_faulted + 1..]
                    .iter()
                    .map(|c| c.vtime_first_ns.load(Ordering::Relaxed))
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .unwrap_or(u64::MAX);
        let fault_vtime_ns = if fault_vtime_raw == u64::MAX { 0 } else { fault_vtime_raw };
        let recovery_vtime_ns = if recovery_vtime_raw == u64::MAX { 0 } else { recovery_vtime_raw };
        let time_to_recovery_ns = if fault_vtime_raw == u64::MAX || recovery_vtime_raw == u64::MAX {
            0
        } else {
            recovery_vtime_raw.saturating_sub(fault_vtime_raw)
        };

        let mut hist = [0u64; HIST_BUCKETS];
        for c in parts {
            for (slot, bucket) in hist.iter_mut().zip(c.hist.iter()) {
                *slot += bucket.load(Ordering::Relaxed);
            }
        }
        let links = parts.iter().map(|c| c.link_bytes.len()).max().unwrap_or(0);
        let mut link_bytes = vec![0u64; links];
        for c in parts {
            for (slot, link) in link_bytes.iter_mut().zip(c.link_bytes.iter()) {
                *slot += link.load(Ordering::Relaxed);
            }
        }

        TenantStats {
            tenant: tenant.to_string(),
            packets,
            completed,
            hits,
            drops,
            to_server,
            hit_ratio: if completed == 0 { 0.0 } else { hits as f64 / completed as f64 },
            payload_bytes,
            server_bytes,
            goodput_gbps: if vtime_max == 0 {
                0.0
            } else {
                payload_bytes as f64 * 8.0 / vtime_max as f64
            },
            latency_mean_ns: if completed == 0 {
                0.0
            } else {
                latency_sum as f64 / completed as f64
            },
            latency_p50_ns: percentile(&hist, completed, 0.50),
            latency_p99_ns: percentile(&hist, completed, 0.99),
            link_bytes,
            shed_packets,
            backpressure_waits,
            queue_depth_hwm,
            per_shard_packets,
            // stamped from the registry's tenant metadata by `snapshot`
            sharding_mode: String::new(),
            queue_budget: 0,
            fault_lost_packets,
            fault_vtime_ns,
            recovery_vtime_ns,
            time_to_recovery_ns,
        }
    }

    /// The largest virtual completion clock across this tenant's counter
    /// blocks (arrival + accumulated latency of the latest completion).
    fn vtime_max(parts: &[Arc<TenantCounters>]) -> u64 {
        parts.iter().map(|c| c.vtime_max_ns.load(Ordering::Relaxed)).max().unwrap_or(0)
    }
}

/// Percentile over a merged histogram.
fn percentile(hist: &[u64; HIST_BUCKETS], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (bucket, count) in hist.iter().enumerate() {
        seen += count;
        if seen >= target {
            return bucket_value(bucket);
        }
    }
    bucket_value(HIST_BUCKETS - 1)
}

/// A merged snapshot of every tenant the engine has ever hosted.
///
/// Each snapshot is stamped with a monotonically increasing
/// [`snapshot_seq`](TelemetryReport::snapshot_seq) and the virtual clock it
/// observed, so a control loop computing deltas between two snapshots can
/// order them and normalize by virtual time instead of racing wall clocks.
/// Equality ignores `snapshot_seq` (it is provenance, not state): two
/// snapshots of identical counters compare equal.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryReport {
    /// Monotonically increasing snapshot sequence number (1-based, per
    /// registry).
    pub snapshot_seq: u64,
    /// The largest virtual completion clock observed across all tenants, in
    /// nanoseconds — the report's position on the workload's virtual
    /// timeline.
    pub vtime_ns: u64,
    /// Per-tenant statistics, keyed by tenant id.
    pub tenants: BTreeMap<String, TenantStats>,
}

impl PartialEq for TelemetryReport {
    fn eq(&self, other: &Self) -> bool {
        self.vtime_ns == other.vtime_ns && self.tenants == other.tenants
    }
}

impl TelemetryReport {
    /// The stats of one tenant, if it ever carried traffic.
    pub fn tenant(&self, name: &str) -> Option<&TenantStats> {
        self.tenants.get(name)
    }

    /// Pretty-printed JSON export.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("telemetry serializes")
    }
}

/// Per-tenant deployment metadata stamped onto snapshots: the active
/// sharding-mode label and ingress credit budget.
#[derive(Debug, Clone, Default)]
struct TenantMeta {
    sharding_mode: String,
    queue_budget: u64,
}

/// The engine-side registry mapping tenants to their per-shard counters.
/// Locked only on tenant add/remove and snapshot — never on the packet path.
#[derive(Debug, Default)]
pub struct TelemetryRegistry {
    tenants: Mutex<BTreeMap<String, Vec<Arc<TenantCounters>>>>,
    meta: Mutex<BTreeMap<String, TenantMeta>>,
    /// Snapshot sequence; `snapshot` increments it, so two snapshots taken
    /// by racing observers still get distinct, ordered sequence numbers.
    seq: AtomicU64,
}

/// Recover a registry guard even if a holder panicked: the maps only ever
/// hold `Arc`s and small metadata, every mutation is a single insert/remove
/// (no multi-step invariants to tear), so the inner data is always
/// consistent and a panicked shard must not cascade into every observer.
fn recover<T>(lock: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl TelemetryRegistry {
    /// Register a (tenant, shard) counter block.
    pub fn register(&self, tenant: &str, counters: Arc<TenantCounters>) {
        recover(&self.tenants).entry(tenant.to_string()).or_default().push(counters);
    }

    /// Record a tenant's active sharding mode and ingress budget, exported
    /// with every subsequent snapshot.
    pub fn set_meta(&self, tenant: &str, sharding_mode: String, queue_budget: u64) {
        recover(&self.meta).insert(tenant.to_string(), TenantMeta { sharding_mode, queue_budget });
    }

    /// Merge every tenant's counters into a report, stamped with the next
    /// snapshot sequence number and the virtual clock it observed.
    pub fn snapshot(&self) -> TelemetryReport {
        let tenants = recover(&self.tenants);
        let meta = recover(&self.meta);
        let mut vtime_ns = 0u64;
        let merged: BTreeMap<String, TenantStats> = tenants
            .iter()
            .map(|(name, parts)| {
                vtime_ns = vtime_ns.max(TenantStats::vtime_max(parts));
                let mut stats = TenantStats::merge(name, parts);
                if let Some(m) = meta.get(name) {
                    stats.sharding_mode = m.sharding_mode.clone();
                    stats.queue_budget = m.queue_budget;
                }
                (name.clone(), stats)
            })
            .collect();
        TelemetryReport {
            snapshot_seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1,
            vtime_ns,
            tenants: merged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_latency_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        for b in 2..20 {
            let v = bucket_value(b);
            assert_eq!(bucket_of(v), b, "midpoint of bucket {b} maps back");
        }
    }

    #[test]
    fn merge_sums_counters_and_computes_ratios() {
        let a = Arc::new(TenantCounters::new(2));
        let b = Arc::new(TenantCounters::new(2));
        for (c, n) in [(&a, 3u64), (&b, 1u64)] {
            for _ in 0..n {
                c.packets.fetch_add(1, Ordering::Relaxed);
                c.hits.fetch_add(1, Ordering::Relaxed);
                c.payload_bytes.fetch_add(100, Ordering::Relaxed);
                c.record_completion(500.0, 1_000);
            }
        }
        let stats = TenantStats::merge("t", &[a, b]);
        assert_eq!(stats.packets, 4);
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.hit_ratio, 1.0);
        assert_eq!(stats.payload_bytes, 400);
        assert_eq!(stats.latency_mean_ns, 500.0);
        assert!(stats.latency_p50_ns >= 256 && stats.latency_p50_ns <= 1024);
        assert!(stats.goodput_gbps > 0.0);
    }

    #[test]
    fn report_exports_json() {
        let registry = TelemetryRegistry::default();
        let counters = Arc::new(TenantCounters::new(1));
        counters.shed.fetch_add(3, Ordering::Relaxed);
        counters.backpressure_waits.fetch_add(2, Ordering::Relaxed);
        counters.queue_depth_hwm.fetch_max(17, Ordering::Relaxed);
        counters.record_completion(100.0, 1_000);
        registry.register("alpha", counters);
        registry.set_meta("alpha", "by_flow:key".to_string(), 512);
        let report = registry.snapshot();
        let json = report.to_json();
        assert!(json.contains("\"alpha\""));
        assert!(json.contains("\"goodput_gbps\""));
        // congestion counters are part of the stable export schema
        assert!(json.contains("\"shed_packets\": 3"));
        assert!(json.contains("\"backpressure_waits\": 2"));
        assert!(json.contains("\"queue_depth_hwm\": 17"));
        assert!(json.contains("\"per_shard_packets\""));
        // adaptive-runtime observability: active mode, budget, snapshot stamp
        assert!(json.contains("\"sharding_mode\": \"by_flow:key\""));
        assert!(json.contains("\"queue_budget\": 512"));
        assert!(json.contains("\"snapshot_seq\": 1"));
        assert!(json.contains("\"vtime_ns\": 1100"));
        // recovery metrics are part of the stable export schema
        assert!(json.contains("\"fault_lost_packets\": 0"));
        assert!(json.contains("\"fault_vtime_ns\": 0"));
        assert!(json.contains("\"recovery_vtime_ns\": 0"));
        assert!(json.contains("\"time_to_recovery_ns\": 0"));
        assert_eq!(report.tenant("alpha").unwrap().packets, 0);
        assert!(report.tenant("missing").is_none());
    }

    #[test]
    fn fault_losses_and_recovery_are_dated_across_blocks() {
        // block 0: served before the fault, then lost packets to it
        let before = Arc::new(TenantCounters::new(1));
        before.record_completion(10.0, 100);
        before.note_fault_loss(5_000);
        before.note_fault_loss(6_000);
        // block 1: registered by the re-placement, first serves at t=9_000
        let after = Arc::new(TenantCounters::new(1));
        after.record_completion(10.0, 9_000);
        after.record_completion(10.0, 12_000);
        let stats = TenantStats::merge("victim", &[Arc::clone(&before), after]);
        assert_eq!(stats.fault_lost_packets, 2);
        assert_eq!(stats.fault_vtime_ns, 5_000);
        assert_eq!(stats.recovery_vtime_ns, 9_000);
        assert_eq!(stats.time_to_recovery_ns, 4_000);
        // unrecovered: the fault block is the last block
        let unrecovered = TenantStats::merge("victim", &[before]);
        assert_eq!(unrecovered.fault_lost_packets, 2);
        assert_eq!(unrecovered.fault_vtime_ns, 5_000);
        assert_eq!(unrecovered.recovery_vtime_ns, 0);
        assert_eq!(unrecovered.time_to_recovery_ns, 0);
        // fault metrics are semantic, not timing noise: they participate in
        // equality so a co-resident's 0 must match the fault-free run's 0
        let clean = TenantStats::merge("victim", &[Arc::new(TenantCounters::new(1))]);
        assert_ne!(unrecovered, clean);
    }

    #[test]
    fn registry_survives_a_panicked_lock_holder() {
        let registry = Arc::new(TelemetryRegistry::default());
        registry.register("alpha", Arc::new(TenantCounters::new(1)));
        registry.set_meta("alpha", "by_tenant".to_string(), 64);
        // poison both registry mutexes the way a panicking shard would
        for _ in 0..2 {
            let poisoner = Arc::clone(&registry);
            let _ = std::thread::spawn(move || {
                let _tenants = poisoner.tenants.lock().unwrap();
                let _meta = poisoner.meta.lock().unwrap();
                panic!("shard dies while holding the registry");
            })
            .join();
        }
        assert!(registry.tenants.lock().is_err(), "lock really is poisoned");
        // the registry recovers the inner data instead of cascading
        registry.register("beta", Arc::new(TenantCounters::new(1)));
        registry.set_meta("beta", "by_flow".to_string(), 32);
        let report = registry.snapshot();
        assert!(report.tenant("alpha").is_some());
        assert_eq!(report.tenant("beta").unwrap().sharding_mode, "by_flow");
    }

    #[test]
    fn snapshot_seq_is_monotone_and_ignored_by_equality() {
        let registry = TelemetryRegistry::default();
        registry.register("t", Arc::new(TenantCounters::new(1)));
        let first = registry.snapshot();
        let second = registry.snapshot();
        assert_eq!(first.snapshot_seq + 1, second.snapshot_seq);
        assert_eq!(first, second, "identical counters compare equal across snapshots");
    }

    #[test]
    fn equality_ignores_wall_clock_observability_but_not_sheds() {
        let mk = |hwm: u64, waits: u64, shed: u64| {
            let c = Arc::new(TenantCounters::new(1));
            c.queue_depth_hwm.fetch_max(hwm, Ordering::Relaxed);
            c.backpressure_waits.fetch_add(waits, Ordering::Relaxed);
            c.shed.fetch_add(shed, Ordering::Relaxed);
            TenantStats::merge("t", &[c])
        };
        assert_eq!(mk(5, 1, 0), mk(99, 7, 0), "hwm/waits are timing noise");
        assert_ne!(mk(5, 1, 0), mk(5, 1, 4), "shed packets are semantic");
        // deployment configuration (mode label, budget) is not a traffic
        // outcome: a resharded run compares equal to a static one
        let mut a = mk(0, 0, 0);
        let b = mk(0, 0, 0);
        a.sharding_mode = "by_flow".to_string();
        a.queue_budget = 64;
        assert_eq!(a, b, "mode/budget are configuration, not outcomes");
    }

    #[test]
    fn percentile_is_monotone_in_q() {
        let c = Arc::new(TenantCounters::new(0));
        for i in 0..1000u64 {
            c.record_completion(i as f64, 0);
        }
        let s = TenantStats::merge("t", &[c]);
        assert!(s.latency_p99_ns >= s.latency_p50_ns);
    }
}
