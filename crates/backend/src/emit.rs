//! Shared emission helpers for all backends.

use clickinc_ir::{AluOp, Guard, OpCode, Operand, Value};

/// Render an operand in a C-like surface syntax shared by all targets.
pub fn operand(op: &Operand) -> String {
    match op {
        Operand::Var(v) => sanitize(v),
        Operand::Header(h) => format!("hdr.inc.{}", sanitize(h)),
        Operand::Meta(m) => format!("meta.{}", sanitize(m)),
        Operand::Const(Value::Int(v)) => format!("{v}"),
        Operand::Const(Value::Float(v)) => format!("{v}"),
        Operand::Const(Value::Bool(b)) => format!("{}", *b as u8),
        Operand::Const(Value::Bytes(b)) => format!("0x{}", hex(b)),
        Operand::Const(Value::None) => "INC_NONE".to_string(),
    }
}

/// Make an IR name a legal C/P4 identifier (`$t3` → `t3`, `x.5` → `x_5`).
pub fn sanitize(name: &str) -> String {
    let mut out: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    while out.starts_with('_') && out.len() > 1 {
        out.remove(0);
    }
    if out.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(true) {
        out.insert(0, 'v');
    }
    out
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Render a guard as a C-like boolean expression.
pub fn guard_expr(guard: &Guard) -> String {
    if guard.is_always() {
        return "true".to_string();
    }
    guard
        .all
        .iter()
        .map(|p| format!("({} {} {})", operand(&p.lhs), p.op, operand(&p.rhs)))
        .collect::<Vec<_>>()
        .join(" && ")
}

/// Render the right-hand side expression of a compute opcode, if it has one.
pub fn compute_expr(op: &OpCode) -> Option<(String, String)> {
    match op {
        OpCode::Assign { dest, src } => Some((sanitize(dest), operand(src))),
        OpCode::Alu { dest, op, lhs, rhs, .. } => {
            let expr = match op {
                AluOp::Min => format!("min({}, {})", operand(lhs), operand(rhs)),
                AluOp::Max => format!("max({}, {})", operand(lhs), operand(rhs)),
                AluOp::Slice => format!("slice({}, {})", operand(lhs), operand(rhs)),
                _ => format!("{} {} {}", operand(lhs), op, operand(rhs)),
            };
            Some((sanitize(dest), expr))
        }
        OpCode::Cmp { dest, op, lhs, rhs } => {
            Some((sanitize(dest), format!("{} {} {}", operand(lhs), op, operand(rhs))))
        }
        _ => None,
    }
}

/// Join index operands as a comma-separated argument list.
pub fn args(ops: &[Operand]) -> String {
    ops.iter().map(operand).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_ir::{CmpOp, Predicate};

    #[test]
    fn operands_render() {
        assert_eq!(operand(&Operand::var("$t3")), "t3");
        assert_eq!(operand(&Operand::var("x.5")), "x_5");
        assert_eq!(operand(&Operand::hdr("key")), "hdr.inc.key");
        assert_eq!(operand(&Operand::int(7)), "7");
        assert_eq!(operand(&Operand::Const(Value::None)), "INC_NONE");
    }

    #[test]
    fn sanitize_produces_identifiers() {
        assert_eq!(sanitize("$t0"), "t0");
        assert_eq!(sanitize("kvs_0_cache"), "kvs_0_cache");
        assert_eq!(sanitize("3bad"), "v3bad");
        assert!(!sanitize("a.b.c").contains('.'));
    }

    #[test]
    fn guards_and_exprs_render() {
        let g = Guard::single(Predicate::new(Operand::var("c"), CmpOp::Ne, Operand::int(0)));
        assert_eq!(guard_expr(&g), "(c != 0)");
        assert_eq!(guard_expr(&Guard::always()), "true");
        let alu = OpCode::Alu {
            dest: "x".into(),
            op: AluOp::Add,
            lhs: Operand::var("a"),
            rhs: Operand::int(1),
            float: false,
        };
        assert_eq!(compute_expr(&alu), Some(("x".into(), "a + 1".into())));
        assert_eq!(compute_expr(&OpCode::Drop), None);
    }
}
