//! Congestion and flow-sharding demo: a hot KVS tenant floods the engine's
//! bounded ingress queues next to a background MLAgg tenant.
//!
//! The service derives each tenant's sharding mode from its deployed
//! program's state profile — the KVS cache program is flow-keyed by
//! `hdr.key`, so the hot tenant spreads across every shard; the first
//! configuration in which one tenant scales past one core.  The run is
//! repeated under both overload policies:
//!
//! * **drop-tail** — the overrun of the per-shard bound is shed and the
//!   sheds surface in the driver report and in the per-tenant telemetry;
//! * **backpressure** — the open-loop generator is throttled against a
//!   credit budget instead, and the waits surface in the telemetry.
//!
//! Run with: `cargo run --release --example overload_serving`

use clickinc_apps::serving::{serve_overload_scenario, OverloadConfig};
use clickinc_runtime::OverloadPolicy;

fn main() {
    let base = OverloadConfig::default();
    println!(
        "=== Overload serving: hot flow-sharded KVS vs {}-deep bounded queues ({} shards) ===\n",
        base.queue_capacity, base.shards
    );

    for (label, overload) in [
        ("drop-tail", OverloadPolicy::DropTail),
        ("backpressure (64 credits)", OverloadPolicy::Backpressure { credits: 64 }),
    ] {
        let config = OverloadConfig { overload, ..base.clone() };
        let report = serve_overload_scenario(&config).expect("overload scenario serves");
        println!("-- {label} --");
        println!(
            "offered {} | admitted {} | shed {} ({:.1}%)",
            report.offered,
            report.admitted,
            report.shed,
            report.shed as f64 * 100.0 / report.offered as f64
        );
        println!(
            "hot tenant: mode {:?}, {} shards utilized, per-shard packets {:?}",
            report.hot_mode, report.shards_utilized, report.hot.per_shard_packets
        );
        println!(
            "hot telemetry: {} served, {} shed, {} backpressure waits, queue hwm {}",
            report.hot.completed,
            report.hot.shed_packets,
            report.hot.backpressure_waits,
            report.hot.queue_depth_hwm
        );
        println!(
            "background tenant: {} served, hit ratio {:.3}, {} shed\n",
            report.background.completed,
            report.background.hit_ratio,
            report.background.shed_packets
        );
        assert!(report.hot_mode.is_by_flow(), "the KVS state profile flow-shards");
        assert!(report.shards_utilized > 1, "the hot tenant spread past one shard");
        match config.overload {
            OverloadPolicy::DropTail => {
                assert!(report.shed > 0, "drop-tail sheds under saturation")
            }
            OverloadPolicy::Backpressure { .. } => {
                assert_eq!(report.shed, 0, "credits absorb the stream");
                assert!(report.hot.backpressure_waits > 0, "the generator was throttled");
            }
        }
    }
    println!("overload is modeled, observable, and policy-selectable — not an invisible queue");
}
