//! Multi-tenant, dynamic INC-as-a-Service: several users deploy programs onto
//! the same network one after another, one later revokes its service, and the
//! controller handles everything incrementally (paper §7.3 Table 3 and §7.5
//! Table 6 workflows).
//!
//! Run with: `cargo run --example multi_tenant_incremental`

use clickinc::topology::Topology;
use clickinc::Controller;
use clickinc_apps::table3_requests;

fn main() {
    println!("=== Multi-tenant incremental deployment over the Fig. 11 topology ===\n");
    let mut controller = Controller::new(Topology::emulation_topology_all_tofino());

    for request in table3_requests() {
        let user = request.user.clone();
        match controller.deploy(request) {
            Ok(d) => println!(
                "+ {:<8} placed on {:<40} in {:>9.2?}  (affected devices: {}, co-resident programs: {})",
                user,
                d.plan.devices_used().join(";"),
                d.plan.solve_time,
                d.delta.device_count(),
                d.delta.program_count(),
            ),
            Err(e) => println!("+ {user:<8} FAILED: {e}"),
        }
    }
    println!("\nactive programs: {:?}", controller.active_users());
    println!("remaining resources: {:.1}%", controller.remaining_resource_ratio() * 100.0);

    // one tenant leaves; only its own devices are touched
    let delta = controller.remove("DQAcc1").expect("removal succeeds");
    println!(
        "\n- DQAcc1 removed: {} devices updated, {} other programs affected, {} pods saw traffic changes",
        delta.device_count(),
        delta.program_count(),
        delta.pod_count()
    );
    println!("active programs now: {:?}", controller.active_users());
    println!("remaining resources: {:.1}%", controller.remaining_resource_ratio() * 100.0);
}
