//! # clickinc-placement — distributing IR programs over the network
//!
//! Placing an IR program on the data-center network is the optimization problem
//! of §5 of the paper: maximize the traffic served by INC while minimizing the
//! resources consumed on devices and the extra data shipped between program
//! segments (Eq. 1), subject to per-device capability, resource, and dependency
//! constraints.
//!
//! The crate contains:
//!
//! * [`network`] — the placement view of the (reduced) topology: one
//!   [`PlacementDevice`] per equivalence class, with its device model, bypass
//!   accelerator, traffic share, and remaining resources (multi-tenant ledger);
//! * [`objective`] — the Eq. 1 gain terms, the adaptive weights
//!   (ω_r = 1 − 2^(r−1), ω_p = ½ − ω_r), and the cross-device parameter cut
//!   cost derived from the SSA def/use sets;
//! * [`intra`] — Algorithm 2: instruction-to-stage allocation within one device
//!   (pipeline devices respect stage ordering and per-stage resources; RTC
//!   devices only check aggregate resources);
//! * [`dp`] — Algorithm 1: the bottom-up dynamic program over the client-side
//!   sub-tree plus the server-side chain, with the pruning rules of §5.4;
//! * [`smt`] — the SMT-style exhaustive baseline used by Table 4 / Fig. 14:
//!   a backtracking search over per-block device/stage assignments with the
//!   same constraint set but no structural decomposition (exponential in the
//!   number of devices);
//! * [`greedy`] — a single-path greedy baseline used in tests as a lower bound
//!   for DP solution quality;
//! * [`plan`] — the resulting [`PlacementPlan`] (per-device snippets, stage
//!   maps, gain breakdown, solve time).

pub mod dp;
pub mod greedy;
pub mod intra;
pub mod memo;
pub mod network;
pub mod objective;
pub mod plan;
pub mod smt;

pub use dp::place as solve;
pub use dp::{place, place_with_cache, PlacementConfig};
pub use greedy::place_greedy;
pub use intra::{allocate_stages, allocate_stages_with, SegContext, StageAllocation};
pub use memo::{device_fingerprint, shape_fingerprint, SolveCache, SolveCacheStats};
pub use network::{PlacementDevice, PlacementNetwork, ResourceLedger};
pub use objective::{cut_costs, Weights};
pub use plan::{Assignment, PlacementError, PlacementPlan};
pub use smt::{place_smt, SmtConfig};

#[cfg(test)]
mod proptests {
    use super::*;
    use clickinc_blockdag::{build_block_dag, BlockConfig};
    use clickinc_device::DeviceKind;
    use clickinc_ir::{AluOp, Operand, ProgramBuilder};
    use clickinc_topology::Topology;
    use proptest::prelude::*;

    fn random_program(n: usize, seed: &[u8]) -> clickinc_ir::IrProgram {
        let mut b = ProgramBuilder::new("prop");
        b.array("state", 1, 256, 32);
        b.hash_fn("h", clickinc_ir::HashAlgo::Crc16, Some(256));
        let mut prev: Option<String> = None;
        for (i, byte) in seed.iter().take(n).enumerate() {
            let v = format!("v{i}");
            match byte % 3 {
                0 => {
                    let lhs = prev.clone().map(Operand::var).unwrap_or_else(|| Operand::hdr("seq"));
                    b.alu(&v, AluOp::Add, lhs, Operand::int(i64::from(*byte)));
                }
                1 => {
                    b.hash(&v, "h", vec![Operand::hdr("seq")]);
                }
                _ => {
                    b.count(
                        Some(&v),
                        "state",
                        vec![Operand::int(i64::from(*byte))],
                        Operand::int(1),
                    );
                }
            }
            prev = Some(v);
        }
        b.forward();
        b.build().expect("generated program is well-formed")
    }

    #[test]
    fn concurrent_solves_are_bit_identical_to_a_lone_solve() {
        let program = random_program(12, &[7u8; 18]);
        let dag = build_block_dag(&program, &BlockConfig::default());
        let topo = Topology::chain(3, DeviceKind::Tofino);
        let servers = topo.servers();
        let reduced = clickinc_topology::reduce_for_traffic(&topo, &[servers[0]], servers[1], &[]);
        let ledger = ResourceLedger::new();
        let net = PlacementNetwork::from_reduced(&topo, &reduced, &ledger);
        let config = PlacementConfig::default();
        let lone = solve(&program, &dag, &net, &config).expect("solves").fingerprint();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| solve(&program, &dag, &net, &config).expect("solves")))
                .collect();
            for h in handles {
                assert_eq!(h.join().expect("no panic").fingerprint(), lone);
            }
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Whenever the DP finds a plan it satisfies all constraints: every
        /// block placed exactly once per path, device capabilities respected,
        /// resources within capacity.
        #[test]
        fn dp_plans_are_feasible(
            n in 1usize..18,
            seed in proptest::collection::vec(any::<u8>(), 18),
            devices in 1usize..5,
        ) {
            let program = random_program(n, &seed);
            let dag = build_block_dag(&program, &BlockConfig::default());
            let topo = Topology::chain(devices, DeviceKind::Tofino);
            let servers = topo.servers();
            let reduced = clickinc_topology::reduce_for_traffic(&topo, &[servers[0]], servers[1], &[]);
            let ledger = ResourceLedger::new();
            let net = PlacementNetwork::from_reduced(&topo, &reduced, &ledger);
            if let Ok(plan) = place(&program, &dag, &net, &PlacementConfig::default()) {
                plan.assert_valid(&program, &dag, &net);
            }
        }

        /// DP gain is never worse than the greedy single-device baseline when
        /// both succeed.
        #[test]
        fn dp_at_least_as_good_as_greedy(
            n in 1usize..15,
            seed in proptest::collection::vec(any::<u8>(), 15),
        ) {
            let program = random_program(n, &seed);
            let dag = build_block_dag(&program, &BlockConfig::default());
            let topo = Topology::chain(3, DeviceKind::Tofino);
            let servers = topo.servers();
            let reduced = clickinc_topology::reduce_for_traffic(&topo, &[servers[0]], servers[1], &[]);
            let ledger = ResourceLedger::new();
            let net = PlacementNetwork::from_reduced(&topo, &reduced, &ledger);
            let dp = place(&program, &dag, &net, &PlacementConfig::default());
            let greedy = place_greedy(&program, &dag, &net);
            if let (Ok(d), Ok(g)) = (dp, greedy) {
                prop_assert!(d.gain >= g.gain - 1e-9, "dp {} < greedy {}", d.gain, g.gain);
            }
        }
    }
}
