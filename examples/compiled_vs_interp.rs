//! Execution-tier equivalence + speedup report — the CI compiled-tier step.
//!
//! For every fig13 provider template, deploy the tenant's isolated, optimized
//! program onto two identical device planes — one running the register VM
//! (the default tier), one the reference interpreter — drive the same traffic
//! trace through both, and:
//!
//! * **assert equivalence**: per-packet outcomes, rewritten packets, final
//!   store fingerprints and telemetry counters must be bit-identical (any
//!   divergence exits non-zero, failing the CI step);
//! * **print the per-tenant speedup** of the compiled tier over the
//!   interpreter on that tenant's trace.
//!
//! Run with: `cargo run --release --example compiled_vs_interp`

use clickinc::lang::templates::{
    count_min_sketch, dqacc_template, kvs_template, mlagg_template, DqAccParams, KvsParams,
    MlAggParams,
};
use clickinc::synthesis::isolate_user_program;
use clickinc_device::DeviceModel;
use clickinc_emulator::packet::{gradient_packet, kvs_request};
use clickinc_emulator::{DevicePlane, ExecMode, Packet};
use clickinc_frontend::compile_source;
use clickinc_ir::{DiagnosticSet, IrProgram, Optimizer, Value};
use std::collections::BTreeMap;
use std::time::Instant;

/// Compile → isolate → optimize, exactly as the controller deploys.
fn prepare(user: &str, numeric_id: i64, source: &str) -> IrProgram {
    let ir = compile_source(user, source).expect("template compiles");
    let isolated = isolate_user_program(&ir, user, numeric_id);
    let mut diags = DiagnosticSet::new();
    let optimized = Optimizer::with_default_passes().optimize(user, true, &isolated, &mut diags);
    assert!(!diags.has_errors(), "{user} must optimize clean:\n{diags}");
    optimized
}

fn field_packet(user: i64, fields: &[(&str, i64)]) -> Packet {
    let mut map = BTreeMap::new();
    for (k, v) in fields {
        map.insert((*k).to_string(), Value::Int(*v));
    }
    Packet::new("c", "s", user, map)
}

/// Deterministic per-tenant traffic traces (no RNG: the report must be
/// reproducible run to run).
fn trace_for(tenant: &str, user: i64, packets: usize) -> Vec<Packet> {
    let mut trace = Vec::with_capacity(packets);
    match tenant {
        "kvs_srv" => {
            for i in 0..packets {
                // skewed key popularity: low keys dominate
                let key = ((i * 7 + i / 3) % 61) as i64 % if i % 4 == 0 { 5 } else { 61 };
                trace.push(kvs_request("c", "s", user, key));
            }
        }
        "mlagg" => {
            let mut i = 0usize;
            'outer: for seq in 0.. {
                for worker in 0..4usize {
                    let values: Vec<i64> = (0..8).map(|d| seq * 10 + d).collect();
                    trace.push(gradient_packet("w", "ps", user, seq, worker, 8, &values));
                    i += 1;
                    if i >= packets {
                        break 'outer;
                    }
                }
            }
        }
        "cms" => {
            for i in 0..packets {
                trace.push(field_packet(user, &[("key", ((i * 13) % 97) as i64 % 11)]));
            }
        }
        "dqacc" => {
            for i in 0..packets {
                trace.push(field_packet(user, &[("value", ((i * 5) % 83) as i64 % 17)]));
            }
        }
        other => panic!("unknown tenant {other}"),
    }
    trace
}

/// Run one tier over a trace; returns elapsed seconds and asserts nothing —
/// equivalence is checked by the caller against the sibling plane.
fn drive(plane: &mut DevicePlane, trace: &[Packet]) -> (f64, Vec<Packet>) {
    let mut out = Vec::with_capacity(trace.len());
    let start = Instant::now();
    for pkt in trace {
        let mut p = pkt.clone();
        plane.process(&mut p);
        out.push(p);
    }
    (start.elapsed().as_secs_f64(), out)
}

fn main() {
    let packets = 40_000usize;
    let tenants: Vec<(&str, i64, IrProgram)> = vec![
        (
            "kvs_srv",
            1,
            prepare(
                "kvs_srv",
                1,
                &kvs_template("kvs_srv", KvsParams { cache_depth: 512, ..Default::default() })
                    .source,
            ),
        ),
        (
            "mlagg",
            2,
            prepare(
                "mlagg",
                2,
                &mlagg_template(
                    "mlagg",
                    MlAggParams { num_aggregators: 512, num_workers: 4, dims: 8, is_float: false },
                )
                .source,
            ),
        ),
        ("cms", 3, prepare("cms", 3, &count_min_sketch("cms", 3, 512).source)),
        (
            "dqacc",
            4,
            prepare(
                "dqacc",
                4,
                &dqacc_template("dqacc", DqAccParams { depth: 256, ways: 4 }).source,
            ),
        ),
    ];

    println!("=== compiled execution tier vs interpreter ({packets} packets/tenant) ===\n");
    println!("{:>10} {:>14} {:>14} {:>9}", "tenant", "interp pps", "compiled pps", "speedup");
    let mut worst = f64::INFINITY;
    for (name, _, program) in &tenants {
        let mut compiled = DevicePlane::new("SW0", DeviceModel::tofino());
        let mut interp = DevicePlane::new("SW0", DeviceModel::tofino());
        compiled.set_exec_mode(ExecMode::Compiled);
        interp.set_exec_mode(ExecMode::Interpreted);
        compiled.install(program.clone());
        interp.install(program.clone());
        if *name == "kvs_srv" {
            for plane in [&mut compiled, &mut interp] {
                plane.store_mut().table_write(
                    "kvs_srv_cache",
                    &[Value::Int(1)],
                    vec![Value::Int(11)],
                );
            }
        }
        let trace = trace_for(name, tenants.iter().find(|t| t.0 == *name).unwrap().1, packets);
        // interpreter first, then the VM: identical warm-up treatment
        let (interp_s, interp_pkts) = drive(&mut interp, &trace);
        let (compiled_s, compiled_pkts) = drive(&mut compiled, &trace);

        // equivalence: same rewritten packets, same store, same telemetry
        assert_eq!(compiled_pkts, interp_pkts, "{name}: rewritten packets diverge");
        assert_eq!(
            compiled.store().fingerprint(),
            interp.store().fingerprint(),
            "{name}: final stores diverge"
        );
        assert_eq!(
            compiled.instructions_executed, interp.instructions_executed,
            "{name}: executed-instruction telemetry diverges"
        );
        assert_eq!(compiled.packets_processed, interp.packets_processed);

        let ipps = packets as f64 / interp_s.max(1e-9);
        let cpps = packets as f64 / compiled_s.max(1e-9);
        let speedup = cpps / ipps.max(1e-9);
        worst = worst.min(speedup);
        println!("{name:>10} {ipps:>14.0} {cpps:>14.0} {speedup:>8.2}x");
    }
    println!("\nall tenants bit-identical across tiers; worst-case compiled speedup {worst:.2}x");
}
