//! Failure-recovery demo: a device failure survived mid-run.
//!
//! A victim KVS tenant and a co-resident background MLAgg tenant (disjoint
//! routes) serve together.  Mid-run, a seeded fault plan kills one of the
//! victim's devices on the workload's virtual clock — packets crossing it
//! from that instant are lost and surface as the victim's fault telemetry.
//! The controller failover then quiesces the victim, releases its ledger
//! bookings and re-places it through the full plan → verify → admission →
//! commit chain around the failure (or parks it in the typed `Degraded`
//! state until the restore).  A fault-free control run proves the blast
//! radius: the bystander's stats and its devices' store fingerprints are
//! bit-identical with and without the fault.
//!
//! Run with: `cargo run --release --example device_failover`

use clickinc_apps::adaptive::PhaseStats;
use clickinc_apps::failover::{serve_failover_scenario, FailoverServingConfig};

fn show(label: &str, phase: &PhaseStats) {
    println!(
        "  {label:<10} offered {:>5} | admitted {:>5} | shed {:>5} | admit ratio {:.3}",
        phase.offered,
        phase.admitted,
        phase.shed,
        phase.admit_ratio()
    );
}

fn main() {
    let base = FailoverServingConfig::default();
    println!(
        "=== Device failover: victim KVS vs a mid-run device failure ({} shards) ===\n",
        base.shards
    );

    let faulted = serve_failover_scenario(&base).expect("failover scenario serves");
    let clean = serve_failover_scenario(&FailoverServingConfig { fail: false, ..base })
        .expect("fault-free control serves");

    let device = faulted.failed_device.clone().expect("a device failed");
    println!("-- faulted run (device `{device}` dies on the virtual clock) --");
    show("pre", &faulted.pre);
    show("faulted", &faulted.faulted);
    match &faulted.recovered {
        Some(recovered) => show("recovered", recovered),
        None => println!("  recovered  (victim parked Degraded until the restore)"),
    }
    show("post", &faulted.post);
    println!(
        "  fault losses: {} packets | failover re-placed immediately: {}",
        faulted.victim.fault_lost_packets, faulted.recovered_immediately
    );
    println!("  fault at vclock {} ns", faulted.victim.fault_vtime_ns);
    println!("  recovery ratio: {:.3}\n", faulted.recovery_ratio());

    println!("-- fault-free control (same traffic, no fault) --");
    show("pre", &clean.pre);
    show("post", &clean.post);
    println!("  recovery ratio: {:.3}\n", clean.recovery_ratio());

    assert!(faulted.victim.fault_lost_packets > 0, "the dead device lost packets");
    assert_eq!(clean.victim.fault_lost_packets, 0, "no losses without a fault");
    assert!(
        faulted.recovery_ratio() >= 0.9,
        "post-restore service recovered: {:.3}",
        faulted.recovery_ratio()
    );

    // the blast-radius half: the co-resident tenant never noticed
    assert_eq!(faulted.bystander.fault_lost_packets, 0, "no bystander losses");
    assert_eq!(faulted.bystander, clean.bystander, "co-resident stats diverged under the fault");
    let fingerprints = faulted.bystander_fingerprints();
    assert!(!fingerprints.is_empty(), "comparable bystander devices exist");
    assert_eq!(
        fingerprints,
        clean.bystander_fingerprints(),
        "co-resident store fingerprints diverged under the fault"
    );
    println!(
        "blast-radius cross-check: the co-resident tenant is bit-identical with and \
         without the fault ({} stores, bystander served {})",
        fingerprints.len(),
        faulted.bystander.completed
    );
    println!("failures cost the victim availability — never anyone's results");
}
