//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Supports plain non-generic structs with named fields. The only container
//! attribute understood is none; the only field attribute understood is
//! `#[serde(default)]` (a missing field takes `Default::default()` instead of
//! erroring). This covers everything the workspace derives.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    has_default: bool,
}

/// Parse `struct Name { fields... }` out of the derive input. Returns the
/// struct name and its named fields.
fn parse_struct(input: TokenStream) -> Result<(String, Vec<Field>), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut name = None;
    let mut body = None;
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "struct" {
                match tokens.get(i + 1) {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err("expected struct name".into()),
                }
                // Find the brace-delimited body; anything between the name and
                // the body (generics, where clauses) is unsupported.
                for tok in &tokens[i + 2..] {
                    match tok {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            body = Some(g.stream());
                            break;
                        }
                        TokenTree::Punct(p) if p.as_char() == '<' => {
                            return Err("generic structs are not supported".into());
                        }
                        _ => {}
                    }
                }
                break;
            }
        }
        i += 1;
    }
    let name = name.ok_or("derive input is not a struct")?;
    let body = body.ok_or("only structs with named fields are supported")?;

    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut has_default = false;
        // leading attributes (`#[...]`), including doc comments
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                let attr = g.stream().to_string();
                if attr.starts_with("serde") && attr.contains("default") {
                    has_default = true;
                }
                i += 2;
            } else {
                return Err("malformed attribute".into());
            }
        }
        // optional visibility
        if let Some(TokenTree::Ident(id)) = toks.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let field_name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{field_name}`")),
        }
        // skip the type: consume until a comma at angle-bracket depth 0
        let mut depth = 0i32;
        while let Some(tok) = toks.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name: field_name, has_default });
    }
    Ok((name, fields))
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = match parse_struct(input) {
        Ok(p) => p,
        Err(e) => return error(&e),
    };
    let mut inserts = String::new();
    for f in &fields {
        inserts.push_str(&format!(
            "__m.insert({:?}.to_string(), ::serde::Serialize::serialize_value(&self.{}));\n",
            f.name, f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n\
                 let mut __m = ::std::collections::BTreeMap::new();\n\
                 {inserts}\
                 ::serde::Value::Obj(__m)\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, fields) = match parse_struct(input) {
        Ok(p) => p,
        Err(e) => return error(&e),
    };
    let mut inits = String::new();
    for f in &fields {
        let missing = if f.has_default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::DeError::custom({:?}))",
                format!("missing field `{}`", f.name)
            )
        };
        inits.push_str(&format!(
            "{}: match __obj.get({:?}) {{\n\
                 ::std::option::Option::Some(__f) => ::serde::Deserialize::deserialize_value(__f)?,\n\
                 ::std::option::Option::None => {missing},\n\
             }},\n",
            f.name, f.name
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let __obj = match __v {{\n\
                     ::serde::Value::Obj(__m) => __m,\n\
                     _ => return ::std::result::Result::Err(::serde::DeError::custom(\n\
                         concat!(\"expected object for \", stringify!({name})))),\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{\n\
                     {inits}\
                 }})\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}
