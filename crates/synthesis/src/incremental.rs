//! Annotation-based incremental compilation (paper §6 "Incremental Compilation
//! for Dynamic Program Merge & Removal" and §7.5).
//!
//! Each device's running image is a synthesized IR program whose instructions
//! carry owner annotations.  Adding a user program touches only the devices the
//! new program was placed on; removing one strips its annotations and deletes
//! the instructions (and objects) that no longer have an owner — lazily, so the
//! other tenants' traffic is never interrupted.  [`DeploymentDelta`] records
//! which devices, co-resident INC programs and traffic (pods) each operation
//! affected, which is exactly what Table 6 reports.

use crate::base::BaseProgram;
use crate::merge::merge_programs;
use clickinc_ir::{IrProgram, OpCode};
use clickinc_placement::PlacementPlan;
use clickinc_topology::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// The set of running device images, keyed by physical device.
#[derive(Debug, Clone, Default)]
pub struct DeviceImages {
    /// Device → synthesized IR image.
    pub images: BTreeMap<NodeId, IrProgram>,
}

/// What a deployment / removal operation touched (the Table 6 metrics).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeploymentDelta {
    /// Devices whose image changed.
    pub affected_devices: BTreeSet<NodeId>,
    /// Other users' programs co-resident on the affected devices.
    pub affected_programs: BTreeSet<String>,
    /// Pods whose traffic crosses an affected device (a proxy for "affected
    /// traffic" in Table 6).
    pub affected_pods: BTreeSet<usize>,
}

impl DeploymentDelta {
    /// Number of affected devices.
    pub fn device_count(&self) -> usize {
        self.affected_devices.len()
    }

    /// Number of affected co-resident INC programs.
    pub fn program_count(&self) -> usize {
        self.affected_programs.len()
    }

    /// Number of affected pods.
    pub fn pod_count(&self) -> usize {
        self.affected_pods.len()
    }
}

/// Incrementally add a placed, isolated user program to the running images.
///
/// `pod_of` maps physical devices to their pod (for the affected-traffic
/// metric).  Only devices that received a snippet are rebuilt.
pub fn add_user_program(
    images: &mut DeviceImages,
    base: &BaseProgram,
    user_program: &IrProgram,
    plan: &PlacementPlan,
    pod_of: &BTreeMap<NodeId, Option<usize>>,
) -> DeploymentDelta {
    let mut delta = DeploymentDelta::default();
    for assignment in plan.assignments.iter().filter(|a| !a.is_empty()) {
        // the snippet: the subset of the user program assigned to this device
        let mut snippet = IrProgram::new(user_program.name.clone());
        snippet.headers = user_program.headers.clone();
        let needed_objects: BTreeSet<&str> = assignment
            .instrs
            .iter()
            .filter_map(|&i| user_program.instructions[i].object())
            .collect();
        snippet.objects = user_program
            .objects
            .iter()
            .filter(|o| needed_objects.contains(o.name.as_str()))
            .cloned()
            .collect();
        snippet.instructions =
            assignment.instrs.iter().map(|&i| user_program.instructions[i].clone()).collect();

        for &member in &assignment.members {
            delta.affected_devices.insert(member);
            if let Some(Some(pod)) = pod_of.get(&member) {
                delta.affected_pods.insert(*pod);
            }
            // existing tenants on this device are affected only in the sense of
            // sharing the device; incremental merge does not recompile them, but
            // Table 6 counts co-residents whose *image* is rebuilt.  With
            // incremental merge the image is extended in place, so co-residents
            // are NOT counted here (that is the difference from monolithic).
            let entry = images.images.entry(member).or_insert_with(|| merge_programs(base, &[]));
            extend_image(entry, &snippet);
        }
    }
    delta
}

/// Monolithic (non-incremental) deployment of the same program: every device
/// that runs *any* INC program is resynthesized from scratch, so all
/// co-resident programs and all traffic crossing those devices are affected.
/// Used as the comparison baseline of Table 6.
pub fn add_user_program_monolithic(
    images: &mut DeviceImages,
    base: &BaseProgram,
    user_program: &IrProgram,
    plan: &PlacementPlan,
    pod_of: &BTreeMap<NodeId, Option<usize>>,
) -> DeploymentDelta {
    // first do the same placement-driven extension...
    let mut delta = add_user_program(images, base, user_program, plan, pod_of);
    // ...but a monolithic rebuild additionally recompiles every device that
    // already hosts any user program, affecting those programs and their pods.
    let target_devices: BTreeSet<NodeId> = plan
        .assignments
        .iter()
        .filter(|a| !a.is_empty())
        .flat_map(|a| a.members.iter().copied())
        .collect();
    for (device, image) in &images.images {
        let owners = image.owners();
        if owners.is_empty() {
            continue;
        }
        let shares_program_with_target = target_devices.contains(device)
            || owners.contains(&user_program.name)
            || images
                .images
                .iter()
                .filter(|(d, _)| target_devices.contains(d))
                .any(|(_, img)| !img.owners().is_disjoint(&owners));
        if shares_program_with_target {
            delta.affected_devices.insert(*device);
            if let Some(Some(pod)) = pod_of.get(device) {
                delta.affected_pods.insert(*pod);
            }
            for o in owners {
                if o != user_program.name {
                    delta.affected_programs.insert(o);
                }
            }
        }
    }
    delta
}

/// Remove a user program from every image (lazy removal): its annotations are
/// stripped, orphaned instructions become `NoOp`s (cleaned up on the next
/// deployment), and its objects are released.
pub fn remove_user_program(
    images: &mut DeviceImages,
    user: &str,
    pod_of: &BTreeMap<NodeId, Option<usize>>,
) -> DeploymentDelta {
    let mut delta = DeploymentDelta::default();
    for (device, image) in images.images.iter_mut() {
        let mut touched = false;
        for instr in &mut image.instructions {
            let before = instr.owners.len();
            instr.owners.retain(|o| o != user);
            if instr.owners.len() != before {
                touched = true;
                if instr.owners.is_empty() && !instr.is_base_instruction_marker() {
                    instr.op = OpCode::NoOp;
                }
            }
        }
        let objs_before = image.objects.len();
        image.objects.retain(|o| o.owner.as_deref() != Some(user));
        if image.objects.len() != objs_before {
            touched = true;
        }
        if touched {
            delta.affected_devices.insert(*device);
            if let Some(Some(pod)) = pod_of.get(device) {
                delta.affected_pods.insert(*pod);
            }
            for other in image.owners() {
                if other != user {
                    delta.affected_programs.insert(other);
                }
            }
        }
    }
    delta
}

/// Extend an existing device image with a new snippet (incremental merge):
/// the snippet is inserted before the base tail so the forwarding decision
/// still runs last.
fn extend_image(image: &mut IrProgram, snippet: &IrProgram) {
    for obj in &snippet.objects {
        if image.object(&obj.name).is_none() {
            image.objects.push(obj.clone());
        }
    }
    for hdr in &snippet.headers {
        if !image.headers.iter().any(|h| h.name == hdr.name) {
            image.headers.push(hdr.clone());
        }
    }
    // find the start of the base tail: the last run of base-owned instructions
    let tail_start =
        image.instructions.iter().rposition(|i| !i.is_base()).map(|p| p + 1).unwrap_or_else(|| {
            // no user instructions yet: insert before the trailing forward/count
            image
                .instructions
                .iter()
                .position(|i| matches!(i.op, OpCode::ReadState { .. } | OpCode::Forward))
                .unwrap_or(image.instructions.len())
        });
    let mut new_instrs = snippet.instructions.clone();
    let mut all = Vec::with_capacity(image.instructions.len() + new_instrs.len());
    all.extend_from_slice(&image.instructions[..tail_start]);
    all.append(&mut new_instrs);
    all.extend_from_slice(&image.instructions[tail_start..]);
    for (idx, instr) in all.iter_mut().enumerate() {
        instr.id = clickinc_ir::InstrId(idx as u32);
    }
    image.instructions = all;
}

/// Helper trait: the operator's own instructions are never removed by user
/// revocation, even though they carry no owner annotation.
trait BaseMarker {
    fn is_base_instruction_marker(&self) -> bool;
}

impl BaseMarker for clickinc_ir::Instruction {
    fn is_base_instruction_marker(&self) -> bool {
        // base instructions never carried an owner in the first place; by the
        // time removal runs, an instruction that *lost* its last owner is a user
        // instruction, so this marker is only true for instructions that always
        // were owner-less — which `remove_user_program` never reaches because it
        // only touches instructions whose owner set changed.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::base_program;
    use crate::isolation::isolate_user_program;
    use clickinc_blockdag::{build_block_dag, BlockConfig};

    use clickinc_frontend::compile_source;
    use clickinc_lang::templates::{count_min_sketch, kvs_template, KvsParams};
    use clickinc_placement::{place, PlacementConfig, PlacementNetwork, ResourceLedger};
    use clickinc_topology::{reduce_for_traffic, Topology};

    struct Setup {
        topo: Topology,
        pod_of: BTreeMap<NodeId, Option<usize>>,
    }

    fn setup() -> Setup {
        let topo = Topology::emulation_topology_all_tofino();
        let pod_of = topo.nodes().iter().map(|n| (n.id, n.pod)).collect();
        Setup { topo, pod_of }
    }

    fn place_user(
        setup: &Setup,
        name: &str,
        id: i64,
        sources: &[&str],
        dst: &str,
    ) -> (IrProgram, PlacementPlan) {
        let t = if name.starts_with("kvs") {
            kvs_template(name, KvsParams { cache_depth: 2000, ..Default::default() })
        } else {
            count_min_sketch(name, 3, 2048)
        };
        let ir = compile_source(name, &t.source).unwrap();
        let isolated = isolate_user_program(&ir, name, id);
        let dag = build_block_dag(&isolated, &BlockConfig::default());
        let srcs: Vec<NodeId> = sources.iter().map(|s| setup.topo.find(s).unwrap()).collect();
        let dst_id = setup.topo.find(dst).unwrap();
        let reduced = reduce_for_traffic(&setup.topo, &srcs, dst_id, &[]);
        let net = PlacementNetwork::from_reduced(&setup.topo, &reduced, &ResourceLedger::new());
        let plan = place(&isolated, &dag, &net, &PlacementConfig::default()).unwrap();
        (isolated, plan)
    }

    #[test]
    fn incremental_add_touches_only_the_placed_devices() {
        let s = setup();
        let base = base_program();
        let mut images = DeviceImages::default();
        let (prog, plan) = place_user(&s, "kvs0", 1, &["pod0a", "pod1a"], "pod2b");
        let delta = add_user_program(&mut images, &base, &prog, &plan, &s.pod_of);
        assert!(!delta.affected_devices.is_empty());
        assert_eq!(delta.program_count(), 0, "no other tenant is affected");
        // every touched image validates and contains the user's state
        for device in &delta.affected_devices {
            let image = &images.images[device];
            assert!(image.validate().is_ok(), "{}", image.dump());
        }
        assert!(delta.device_count() <= s.topo.programmable_devices().len());
    }

    #[test]
    fn second_tenant_does_not_disturb_the_first_incrementally() {
        let s = setup();
        let base = base_program();
        let mut images = DeviceImages::default();
        let (p1, plan1) = place_user(&s, "kvs0", 1, &["pod0a"], "pod2b");
        add_user_program(&mut images, &base, &p1, &plan1, &s.pod_of);
        let images_snapshot: BTreeMap<NodeId, usize> =
            images.images.iter().map(|(d, img)| (*d, img.len())).collect();

        let (p2, plan2) = place_user(&s, "cms1", 2, &["pod1a"], "pod2a");
        let delta2 = add_user_program(&mut images, &base, &p2, &plan2, &s.pod_of);
        // devices that only host kvs0 keep the exact same image length
        for (device, len_before) in &images_snapshot {
            if !delta2.affected_devices.contains(device) {
                assert_eq!(images.images[device].len(), *len_before);
            }
        }
    }

    #[test]
    fn monolithic_add_affects_more_than_incremental() {
        let s = setup();
        let base = base_program();

        // incremental world
        let mut inc_images = DeviceImages::default();
        let (p1, plan1) = place_user(&s, "kvs0", 1, &["pod0a", "pod1a"], "pod2b");
        add_user_program(&mut inc_images, &base, &p1, &plan1, &s.pod_of);
        let (p2, plan2) = place_user(&s, "cms1", 2, &["pod0a", "pod1a"], "pod2b");
        let inc_delta = add_user_program(&mut inc_images, &base, &p2, &plan2, &s.pod_of);

        // monolithic world (same programs, same plans)
        let mut mono_images = DeviceImages::default();
        add_user_program(&mut mono_images, &base, &p1, &plan1, &s.pod_of);
        let mono_delta =
            add_user_program_monolithic(&mut mono_images, &base, &p2, &plan2, &s.pod_of);

        assert!(mono_delta.device_count() >= inc_delta.device_count());
        assert!(mono_delta.program_count() >= inc_delta.program_count());
        assert!(mono_delta.pod_count() >= inc_delta.pod_count());
        assert!(
            mono_delta.program_count() > 0,
            "monolithic redeployment recompiles the co-resident program"
        );
    }

    #[test]
    fn removal_strips_annotations_and_leaves_others_running() {
        let s = setup();
        let base = base_program();
        let mut images = DeviceImages::default();
        let (p1, plan1) = place_user(&s, "kvs0", 1, &["pod0a"], "pod2b");
        let (p2, plan2) = place_user(&s, "cms1", 2, &["pod0a"], "pod2b");
        add_user_program(&mut images, &base, &p1, &plan1, &s.pod_of);
        add_user_program(&mut images, &base, &p2, &plan2, &s.pod_of);

        let delta = remove_user_program(&mut images, "kvs0", &s.pod_of);
        assert!(!delta.affected_devices.is_empty());
        for image in images.images.values() {
            // kvs0 is gone (its instructions are NoOps and its objects removed)
            assert!(!image.owners().contains("kvs0"));
            assert!(image.object("kvs0_cache").is_none());
            // cms1's state survives wherever it was placed
        }
        assert!(images.images.values().any(|img| img.owners().contains("cms1")));
        // removing a non-existent user is a no-op
        let empty = remove_user_program(&mut images, "ghost", &s.pod_of);
        assert_eq!(empty.device_count(), 0);
    }
}
