//! Adaptive-runtime demo: a load shift absorbed by the telemetry-driven
//! reconfiguration loop.
//!
//! A hot KVS tenant and a background MLAgg tenant deploy with pinned
//! sharding — everyone starts on one shard.  When the hot tenant's surge
//! saturates its home shard's bounded ingress queue, the control loop reads
//! the congestion telemetry, live-reshards the tenant `ByTenant → ByFlow`
//! (its state profile admits it) and rebalances the per-tenant ingress
//! budgets; the identical surge then lands on every shard and the admit
//! ratio recovers.  A static control run proves the adaptation changed
//! goodput, never results: with a shed-nothing policy both runs finish with
//! bit-identical per-tenant totals and store fingerprints.
//!
//! Run with: `cargo run --release --example adaptive_serving`

use clickinc_apps::adaptive::{serve_adaptive_scenario, AdaptiveServingConfig, PhaseStats};
use clickinc_runtime::OverloadPolicy;

fn show(label: &str, phase: &PhaseStats) {
    println!(
        "  {label:<8} offered {:>5} | admitted {:>5} | shed {:>5} | admit ratio {:.3}",
        phase.offered,
        phase.admitted,
        phase.shed,
        phase.admit_ratio()
    );
}

fn main() {
    let base = AdaptiveServingConfig::default();
    println!(
        "=== Adaptive serving: pinned hot KVS vs {}-deep queues on {} shards ===\n",
        base.queue_capacity, base.shards
    );

    let adaptive = serve_adaptive_scenario(&base).expect("adaptive scenario serves");
    let static_run =
        serve_adaptive_scenario(&AdaptiveServingConfig { adapt: false, ..base.clone() })
            .expect("static scenario serves");

    println!("-- adaptive run (drop-tail) --");
    show("warm", &adaptive.warm);
    show("surge", &adaptive.surge);
    show("adapted", &adaptive.adapted);
    println!(
        "  hot tenant mode: {} -> {}",
        adaptive.hot_mode_before.label(),
        adaptive.hot_mode_after.label()
    );
    for action in &adaptive.actions {
        println!("  action: {action}");
    }
    println!("  recovery: {:.2}x\n", adaptive.recovery());

    println!("-- static control (same traffic, loop off) --");
    show("warm", &static_run.warm);
    show("surge", &static_run.surge);
    show("adapted", &static_run.adapted);
    println!("  recovery: {:.2}x\n", static_run.recovery());

    assert!(adaptive.hot_mode_after.is_by_flow(), "the loop spread the hot tenant");
    // the gate compares the post-adaptation phases absolutely — the recovery
    // ratio's denominator (surge admits) is noisy near zero under drop-tail,
    // so it's printed above but never asserted against
    assert!(
        adaptive.adapted.admit_ratio() > 1.5 * static_run.adapted.admit_ratio(),
        "adaptation recovered goodput: adapted-phase admit ratio {:.3} vs static {:.3}",
        adaptive.adapted.admit_ratio(),
        static_run.adapted.admit_ratio()
    );

    // the safety half: under a shed-nothing policy, adapting mid-run leaves
    // every result bit-identical to never adapting
    let safe =
        AdaptiveServingConfig { overload: OverloadPolicy::Backpressure { credits: 256 }, ..base };
    let adapted = serve_adaptive_scenario(&safe).expect("backpressure adaptive run");
    let control = serve_adaptive_scenario(&AdaptiveServingConfig { adapt: false, ..safe })
        .expect("backpressure static run");
    assert_eq!(adapted.store_fingerprints, control.store_fingerprints);
    assert_eq!(
        (adapted.hot.packets, adapted.hot.completed, adapted.hot.hits),
        (control.hot.packets, control.hot.completed, control.hot.hits),
    );
    println!(
        "backpressure cross-check: adaptive and static runs agree bit-for-bit \
         ({} stores, hot served {})",
        adapted.store_fingerprints.len(),
        adapted.hot.completed
    );
    println!("adaptation changes goodput and latency — never results");
}
