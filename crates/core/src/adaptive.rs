//! The service-level adaptive runtime: the telemetry-driven reconfiguration
//! loop ([`clickinc_runtime::adaptive`]) wired to the full control plane.
//!
//! The engine-level [`AdaptiveController`] only knows what it is told — which
//! tenants exist and what sharding their state profiles admit.  This module
//! closes the remaining gaps:
//!
//! * **Eligibility** comes from the same state-profile analysis
//!   ([`crate::sharding::sharding_mode_for`]) that gates every deploy, so the
//!   loop can never flow-shard a tenant the verifier classified as pinned;
//! * **Reshards** applied on the engine are published through
//!   [`Controller::notify_resharded`], so reconfiguration hooks (and any
//!   attached ablation engines) observe the move;
//! * **Replans** are routed through [`ClickIncService::replace_tenant`] —
//!   the full plan → verify → admission → commit chain — and a refused
//!   re-placement restores the original deployment instead of dropping the
//!   tenant.
//!
//! ```
//! use clickinc::{AdaptiveRuntime, ClickIncService, InitialSharding, ServiceRequest};
//! use clickinc_runtime::AdaptivePolicy;
//! use clickinc_topology::Topology;
//!
//! let service = ClickIncService::new(Topology::emulation_topology_all_tofino()).unwrap();
//! // conservative placement: everyone starts on one shard…
//! service.set_initial_sharding(InitialSharding::Pinned);
//! let request = ServiceRequest::builder("kvs0")
//!     .template(clickinc_lang::templates::kvs_template("kvs0", Default::default()))
//!     .from_("pod0a")
//!     .to("pod2b")
//!     .build()
//!     .unwrap();
//! service.deploy(request).unwrap();
//! // …and the control loop spreads tenants only under observed saturation
//! let mut adaptive = AdaptiveRuntime::new(AdaptivePolicy::default());
//! adaptive.track(&service, "kvs0");
//! let outcome = adaptive.step(&service); // baseline epoch: observes, acts later
//! assert!(outcome.tick.actions.is_empty());
//! service.finish();
//! ```

use crate::service::ClickIncService;
use crate::sharding::sharding_mode_for;
use clickinc_runtime::adaptive::{AdaptAction, AdaptiveController, AdaptivePolicy, AdaptiveTick};
use clickinc_runtime::ShardingMode;

/// What one [`AdaptiveRuntime::step`] observed and did, service-wide.
#[derive(Debug)]
pub struct AdaptiveOutcome {
    /// The engine-level tick: every decided action plus the reshards and
    /// budget resizes already applied.
    pub tick: AdaptiveTick,
    /// Tenants successfully re-placed through the gated plan/commit chain.
    pub replaced: Vec<String>,
    /// Re-placements the chain refused (verification, placement or admission
    /// policy); the original deployment was restored in each case.
    pub refused: Vec<(String, crate::ClickIncError)>,
}

impl AdaptiveOutcome {
    /// Whether the step changed anything — resharded, resized or re-placed.
    pub fn acted(&self) -> bool {
        !self.tick.applied.is_empty() || !self.replaced.is_empty()
    }
}

/// The adaptive runtime at service scope: owns an engine-level
/// [`AdaptiveController`] and mediates between it and the
/// [`ClickIncService`]'s controller.  See the [module docs](self).
#[derive(Debug)]
pub struct AdaptiveRuntime {
    controller: AdaptiveController,
}

impl AdaptiveRuntime {
    /// A loop with the given thresholds, tracking no tenants yet.
    pub fn new(policy: AdaptivePolicy) -> AdaptiveRuntime {
        AdaptiveRuntime { controller: AdaptiveController::new(policy) }
    }

    /// The engine-level control loop (for inspection).
    pub fn controller(&self) -> &AdaptiveController {
        &self.controller
    }

    /// Start adapting a deployed tenant.  Its *eligibility* — the most
    /// parallel sharding its state profile admits — is derived from the live
    /// deployment's hops with the same analysis every deploy runs; its
    /// *current* mode is read from the serving engine.  Unknown tenants are
    /// ignored.
    pub fn track(&mut self, service: &ClickIncService, user: &str) {
        let hops = service.controller().tenant_hops(user);
        if hops.is_empty() {
            return;
        }
        let eligible = sharding_mode_for(&hops);
        let current = service.engine_handle().sharding_mode(user).unwrap_or(ShardingMode::ByTenant);
        self.controller.track(user, current, eligible);
    }

    /// Stop adapting a tenant (e.g. after its removal).
    pub fn forget(&mut self, user: &str) {
        self.controller.forget(user);
    }

    /// One control-loop turn: snapshot the engine's telemetry, decide and
    /// apply engine-level actions, publish applied reshards through the
    /// controller's reconfiguration hooks, and route every `Replan` through
    /// [`ClickIncService::replace_tenant`] — the verifier and admission
    /// chain gate each re-placement, and a refusal restores the original
    /// deployment.
    pub fn step(&mut self, service: &ClickIncService) -> AdaptiveOutcome {
        let engine = service.engine_handle();
        let tick = self.controller.step(&engine);
        for action in &tick.applied {
            if let AdaptAction::Reshard { user, to, .. } = action {
                service.controller().notify_resharded(user, to.clone());
            }
        }
        let mut replaced = Vec::new();
        let mut refused = Vec::new();
        for action in &tick.replans {
            let user = action.user().to_string();
            match service.replace_tenant(&user) {
                Ok(handle) => {
                    self.controller.note_replaced(&user, handle.sharding_mode().clone());
                    replaced.push(user);
                }
                Err(err) => {
                    // the original deployment was restored; keep tracking it
                    // under whatever mode the engine now reports
                    if let Some(mode) = engine.sharding_mode(&user) {
                        self.controller.note_replaced(&user, mode);
                    }
                    refused.push((user, err));
                }
            }
        }
        AdaptiveOutcome { tick, replaced, refused }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ServiceRequest;
    use crate::service::InitialSharding;
    use clickinc_lang::templates::{kvs_template, KvsParams};
    use clickinc_runtime::workload::{KvsWorkload, KvsWorkloadConfig};
    use clickinc_runtime::{EngineConfig, OverloadPolicy};
    use clickinc_topology::Topology;

    fn service() -> ClickIncService {
        ClickIncService::with_config(
            Topology::emulation_topology_all_tofino(),
            EngineConfig {
                shards: 4,
                batch_size: 16,
                queue_capacity: 64,
                overload: OverloadPolicy::DropTail,
                ..Default::default()
            },
        )
        .expect("valid config")
    }

    fn kvs_request(user: &str) -> ServiceRequest {
        ServiceRequest::builder(user)
            .template(kvs_template(user, KvsParams { cache_depth: 1000, ..Default::default() }))
            .from_("pod0a")
            .to("pod2b")
            .build()
            .expect("valid request")
    }

    fn saturate(service: &ClickIncService, user: &str, numeric_id: i64, requests: usize) {
        let mut wl = KvsWorkload::new(KvsWorkloadConfig {
            tenant: user.to_string(),
            user_id: numeric_id,
            keys: 500,
            skew: 1.1,
            requests,
            rate_pps: 10_000_000.0,
            seed: 9,
        });
        service.engine_handle().run_workload(&mut wl, usize::MAX, 512);
        service.flush();
    }

    #[test]
    fn a_pinned_tenant_is_spread_by_the_loop_under_saturation() {
        let service = service();
        service.set_initial_sharding(InitialSharding::Pinned);
        let tenant = service.deploy(kvs_request("kvs0")).expect("deploys");
        assert_eq!(tenant.sharding_mode(), &ShardingMode::ByTenant, "pinned start");
        let numeric_id = tenant.numeric_id();

        let mut adaptive = AdaptiveRuntime::new(AdaptivePolicy::default());
        adaptive.track(&service, "kvs0");
        assert!(adaptive.step(&service).tick.actions.is_empty(), "baseline epoch");

        // a 4096-packet burst against a 64-deep single home shard sheds hard
        saturate(&service, "kvs0", numeric_id, 4096);
        let outcome = adaptive.step(&service);
        assert!(outcome.acted(), "the loop reacted: {:?}", outcome.tick.actions);
        let resharded = outcome.tick.applied.iter().any(|a| {
            matches!(a, AdaptAction::Reshard { user, to, .. }
                if user == "kvs0" && to.is_by_flow())
        });
        assert!(resharded, "the KVS tenant spread across shards: {:?}", outcome.tick.applied);
        assert!(
            service.engine_handle().sharding_mode("kvs0").expect("live").is_by_flow(),
            "the engine really moved"
        );
        // telemetry survived the reshard and the mode is exported
        let stats = service.telemetry().tenant("kvs0").cloned().expect("tracked");
        assert!(stats.packets > 0, "counters survived the move");
        assert!(stats.sharding_mode.starts_with("by_flow"), "mode exported: {stats:?}");
        service.finish();
    }

    #[test]
    fn device_fault_losses_escalate_straight_to_replan() {
        let service = service();
        let tenant = service.deploy(kvs_request("kvs0")).expect("deploys");
        let numeric_id = tenant.numeric_id();
        let device = tenant.hops().first().expect("has hops").device.clone();
        let mut adaptive = AdaptiveRuntime::new(AdaptivePolicy::default());
        adaptive.track(&service, "kvs0");
        adaptive.step(&service); // baseline epoch

        // a dead device on the route loses packets: the fault telemetry must
        // trigger a Replan immediately, without the saturation ladder
        service.engine_handle().set_device_health(&device, clickinc_runtime::DeviceHealth::Down);
        saturate(&service, "kvs0", numeric_id, 256);
        let stats = service.telemetry().tenant("kvs0").cloned().expect("tracked");
        assert!(stats.fault_lost_packets > 0, "losses recorded: {stats:?}");
        let outcome = adaptive.step(&service);
        assert_eq!(outcome.replaced, vec!["kvs0".to_string()], "{:?}", outcome.tick.actions);
        assert!(service.active_users().contains(&"kvs0".to_string()));
        service.engine_handle().set_device_health(&device, clickinc_runtime::DeviceHealth::Up);
        service.finish();
    }

    #[test]
    fn replans_route_through_replace_tenant_and_refusals_restore() {
        let service = service();
        service.set_initial_sharding(InitialSharding::Pinned);
        let tenant = service.deploy(kvs_request("kvs0")).expect("deploys");
        let numeric_id = tenant.numeric_id();
        // an ineligible profile forces the loop straight to replans: claim
        // the tenant only admits ByTenant by tracking it directly
        let mut adaptive = AdaptiveRuntime::new(AdaptivePolicy {
            replan_epochs: 1,
            cooldown_epochs: 0,
            ..Default::default()
        });
        adaptive.track(&service, "kvs0");
        // overwrite the derived eligibility with a pinned one
        adaptive.controller.track("kvs0", ShardingMode::ByTenant, ShardingMode::ByTenant);
        adaptive.step(&service);

        // with an admit-everything policy the replan succeeds
        saturate(&service, "kvs0", numeric_id, 4096);
        let outcome = adaptive.step(&service);
        assert_eq!(outcome.replaced, vec!["kvs0".to_string()], "{:?}", outcome.tick.actions);
        assert!(service.active_users().contains(&"kvs0".to_string()));
        let new_id = service.controller().numeric_id_of("kvs0").expect("redeployed");
        assert_ne!(new_id, numeric_id, "a re-placement mints a fresh numeric id");

        // with a reject-everything policy the replan is refused and the
        // deployment restored rather than dropped
        service.set_admission_policy(crate::policy::MaxTenants { max_tenants: 0 });
        saturate(&service, "kvs0", new_id, 4096);
        let outcome = adaptive.step(&service);
        assert!(!outcome.refused.is_empty(), "the gate refused: {:?}", outcome.tick.actions);
        assert!(
            service.active_users().contains(&"kvs0".to_string()),
            "a refused re-placement must not drop the tenant"
        );
        service.finish();
    }
}
