//! NPL backend for Broadcom Trident4.

use crate::emit::{args, compute_expr, guard_expr, operand, sanitize};
use clickinc_ir::{IrProgram, ObjectKind, OpCode};
use std::fmt::Write as _;

/// Generate an NPL program for the merged device image.
pub fn generate(image: &IrProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// Auto-generated NPL for program `{}` (Trident4)", image.name);
    let _ = writeln!(out, "package clickinc_{};", sanitize(&image.name));
    out.push('\n');

    // headers / bus declarations
    let _ = writeln!(out, "struct inc_header_t {{");
    let _ = writeln!(out, "    fields {{");
    let _ = writeln!(out, "        inc_user : 8;");
    let _ = writeln!(out, "        step : 16;");
    let _ = writeln!(out, "        param : 32;");
    for field in &image.headers {
        let _ =
            writeln!(out, "        {} : {};", sanitize(&field.name), field.ty.width_bits().max(1));
    }
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out, "bus obj_bus {{ inc_header_t inc; }}");
    out.push('\n');

    // tables / flex state
    for obj in &image.objects {
        let name = sanitize(&obj.name);
        match &obj.kind {
            ObjectKind::Table { key_width, value_width, depth, .. } => {
                let _ = writeln!(out, "logical_table {name} {{");
                let _ = writeln!(out, "    min_size : {depth};");
                let _ = writeln!(out, "    key {{ fields {{ key : {key_width}; }} }}");
                let _ = writeln!(out, "    data {{ fields {{ value : {value_width}; }} }}");
                let _ = writeln!(out, "}}");
            }
            ObjectKind::Array { rows, size, width } => {
                for row in 0..*rows {
                    let _ = writeln!(
                        out,
                        "flex_state {name}_row{row} {{ entries : {size}; width : {width}; }}"
                    );
                }
            }
            ObjectKind::Sketch { rows, cols, width, .. } => {
                for row in 0..*rows {
                    let _ = writeln!(
                        out,
                        "flex_state {name}_row{row} {{ entries : {cols}; width : {width}; }}"
                    );
                }
            }
            ObjectKind::Seq { size, width } => {
                let _ = writeln!(out, "flex_state {name} {{ entries : {size}; width : {width}; }}");
            }
            ObjectKind::Hash { algo, .. } => {
                let _ =
                    writeln!(out, "hash_unit {name} {{ algorithm : crc{}; }}", algo.output_bits());
            }
            ObjectKind::Crypto { .. } => {
                let _ = writeln!(out, "// crypto object `{name}` is not supported on TD4");
            }
        }
    }
    out.push('\n');

    // processing function
    let _ = writeln!(out, "program ingress_flow {{");
    let mut declared = std::collections::BTreeSet::new();
    for instr in &image.instructions {
        if let Some(dest) = instr.dest() {
            let d = sanitize(dest);
            if declared.insert(d.clone()) {
                let _ = writeln!(out, "    bit[32] {d};");
            }
        }
    }
    for instr in &image.instructions {
        let line = instruction_line(instr);
        match &instr.guard {
            Some(g) => {
                let _ = writeln!(out, "    if ({}) {{ {line} }}", guard_expr(g));
            }
            None => {
                let _ = writeln!(out, "    {line}");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn instruction_line(instr: &clickinc_ir::Instruction) -> String {
    if let Some((dest, expr)) = compute_expr(&instr.op) {
        return format!("{dest} = {expr};");
    }
    match &instr.op {
        OpCode::Hash { dest, object, keys } => {
            format!("{} = {}.compute({});", sanitize(dest), sanitize(object), args(keys))
        }
        OpCode::ReadState { dest, object, index } => {
            format!("{} = {}.lookup({});", sanitize(dest), sanitize(object), args(index))
        }
        OpCode::WriteState { object, index, value } => {
            format!("{}.update({}, {});", sanitize(object), args(index), args(value))
        }
        OpCode::CountState { dest, object, index, delta } => match dest {
            Some(d) => format!(
                "{} = {}.increment({}, {});",
                sanitize(d),
                sanitize(object),
                args(index),
                operand(delta)
            ),
            None => format!("{}.increment({}, {});", sanitize(object), args(index), operand(delta)),
        },
        OpCode::ClearState { object } => format!("{}.reset();", sanitize(object)),
        OpCode::DeleteState { object, index } => {
            format!("{}.delete({});", sanitize(object), args(index))
        }
        OpCode::Drop => "drop_packet();".to_string(),
        OpCode::Forward => "forward_packet(obj_bus);".to_string(),
        OpCode::Back { .. } => "return_to_sender(obj_bus);".to_string(),
        OpCode::Mirror { .. } => "mirror_packet(1);".to_string(),
        OpCode::Multicast { group } => format!("multicast_packet({});", operand(group)),
        OpCode::CopyTo { target, values } => {
            format!("copy_to_{}({});", sanitize(target), args(values))
        }
        OpCode::SetHeader { field, value } => {
            format!("obj_bus.inc.{} = {};", sanitize(field), operand(value))
        }
        OpCode::NoOp => "// removed".to_string(),
        other => format!("// {}", other.mnemonic()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_frontend::compile_source;
    use clickinc_lang::templates::{dqacc_template, DqAccParams};

    #[test]
    fn dqacc_npl_declares_flex_state_per_way() {
        let t = dqacc_template("dq", DqAccParams { depth: 1000, ways: 4 });
        let ir = compile_source("dq", &t.source).unwrap();
        let npl = generate(&ir);
        assert!(npl.contains("package clickinc_dq"));
        for way in 0..4 {
            assert!(npl.contains(&format!("cache_row{way}")), "way {way} missing");
        }
        assert!(npl.contains("hash_unit hidx"));
        assert!(npl.contains("program ingress_flow"));
    }
}
