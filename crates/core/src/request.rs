//! INC service requests and their fallible builder.
//!
//! [`ServiceRequest::builder`] is the preferred construction path: it
//! validates structural problems — empty ids, missing endpoints, a weights
//! vector whose length disagrees with the sources — at *build* time, so a
//! malformed request never reaches the controller's compile/place pipeline.

use clickinc_ir::Fnv;
use clickinc_lang::templates::Template;
use clickinc_lang::Profile;
use std::fmt;

/// A structural problem with a [`ServiceRequest`], caught at build time.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RequestError {
    /// The user id is empty.
    EmptyUser,
    /// No program source was provided (or it is empty).
    EmptySource,
    /// No traffic source host was provided.
    NoSources,
    /// A traffic source host name is empty.
    EmptyHost,
    /// No destination host was provided (or it is empty).
    EmptyDestination,
    /// Per-source traffic weights were provided but their length disagrees
    /// with the number of sources.
    WeightsMismatch {
        /// Number of traffic source hosts.
        sources: usize,
        /// Number of weights provided.
        weights: usize,
    },
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::EmptyUser => write!(f, "user id must not be empty"),
            RequestError::EmptySource => write!(f, "program source must not be empty"),
            RequestError::NoSources => write!(f, "at least one traffic source host is required"),
            RequestError::EmptyHost => write!(f, "traffic source host names must not be empty"),
            RequestError::EmptyDestination => write!(f, "destination host must not be empty"),
            RequestError::WeightsMismatch { sources, weights } => write!(
                f,
                "{weights} traffic weight(s) for {sources} source host(s) — provide one weight \
                 per source, or none for uniform traffic"
            ),
        }
    }
}

impl std::error::Error for RequestError {}

/// A request to deploy one INC program for one user.
#[derive(Debug, Clone)]
pub struct ServiceRequest {
    /// User / program id (must be unique among active programs).
    pub user: String,
    /// ClickINC source of the program.
    pub source: String,
    /// Names of the client/worker servers generating the traffic.
    pub sources: Vec<String>,
    /// Name of the destination server.
    pub destination: String,
    /// Optional per-source traffic weights (packets per second).
    pub traffic_weights: Vec<f64>,
    /// Optional configuration profile (used for reporting; the template
    /// parameters are already baked into `source`).
    pub profile: Option<Profile>,
    /// Admission priority (higher = more important; default 0).  Consulted
    /// by priority-aware admission policies and by the service retry queue's
    /// drain order; it does not influence planning and is therefore excluded
    /// from [`fingerprint`](ServiceRequest::fingerprint).
    pub priority: u8,
}

impl ServiceRequest {
    /// Start building a request for `user` (the fallible, validating path):
    ///
    /// ```
    /// use clickinc::ServiceRequest;
    /// let request = ServiceRequest::builder("u1")
    ///     .source("forward()\n")
    ///     .from_("pod0a")
    ///     .rate_pps(1_000_000.0)
    ///     .from_("pod1a")
    ///     .rate_pps(500_000.0)
    ///     .to("pod2b")
    ///     .build()
    ///     .expect("well-formed request");
    /// assert_eq!(request.sources.len(), request.traffic_weights.len());
    /// ```
    pub fn builder(user: impl Into<String>) -> ServiceRequestBuilder {
        ServiceRequestBuilder {
            user: user.into(),
            source: String::new(),
            sources: Vec::new(),
            destination: String::new(),
            traffic_weights: Vec::new(),
            profile: None,
            priority: 0,
        }
    }

    /// Build a request from raw ClickINC source (infallible legacy path; the
    /// controller re-validates at plan time).
    pub fn new(
        user: impl Into<String>,
        source: impl Into<String>,
        sources: &[&str],
        destination: &str,
    ) -> ServiceRequest {
        ServiceRequest {
            user: user.into(),
            source: source.into(),
            sources: sources.iter().map(|s| s.to_string()).collect(),
            destination: destination.to_string(),
            traffic_weights: Vec::new(),
            profile: None,
            priority: 0,
        }
    }

    /// Build a request from an instantiated template.
    pub fn from_template(
        template: Template,
        sources: &[&str],
        destination: &str,
    ) -> ServiceRequest {
        ServiceRequest::new(template.name.clone(), template.source, sources, destination)
    }

    /// Attach the originating profile (builder style).
    pub fn with_profile(mut self, profile: Profile) -> ServiceRequest {
        self.profile = Some(profile);
        self
    }

    /// Set the admission priority (builder style; higher wins).
    pub fn with_priority(mut self, priority: u8) -> ServiceRequest {
        self.priority = priority;
        self
    }

    /// A stable digest of everything about this request that influences
    /// planning: the user, the program source, the traffic endpoints and the
    /// per-source weights.  Two requests that fingerprint equal are solved to
    /// the same plan at the same controller epoch, which is exactly why the
    /// planner keys its plan cache on `(fingerprint, epoch)`.
    ///
    /// `profile` and `priority` are deliberately excluded: the former is
    /// reporting metadata — the template parameters it describes are already
    /// baked into `source` — and the latter only orders *admission*, never
    /// the solved plan.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_str(&self.user);
        h.write_str(&self.source);
        h.write_u64(self.sources.len() as u64);
        for host in &self.sources {
            h.write_str(host);
        }
        h.write_str(&self.destination);
        h.write_u64(self.traffic_weights.len() as u64);
        for w in &self.traffic_weights {
            h.write_u64(w.to_bits());
        }
        h.finish()
    }

    /// Check the structural invariants the builder enforces.  The controller
    /// calls this at plan time so requests assembled through the legacy
    /// constructors get the same validation, just later.
    pub fn validate(&self) -> Result<(), RequestError> {
        if self.user.is_empty() {
            return Err(RequestError::EmptyUser);
        }
        if self.source.is_empty() {
            return Err(RequestError::EmptySource);
        }
        if self.sources.is_empty() {
            return Err(RequestError::NoSources);
        }
        if self.sources.iter().any(String::is_empty) {
            return Err(RequestError::EmptyHost);
        }
        if self.destination.is_empty() {
            return Err(RequestError::EmptyDestination);
        }
        if !self.traffic_weights.is_empty() && self.traffic_weights.len() != self.sources.len() {
            return Err(RequestError::WeightsMismatch {
                sources: self.sources.len(),
                weights: self.traffic_weights.len(),
            });
        }
        Ok(())
    }
}

/// Fallible [`ServiceRequest`] builder; see [`ServiceRequest::builder`].
#[derive(Debug, Clone)]
pub struct ServiceRequestBuilder {
    user: String,
    source: String,
    sources: Vec<String>,
    destination: String,
    traffic_weights: Vec<f64>,
    profile: Option<Profile>,
    priority: u8,
}

impl ServiceRequestBuilder {
    /// Set the raw ClickINC program source.
    pub fn source(mut self, source: impl Into<String>) -> Self {
        self.source = source.into();
        self
    }

    /// Take the program source from an instantiated provider template.
    pub fn template(mut self, template: Template) -> Self {
        self.source = template.source;
        self
    }

    /// Append a traffic source host (call once per client/worker server).
    pub fn from_(mut self, host: impl Into<String>) -> Self {
        self.sources.push(host.into());
        self
    }

    /// Set the destination host.
    pub fn to(mut self, host: impl Into<String>) -> Self {
        self.destination = host.into();
        self
    }

    /// Attach an offered rate (packets per second) to the most recently
    /// added source host.  Either give every source a rate or none:
    /// [`build`](ServiceRequestBuilder::build) rejects partial weighting.
    pub fn rate_pps(mut self, rate: f64) -> Self {
        self.traffic_weights.push(rate);
        self
    }

    /// Replace the whole per-source weights vector at once.
    pub fn weights(mut self, weights: Vec<f64>) -> Self {
        self.traffic_weights = weights;
        self
    }

    /// Attach the originating configuration profile.
    pub fn profile(mut self, profile: Profile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Set the admission priority (higher wins; the default is 0).
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Validate and produce the request.
    pub fn build(self) -> Result<ServiceRequest, RequestError> {
        let request = ServiceRequest {
            user: self.user,
            source: self.source,
            sources: self.sources,
            destination: self.destination,
            traffic_weights: self.traffic_weights,
            profile: self.profile,
            priority: self.priority,
        };
        request.validate()?;
        Ok(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_lang::templates::{kvs_template, KvsParams};

    #[test]
    fn builder_validates_and_produces_requests() {
        let r = ServiceRequest::builder("u1")
            .source("forward()\n")
            .from_("a")
            .rate_pps(1.0)
            .from_("b")
            .rate_pps(2.0)
            .to("c")
            .build()
            .expect("valid request");
        assert_eq!(r.user, "u1");
        assert_eq!(r.sources, vec!["a", "b"]);
        assert_eq!(r.traffic_weights, vec![1.0, 2.0]);
        assert!(r.profile.is_none());

        let t = kvs_template("kvs_0", KvsParams::default());
        let r = ServiceRequest::builder("kvs_0")
            .template(t)
            .from_("pod0a")
            .to("pod2b")
            .profile(clickinc_lang::profile::example_kvs_profile())
            .build()
            .expect("template request");
        assert_eq!(r.user, "kvs_0");
        assert!(r.source.contains("cache"));
        assert!(r.profile.is_some());
    }

    #[test]
    fn builder_rejects_structural_problems() {
        let err = |b: ServiceRequestBuilder| b.build().unwrap_err();
        assert_eq!(
            err(ServiceRequest::builder("").source("forward()\n").from_("a").to("b")),
            RequestError::EmptyUser
        );
        assert_eq!(err(ServiceRequest::builder("u").from_("a").to("b")), RequestError::EmptySource);
        assert_eq!(
            err(ServiceRequest::builder("u").source("forward()\n").to("b")),
            RequestError::NoSources
        );
        assert_eq!(
            err(ServiceRequest::builder("u").source("forward()\n").from_("").to("b")),
            RequestError::EmptyHost
        );
        assert_eq!(
            err(ServiceRequest::builder("u").source("forward()\n").from_("a")),
            RequestError::EmptyDestination
        );
        assert_eq!(
            err(ServiceRequest::builder("u")
                .source("forward()\n")
                .from_("a")
                .from_("b")
                .rate_pps(5.0)
                .to("c")),
            RequestError::WeightsMismatch { sources: 2, weights: 1 }
        );
    }

    #[test]
    fn fingerprint_tracks_the_planning_inputs_and_nothing_else() {
        let base = || ServiceRequest::new("u1", "forward()\n", &["a", "b"], "c");
        assert_eq!(base().fingerprint(), base().fingerprint(), "deterministic");
        // every planning input moves the digest…
        let mut renamed = base();
        renamed.user = "u2".to_string();
        assert_ne!(base().fingerprint(), renamed.fingerprint());
        let mut edited = base();
        edited.source = "drop()\n".to_string();
        assert_ne!(base().fingerprint(), edited.fingerprint());
        let mut rerouted = base();
        rerouted.destination = "d".to_string();
        assert_ne!(base().fingerprint(), rerouted.fingerprint());
        let mut reweighted = base();
        reweighted.traffic_weights = vec![1.0, 2.0];
        assert_ne!(base().fingerprint(), reweighted.fingerprint());
        // …while the reporting-only profile does not
        let profiled = base().with_profile(clickinc_lang::profile::example_kvs_profile());
        assert_eq!(base().fingerprint(), profiled.fingerprint());
        // …and neither does admission priority (it orders commits, not plans)
        let prioritized = base().with_priority(9);
        assert_eq!(base().fingerprint(), prioritized.fingerprint());
        // host-list splits don't collide (length-delimited hashing)
        let joined = ServiceRequest::new("u1", "forward()\n", &["ab"], "c");
        assert_ne!(base().fingerprint(), joined.fingerprint());
    }

    #[test]
    fn legacy_constructors_validate_at_plan_time() {
        assert_eq!(
            ServiceRequest::new("", "forward()\n", &["a"], "b").validate(),
            Err(RequestError::EmptyUser)
        );
        assert!(ServiceRequest::new("u", "forward()\n", &["a"], "b").validate().is_ok());
    }
}
