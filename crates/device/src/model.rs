//! Device model definitions and the per-family constants.

use clickinc_ir::{CapabilityClass, Resource, ResourceVector};
use std::collections::BTreeSet;
use std::fmt;

/// The device families ClickINC targets (paper §7.1 "Implementation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceKind {
    /// Intel Tofino switch ASIC (RMT pipeline, P4-16).
    Tofino,
    /// Intel Tofino2 switch ASIC (more stages / memory than Tofino).
    Tofino2,
    /// Broadcom Trident4 switch ASIC (NPL).
    Trident4,
    /// Netronome NFP multi-core smartNIC (Micro-C, run-to-completion).
    NfpSmartNic,
    /// Xilinx FPGA smartNIC (Vitis Networking P4 + HLS).
    FpgaSmartNic,
    /// Xilinx FPGA accelerator card attached to a switch as a bypass device.
    FpgaAccelerator,
    /// A plain server NIC/DPDK host — no in-network program can be placed here;
    /// used as the no-offload baseline.
    Server,
}

impl DeviceKind {
    /// All programmable kinds (excludes [`DeviceKind::Server`]).
    pub const PROGRAMMABLE: [DeviceKind; 6] = [
        DeviceKind::Tofino,
        DeviceKind::Tofino2,
        DeviceKind::Trident4,
        DeviceKind::NfpSmartNic,
        DeviceKind::FpgaSmartNic,
        DeviceKind::FpgaAccelerator,
    ];

    /// The default model for this kind.
    pub fn model(&self) -> DeviceModel {
        match self {
            DeviceKind::Tofino => DeviceModel::tofino(),
            DeviceKind::Tofino2 => DeviceModel::tofino2(),
            DeviceKind::Trident4 => DeviceModel::trident4(),
            DeviceKind::NfpSmartNic => DeviceModel::nfp_smartnic(),
            DeviceKind::FpgaSmartNic => DeviceModel::fpga_smartnic(),
            DeviceKind::FpgaAccelerator => DeviceModel::fpga_accelerator(),
            DeviceKind::Server => DeviceModel::server(),
        }
    }

    /// The device-specific target language emitted by the backend.
    pub fn target_language(&self) -> &'static str {
        match self {
            DeviceKind::Tofino | DeviceKind::Tofino2 => "P4-16 (TNA)",
            DeviceKind::Trident4 => "NPL",
            DeviceKind::NfpSmartNic => "Micro-C",
            DeviceKind::FpgaSmartNic | DeviceKind::FpgaAccelerator => "Verilog/HLS",
            DeviceKind::Server => "DPDK C",
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceKind::Tofino => "Tofino",
            DeviceKind::Tofino2 => "Tofino2",
            DeviceKind::Trident4 => "TD4",
            DeviceKind::NfpSmartNic => "NFP-NIC",
            DeviceKind::FpgaSmartNic => "FPGA-NIC",
            DeviceKind::FpgaAccelerator => "FPGA-Accel",
            DeviceKind::Server => "Server",
        };
        write!(f, "{s}")
    }
}

/// High-level execution architecture (paper Appendix D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Fixed pipeline of stages (Tofino, TD4): instructions map to stages and
    /// must respect stage ordering; no cyclic dependencies without recirculation.
    Pipeline,
    /// Run-to-completion cores (NFP): the whole snippet runs on a core; only
    /// aggregate resources constrain placement.
    Rtc,
    /// Hybrid (FPGA): a configurable pipeline with RTC-like flexibility.
    Hybrid,
}

/// The resource/capability model of one device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    /// Device family.
    pub kind: DeviceKind,
    /// Execution architecture.
    pub arch: Architecture,
    /// Number of pipeline stages (1 for RTC devices).
    stages: usize,
    /// Per-stage resource capacity.
    per_stage: ResourceVector,
    /// Capability classes the device supports.
    supported: BTreeSet<CapabilityClass>,
    /// Port line rate in Gbps.
    pub line_rate_gbps: f64,
    /// Base per-packet processing latency in nanoseconds.
    pub base_latency_ns: f64,
    /// Additional latency per executed IR instruction in nanoseconds.
    pub per_instr_latency_ns: f64,
}

impl DeviceModel {
    /// Number of pipeline stages (or 1 for RTC devices).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Resource capacity of one stage.
    pub fn stage_capacity(&self, _stage: usize) -> ResourceVector {
        self.per_stage
    }

    /// Total resource capacity over all stages.
    pub fn total_capacity(&self) -> ResourceVector {
        self.per_stage.scaled(self.stages as f64)
    }

    /// Total state storage the device offers, in bits: SRAM + TCAM + BRAM
    /// blocks across all stages, each converted at its block size.  This is
    /// the coarse bound the verifier's resource pre-check compares a
    /// snippet's aggregate object footprint against (the placement solver
    /// still enforces the exact per-stage constraint system).
    pub fn storage_capacity_bits(&self) -> u64 {
        let total = self.total_capacity();
        (total[Resource::SramBlocks] * crate::demand::SRAM_BLOCK_BITS
            + total[Resource::TcamBlocks] * crate::demand::TCAM_BLOCK_BITS
            + total[Resource::Bram] * crate::demand::BRAM_BLOCK_BITS) as u64
    }

    /// Whether the device can execute instructions of the given class.
    pub fn supports(&self, class: CapabilityClass) -> bool {
        self.supported.contains(&class)
    }

    /// Whether the device supports every class in the set.
    pub fn supports_all<'a>(&self, classes: impl IntoIterator<Item = &'a CapabilityClass>) -> bool {
        classes.into_iter().all(|c| self.supports(*c))
    }

    /// The supported class set.
    pub fn supported_classes(&self) -> &BTreeSet<CapabilityClass> {
        &self.supported
    }

    /// Whether any program can be placed on this device at all.
    pub fn is_programmable(&self) -> bool {
        self.kind != DeviceKind::Server
    }

    /// Clone the model with a different number of stages (used by the Table 4
    /// experiment which models 8-stage Tofino pipelines).
    pub fn with_stages(mut self, stages: usize) -> DeviceModel {
        self.stages = stages.max(1);
        self
    }

    /// Clone the model with every per-stage resource scaled by `factor`
    /// (used to model the bypass FPGA enlarging a switch's effective memory).
    pub fn with_capacity_scale(mut self, factor: f64) -> DeviceModel {
        self.per_stage = self.per_stage.scaled(factor);
        self
    }

    // ---- the concrete families ------------------------------------------------

    /// Intel Tofino: RMT pipeline.  Per Appendix E.1 Tofino cannot run integer
    /// multiplication/division (BIC), floating point (BCA), direct-index tables
    /// (BDM), stateful match tables (BSEM/BSNEM) or crypto (BCF).
    pub fn tofino() -> DeviceModel {
        DeviceModel {
            kind: DeviceKind::Tofino,
            arch: Architecture::Pipeline,
            stages: 12,
            per_stage: ResourceVector::from_pairs(&[
                (Resource::SramBlocks, 80.0),
                (Resource::TcamBlocks, 24.0),
                (Resource::StatefulAlus, 4.0),
                (Resource::StatelessAlus, 16.0),
                (Resource::HashUnits, 6.0),
                (Resource::TableSlots, 16.0),
                (Resource::GatewaySlots, 16.0),
                (Resource::PhvBits, 6144.0),
                (Resource::InstrSlots, 64.0),
            ]),
            supported: classes(&[
                CapabilityClass::Bin,
                CapabilityClass::Bso,
                CapabilityClass::Bem,
                CapabilityClass::Bnem,
                CapabilityClass::Bbpf,
                CapabilityClass::Bapf,
                CapabilityClass::Baf,
            ]),
            line_rate_gbps: 100.0,
            base_latency_ns: 400.0,
            per_instr_latency_ns: 4.0,
        }
    }

    /// Intel Tofino2: same capability envelope as Tofino with more stages and
    /// roughly double the per-stage memory.
    pub fn tofino2() -> DeviceModel {
        let mut m = DeviceModel::tofino();
        m.kind = DeviceKind::Tofino2;
        m.stages = 20;
        m.per_stage = ResourceVector::from_pairs(&[
            (Resource::SramBlocks, 160.0),
            (Resource::TcamBlocks, 32.0),
            (Resource::StatefulAlus, 4.0),
            (Resource::StatelessAlus, 20.0),
            (Resource::HashUnits, 8.0),
            (Resource::TableSlots, 16.0),
            (Resource::GatewaySlots, 16.0),
            (Resource::PhvBits, 8192.0),
            (Resource::InstrSlots, 64.0),
        ]);
        m.base_latency_ns = 450.0;
        m
    }

    /// Broadcom Trident4: pipeline ASIC; unlike Tofino it supports direct-index
    /// tables (BDM) but still no BIC/BCA/BSEM/BSNEM/BCF (Appendix E.2, Eq. 21).
    pub fn trident4() -> DeviceModel {
        DeviceModel {
            kind: DeviceKind::Trident4,
            arch: Architecture::Pipeline,
            stages: 10,
            per_stage: ResourceVector::from_pairs(&[
                (Resource::SramBlocks, 60.0),
                (Resource::TcamBlocks, 16.0),
                (Resource::StatefulAlus, 3.0),
                (Resource::StatelessAlus, 12.0),
                (Resource::HashUnits, 4.0),
                (Resource::TableSlots, 12.0),
                (Resource::GatewaySlots, 12.0),
                (Resource::PhvBits, 4096.0),
                (Resource::InstrSlots, 48.0),
            ]),
            supported: classes(&[
                CapabilityClass::Bin,
                CapabilityClass::Bso,
                CapabilityClass::Bem,
                CapabilityClass::Bnem,
                CapabilityClass::Bdm,
                CapabilityClass::Bbpf,
                CapabilityClass::Bapf,
                CapabilityClass::Baf,
            ]),
            line_rate_gbps: 100.0,
            base_latency_ns: 500.0,
            per_instr_latency_ns: 5.0,
        }
    }

    /// Netronome NFP smartNIC: ~100 RTC cores with a hierarchical memory; it
    /// supports integer multiply/divide, stateful tables and ECS crypto but not
    /// floating point (BCA) or the advanced packet functions (BAPF)
    /// (Appendix E.3, Eq. 31).
    pub fn nfp_smartnic() -> DeviceModel {
        DeviceModel {
            kind: DeviceKind::NfpSmartNic,
            arch: Architecture::Rtc,
            stages: 1,
            per_stage: ResourceVector::from_pairs(&[
                (Resource::SramBlocks, 512.0),
                (Resource::TcamBlocks, 8.0),
                (Resource::StatefulAlus, 64.0),
                (Resource::StatelessAlus, 256.0),
                (Resource::HashUnits, 32.0),
                (Resource::TableSlots, 64.0),
                (Resource::GatewaySlots, 256.0),
                (Resource::PhvBits, 16384.0),
                (Resource::InstrSlots, 8192.0),
            ]),
            supported: classes(&[
                CapabilityClass::Bin,
                CapabilityClass::Bic,
                CapabilityClass::Bso,
                CapabilityClass::Bem,
                CapabilityClass::Bsem,
                CapabilityClass::Bnem,
                CapabilityClass::Bsnem,
                CapabilityClass::Bdm,
                CapabilityClass::Bbpf,
                CapabilityClass::Baf,
                CapabilityClass::Bcf,
            ]),
            line_rate_gbps: 100.0,
            base_latency_ns: 1200.0,
            per_instr_latency_ns: 15.0,
        }
    }

    /// Xilinx FPGA smartNIC: hybrid pipeline, supports every class including
    /// floating point and AES.
    pub fn fpga_smartnic() -> DeviceModel {
        DeviceModel {
            kind: DeviceKind::FpgaSmartNic,
            arch: Architecture::Hybrid,
            stages: 24,
            per_stage: ResourceVector::from_pairs(&[
                (Resource::SramBlocks, 64.0),
                (Resource::TcamBlocks, 8.0),
                (Resource::StatefulAlus, 32.0),
                (Resource::StatelessAlus, 64.0),
                (Resource::HashUnits, 16.0),
                (Resource::TableSlots, 32.0),
                (Resource::GatewaySlots, 64.0),
                (Resource::PhvBits, 16384.0),
                (Resource::InstrSlots, 2048.0),
                (Resource::Lut, 162_000.0),
                (Resource::Bram, 270.0),
                (Resource::Dsp, 350.0),
            ]),
            supported: CapabilityClass::ALL.iter().copied().collect(),
            line_rate_gbps: 100.0,
            base_latency_ns: 900.0,
            per_instr_latency_ns: 8.0,
        }
    }

    /// Xilinx Alveo-class FPGA accelerator card used as a switch bypass
    /// (larger memory than the smartNIC variant).
    pub fn fpga_accelerator() -> DeviceModel {
        let mut m = DeviceModel::fpga_smartnic();
        m.kind = DeviceKind::FpgaAccelerator;
        m.stages = 32;
        m.per_stage = ResourceVector::from_pairs(&[
            (Resource::SramBlocks, 256.0),
            (Resource::TcamBlocks, 16.0),
            (Resource::StatefulAlus, 64.0),
            (Resource::StatelessAlus, 128.0),
            (Resource::HashUnits, 32.0),
            (Resource::TableSlots, 64.0),
            (Resource::GatewaySlots, 128.0),
            (Resource::PhvBits, 32768.0),
            (Resource::InstrSlots, 4096.0),
            (Resource::Lut, 1_300_000.0),
            (Resource::Bram, 2016.0),
            (Resource::Dsp, 9024.0),
        ]);
        m.base_latency_ns = 1100.0;
        m
    }

    /// A non-programmable server endpoint (DPDK software path).
    pub fn server() -> DeviceModel {
        DeviceModel {
            kind: DeviceKind::Server,
            arch: Architecture::Rtc,
            stages: 1,
            per_stage: ResourceVector::zero(),
            supported: BTreeSet::new(),
            line_rate_gbps: 100.0,
            base_latency_ns: 20_000.0,
            per_instr_latency_ns: 30.0,
        }
    }
}

fn classes(list: &[CapabilityClass]) -> BTreeSet<CapabilityClass> {
    list.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tofino_capability_envelope_matches_appendix_e1() {
        let t = DeviceModel::tofino();
        assert!(t.supports(CapabilityClass::Bin));
        assert!(t.supports(CapabilityClass::Bso));
        assert!(t.supports(CapabilityClass::Bem));
        assert!(t.supports(CapabilityClass::Baf));
        assert!(!t.supports(CapabilityClass::Bic), "no integer multiply on Tofino");
        assert!(!t.supports(CapabilityClass::Bca), "no floating point on Tofino");
        assert!(!t.supports(CapabilityClass::Bcf), "no crypto on Tofino");
        assert!(!t.supports(CapabilityClass::Bsem));
    }

    #[test]
    fn trident4_adds_direct_match_but_not_float() {
        let t = DeviceModel::trident4();
        assert!(t.supports(CapabilityClass::Bdm));
        assert!(!t.supports(CapabilityClass::Bca));
        assert!(!t.supports(CapabilityClass::Bcf));
    }

    #[test]
    fn nfp_supports_multiply_and_crypto_but_not_float_or_multicast() {
        let n = DeviceModel::nfp_smartnic();
        assert!(n.supports(CapabilityClass::Bic));
        assert!(n.supports(CapabilityClass::Bcf));
        assert!(n.supports(CapabilityClass::Bsem));
        assert!(!n.supports(CapabilityClass::Bca));
        assert!(!n.supports(CapabilityClass::Bapf));
        assert_eq!(n.arch, Architecture::Rtc);
        assert_eq!(n.stages(), 1);
    }

    #[test]
    fn fpga_supports_everything() {
        let f = DeviceModel::fpga_smartnic();
        for c in CapabilityClass::ALL {
            assert!(f.supports(c), "FPGA should support {c}");
        }
        assert!(f.supports_all(CapabilityClass::ALL.iter()));
        let acc = DeviceModel::fpga_accelerator();
        assert!(
            acc.total_capacity()[clickinc_ir::Resource::Bram]
                > f.total_capacity()[clickinc_ir::Resource::Bram]
        );
    }

    #[test]
    fn server_is_not_programmable() {
        let s = DeviceModel::server();
        assert!(!s.is_programmable());
        assert!(!s.supports(CapabilityClass::Bin));
        assert!(DeviceModel::tofino().is_programmable());
    }

    #[test]
    fn tofino2_is_bigger_than_tofino() {
        let t1 = DeviceModel::tofino();
        let t2 = DeviceModel::tofino2();
        assert!(t2.stages() > t1.stages());
        assert!(
            t2.total_capacity()[clickinc_ir::Resource::SramBlocks]
                > t1.total_capacity()[clickinc_ir::Resource::SramBlocks]
        );
        assert_eq!(t1.supported_classes(), t2.supported_classes());
    }

    #[test]
    fn stage_override_and_capacity_scale() {
        let t = DeviceModel::tofino().with_stages(8);
        assert_eq!(t.stages(), 8);
        let zero = DeviceModel::tofino().with_stages(0);
        assert_eq!(zero.stages(), 1, "stage count is clamped to at least 1");
        let boosted = DeviceModel::tofino().with_capacity_scale(2.0);
        assert_eq!(
            boosted.stage_capacity(0)[clickinc_ir::Resource::SramBlocks],
            2.0 * DeviceModel::tofino().stage_capacity(0)[clickinc_ir::Resource::SramBlocks]
        );
    }

    #[test]
    fn kind_round_trips_to_model_and_language() {
        for kind in DeviceKind::PROGRAMMABLE {
            let model = kind.model();
            assert_eq!(model.kind, kind);
            assert!(model.stages() >= 1);
            assert!(!kind.target_language().is_empty());
        }
        assert_eq!(DeviceKind::Tofino.target_language(), "P4-16 (TNA)");
        assert_eq!(DeviceKind::Trident4.to_string(), "TD4");
    }
}
