//! # clickinc-blockdag — IR block DAG construction
//!
//! Placement does not operate on individual instructions: ClickINC first groups
//! IR instructions into *blocks* — the basic placement unit — and builds a DAG
//! over them (paper §5.2, Fig. 8, Algorithm 3, and the legality theory of
//! Appendix B.1).  The construction has three steps:
//!
//! 1. **Dependency graph** — data dependencies plus the *mutual* dependencies
//!    between all instructions touching the same stateful object (stateful data
//!    cannot be replicated, so state-sharing instructions must co-locate);
//! 2. **Cycle merging** — every dependency cycle (which only arises from the
//!    mutual state edges) is collapsed into one inseparable node, making the
//!    graph a DAG and guaranteeing the partitioning legality of Lemma B.2/B.4;
//! 3. **Kahn partitioning + merging** — Kahn's topological sort layers the DAG;
//!    blocks of the same capability class are merged within a layer and across
//!    adjacent layers as long as the per-block size budget allows, compacting
//!    the DAG that the placement DP will explore.
//!
//! The resulting [`BlockDag`] keeps, for every block, the instruction indices it
//! contains, its capability-class mix, and its step number (topological level) —
//! the same step number the synthesizer later writes into the INC packet header
//! so that replicated blocks along a path execute exactly once.

mod build;
mod dag;

pub use build::{build_block_dag, BlockConfig};
pub use dag::{Block, BlockDag, BlockId};

#[cfg(test)]
mod proptests {
    use super::*;
    use clickinc_ir::{AluOp, Operand, ProgramBuilder};
    use proptest::prelude::*;

    /// Generate a random but well-formed straight-line IR program mixing pure
    /// arithmetic with stateful accesses to a couple of register arrays.
    fn arb_program(n_instrs: usize, seed: Vec<u8>) -> clickinc_ir::IrProgram {
        let mut b = ProgramBuilder::new("prop");
        b.array("s0", 1, 64, 32);
        b.array("s1", 1, 64, 32);
        let mut last_var: Option<String> = None;
        for (i, byte) in seed.iter().take(n_instrs).enumerate() {
            let var = format!("v{i}");
            match byte % 4 {
                0 => {
                    let lhs =
                        last_var.clone().map(Operand::var).unwrap_or_else(|| Operand::hdr("x"));
                    b.alu(&var, AluOp::Add, lhs, Operand::int(i64::from(*byte)));
                }
                1 => {
                    b.get(&var, "s0", vec![Operand::int(i64::from(*byte % 64))]);
                }
                2 => {
                    b.count(
                        Some(&var),
                        "s1",
                        vec![Operand::int(i64::from(*byte % 64))],
                        Operand::int(1),
                    );
                }
                _ => {
                    let value =
                        last_var.clone().map(Operand::var).unwrap_or_else(|| Operand::int(1));
                    b.write("s0", vec![Operand::int(i64::from(*byte % 64))], vec![value]);
                    b.assign(&var, Operand::int(i64::from(*byte)));
                }
            }
            last_var = Some(var);
        }
        b.forward();
        b.build().expect("generated program is well-formed")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every instruction lands in exactly one block, regardless of config.
        #[test]
        fn blocks_partition_the_instructions(
            n in 1usize..40,
            seed in proptest::collection::vec(any::<u8>(), 40),
            max_block in 1usize..8,
        ) {
            let program = arb_program(n, seed);
            let dag = build_block_dag(&program, &BlockConfig { max_block_instrs: max_block, ..Default::default() });
            let mut seen = vec![false; program.len()];
            for block in dag.blocks() {
                for &idx in &block.instrs {
                    prop_assert!(!seen[idx], "instruction {idx} appears in two blocks");
                    seen[idx] = true;
                }
            }
            prop_assert!(seen.iter().all(|s| *s), "some instruction not covered");
        }

        /// The block DAG is acyclic and respects the original dependencies.
        #[test]
        fn block_dag_is_acyclic(
            n in 1usize..40,
            seed in proptest::collection::vec(any::<u8>(), 40),
        ) {
            let program = arb_program(n, seed);
            let dag = build_block_dag(&program, &BlockConfig::default());
            prop_assert!(dag.topological_order().is_some(), "block DAG has a cycle");
        }

        /// State-sharing instructions always co-locate in one block
        /// (Lemma B.2: they cannot be split across devices).
        #[test]
        fn state_sharing_instructions_never_split(
            n in 1usize..40,
            seed in proptest::collection::vec(any::<u8>(), 40),
        ) {
            let program = arb_program(n, seed);
            let dag = build_block_dag(&program, &BlockConfig::default());
            let mut owner_of_state: std::collections::BTreeMap<String, usize> = Default::default();
            let sets = program.read_write_sets();
            for (b_idx, block) in dag.blocks().iter().enumerate() {
                for &i in &block.instrs {
                    for obj in &sets[i].state_objects {
                        if let Some(prev) = owner_of_state.insert(obj.clone(), b_idx) {
                            prop_assert_eq!(prev, b_idx,
                                "state object {} split across blocks {} and {}", obj, prev, b_idx);
                        }
                    }
                }
            }
        }

        /// Disabling block construction yields exactly one block per instruction.
        #[test]
        fn disabled_construction_is_identity(
            n in 1usize..30,
            seed in proptest::collection::vec(any::<u8>(), 30),
        ) {
            let program = arb_program(n, seed);
            let cfg = BlockConfig { enable_merging: false, ..Default::default() };
            let dag = build_block_dag(&program, &cfg);
            // one block per *dependency-cycle-free* instruction group: with merging
            // disabled only the mandatory state-sharing groups are collapsed.
            prop_assert!(dag.blocks().len() <= program.len());
            let covered: usize = dag.blocks().iter().map(|b| b.instrs.len()).sum();
            prop_assert_eq!(covered, program.len());
        }
    }
}
