//! Up-down path enumeration between endpoint servers.
//!
//! Data-center traffic between two servers follows *up-down* (valley-free)
//! paths: from the source up through its NIC/ToR/Agg to a common ancestor tier
//! and back down to the destination.  The placement engine and the emulator
//! both need the full set of such paths so that blocks replicated across
//! equal-cost paths cover all the traffic (paper §5.1 "on each path, the IR
//! program blocks must be placed sequentially; among the paths, blocks are
//! replicated...").

use crate::graph::{NodeId, Tier, Topology};

/// Enumerate every loop-free up-down path between two servers.
///
/// Paths are returned as node-id sequences starting at `src` and ending at
/// `dst`.  The search only allows tier levels to rise until a single peak and
/// then fall, which yields exactly the ECMP path set of fat-tree / spine-leaf
/// fabrics and keeps the enumeration polynomial.
pub fn enumerate_paths(topo: &Topology, src: NodeId, dst: NodeId) -> Vec<Vec<NodeId>> {
    if src == dst {
        return if topo.is_up(src) { vec![vec![src]] } else { Vec::new() };
    }
    if !topo.is_up(src) || !topo.is_up(dst) {
        return Vec::new();
    }
    let mut result = Vec::new();
    let mut path = vec![src];
    dfs(topo, src, dst, true, &mut path, &mut result);
    // deterministic order helps tests and reproducibility
    result.sort();
    result.dedup();
    result
}

fn dfs(
    topo: &Topology,
    current: NodeId,
    dst: NodeId,
    ascending: bool,
    path: &mut Vec<NodeId>,
    result: &mut Vec<Vec<NodeId>>,
) {
    if current == dst {
        result.push(path.clone());
        return;
    }
    // safety bound: an up-down path in a 5-tier fat-tree has at most 9 hops;
    // device chains (Table 4 / Fig. 14 experiments) can be much longer, so the
    // cap only needs to stop pathological cycles, not legitimate chains
    if path.len() > 40 {
        return;
    }
    let current_level = topo.node(current).tier.level();
    for &next in topo.neighbors(current) {
        if path.contains(&next) {
            continue;
        }
        // failed devices are invisible to routing: placement never lands on
        // them and re-placement after a fault naturally avoids them
        if !topo.is_up(next) {
            continue;
        }
        let next_level = topo.node(next).tier.level();
        let going_up = next_level > current_level;
        let going_down = next_level < current_level;
        // enforce valley-free: once we start descending we may not ascend again
        let next_ascending = if going_up {
            if !ascending {
                continue;
            }
            true
        } else if going_down {
            false
        } else {
            // same-tier hop (switch chains): keeps the current direction and
            // cannot create a valley, so it is always allowed
            ascending
        };
        // do not descend into servers other than the destination
        if topo.node(next).tier == Tier::Server && next != dst {
            continue;
        }
        path.push(next);
        dfs(topo, next, dst, next_ascending, path, result);
        path.pop();
    }
}

/// The highest tier reached by a path.
pub fn path_peak_tier(topo: &Topology, path: &[NodeId]) -> Option<Tier> {
    path.iter().map(|n| topo.node(*n).tier).max_by_key(|t| t.level())
}

/// The programmable devices along a path (everything except the endpoint
/// servers), in path order.
pub fn programmable_hops(topo: &Topology, path: &[NodeId]) -> Vec<NodeId> {
    path.iter().copied().filter(|n| topo.node(*n).tier.is_network_device()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_device::DeviceKind;

    #[test]
    fn chain_has_exactly_one_path() {
        let t = Topology::chain(4, DeviceKind::Tofino);
        let servers = t.servers();
        let paths = enumerate_paths(&t, servers[0], servers[1]);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 6);
        assert_eq!(programmable_hops(&t, &paths[0]).len(), 4);
    }

    #[test]
    fn same_source_and_destination() {
        let t = Topology::chain(2, DeviceKind::Tofino);
        let s = t.servers()[0];
        assert_eq!(enumerate_paths(&t, s, s), vec![vec![s]]);
    }

    #[test]
    fn intra_pod_paths_peak_at_agg() {
        let t = Topology::device_equal_fat_tree(4, DeviceKind::Tofino);
        // two servers under different ToRs of pod 0
        let a = t.find("pod0_s0").unwrap();
        let b = t.find("pod0_s2").unwrap();
        let paths = enumerate_paths(&t, a, b);
        assert_eq!(paths.len(), 2, "one path per pod-local aggregation switch");
        for p in &paths {
            assert_eq!(path_peak_tier(&t, p), Some(Tier::Agg));
        }
    }

    #[test]
    fn same_rack_paths_peak_at_tor() {
        let t = Topology::device_equal_fat_tree(4, DeviceKind::Tofino);
        let a = t.find("pod0_s0").unwrap();
        let b = t.find("pod0_s1").unwrap();
        let paths = enumerate_paths(&t, a, b);
        assert_eq!(paths.len(), 1);
        assert_eq!(path_peak_tier(&t, &paths[0]), Some(Tier::ToR));
    }

    #[test]
    fn inter_pod_paths_use_every_core_once() {
        let t = Topology::device_equal_fat_tree(4, DeviceKind::Tofino);
        let a = t.find("pod0_s0").unwrap();
        let b = t.find("pod3_s3").unwrap();
        let paths = enumerate_paths(&t, a, b);
        // k=4 fat tree: 4 core switches, each providing exactly one path
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert_eq!(path_peak_tier(&t, p), Some(Tier::Core));
            assert_eq!(p.len(), 7, "server-tor-agg-core-agg-tor-server");
        }
    }

    #[test]
    fn emulation_topology_paths_traverse_nics() {
        let t = Topology::emulation_topology();
        let a = t.find("pod0a").unwrap();
        let b = t.find("pod2b").unwrap();
        let paths = enumerate_paths(&t, a, b);
        assert!(!paths.is_empty());
        for p in &paths {
            // pod0 servers sit behind an NFP NIC
            assert!(p.iter().any(|n| t.node(*n).tier == Tier::Nic));
            assert_eq!(path_peak_tier(&t, p), Some(Tier::Core));
        }
    }

    #[test]
    fn down_devices_are_routed_around() {
        use crate::graph::NodeHealth;
        let mut t = Topology::device_equal_fat_tree(4, DeviceKind::Tofino);
        let a = t.find("pod0_s0").unwrap();
        let b = t.find("pod0_s2").unwrap();
        assert_eq!(enumerate_paths(&t, a, b).len(), 2, "one path per pod-local agg");
        let agg = t.find("Agg0").unwrap();
        t.set_node_health(agg, NodeHealth::Down);
        let paths = enumerate_paths(&t, a, b);
        assert_eq!(paths.len(), 1, "the failed agg's path disappears");
        assert!(paths.iter().all(|p| !p.contains(&agg)));
        // failing the only remaining agg leaves no path at all
        let agg1 = t.find("Agg1").unwrap();
        t.set_node_health(agg1, NodeHealth::Down);
        assert!(enumerate_paths(&t, a, b).is_empty());
        // restore brings the full ECMP set back
        t.set_node_health(agg, NodeHealth::Up);
        t.set_node_health(agg1, NodeHealth::Up);
        assert_eq!(enumerate_paths(&t, a, b).len(), 2);
    }

    #[test]
    fn down_endpoints_yield_no_paths() {
        use crate::graph::NodeHealth;
        let mut t = Topology::chain(2, DeviceKind::Tofino);
        let servers = t.servers();
        t.set_node_health(servers[0], NodeHealth::Down);
        assert!(enumerate_paths(&t, servers[0], servers[1]).is_empty());
        assert!(enumerate_paths(&t, servers[0], servers[0]).is_empty());
    }

    #[test]
    fn valley_free_paths_never_descend_then_ascend() {
        let t = Topology::device_equal_fat_tree(6, DeviceKind::Tofino);
        let a = t.find("pod0_s0").unwrap();
        let b = t.find("pod5_s0").unwrap();
        for p in enumerate_paths(&t, a, b) {
            let levels: Vec<i32> = p.iter().map(|n| t.node(*n).tier.level()).collect();
            let mut descended = false;
            for w in levels.windows(2) {
                if w[1] < w[0] {
                    descended = true;
                }
                if descended {
                    assert!(w[1] <= w[0], "path re-ascends after descending: {levels:?}");
                }
            }
        }
    }
}
