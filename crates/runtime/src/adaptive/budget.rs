//! Weighted fair ingress-budget allocation.

use std::collections::BTreeMap;

/// Split `capacity` ingress credits across tenants proportionally to their
/// observed `demand`, with a per-tenant `floor`.
///
/// Deterministic integer arithmetic: every tenant gets at least
/// `min(floor, capacity / n)` credits (never 0), the remaining capacity is
/// divided proportionally to demand with largest-remainder rounding, and
/// ties break by tenant-name order.  With zero total demand the spare splits
/// evenly.  The returned budgets sum to exactly `max(capacity, n · floor)`
/// when `capacity ≥ n · floor`, i.e. fair shares always use the whole
/// capacity and never overcommit it.
pub fn fair_budgets(
    capacity: u64,
    floor: u64,
    demand: &BTreeMap<String, u64>,
) -> BTreeMap<String, u64> {
    let n = demand.len() as u64;
    if n == 0 {
        return BTreeMap::new();
    }
    let floor = floor.max(1).min((capacity / n).max(1));
    let spare = capacity.saturating_sub(floor * n);
    let total_demand: u64 = demand.values().sum();
    // integer proportional share plus largest-remainder distribution
    let mut budgets: BTreeMap<String, u64> = BTreeMap::new();
    let mut remainders: Vec<(u128, String)> = Vec::with_capacity(demand.len());
    let mut assigned = 0u64;
    for (tenant, &want) in demand {
        let weight = if total_demand == 0 { 1 } else { want };
        let denom = if total_demand == 0 { n as u128 } else { total_demand as u128 };
        let exact = (spare as u128) * (weight as u128);
        let share = (exact / denom) as u64;
        remainders.push((exact % denom, tenant.clone()));
        budgets.insert(tenant.clone(), floor + share);
        assigned += share;
    }
    // hand the rounding leftovers to the largest remainders (name order on
    // ties, so the allocation is a pure function of its inputs)
    let mut leftover = spare - assigned;
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for (_, tenant) in remainders {
        if leftover == 0 {
            break;
        }
        *budgets.get_mut(&tenant).expect("tenant inserted above") += 1;
        leftover -= 1;
    }
    budgets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demands(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn shares_are_proportional_with_a_floor() {
        let budgets = fair_budgets(1000, 50, &demands(&[("bg", 100), ("hot", 900)]));
        assert_eq!(budgets.values().sum::<u64>(), 1000, "whole capacity used");
        assert!(budgets["hot"] > budgets["bg"], "demand weights the split");
        assert!(budgets["bg"] >= 50, "floor respected");
        // 50 floor each, 900 spare split 9:1
        assert_eq!(budgets["hot"], 50 + 810);
        assert_eq!(budgets["bg"], 50 + 90);
    }

    #[test]
    fn zero_demand_splits_evenly() {
        let budgets = fair_budgets(300, 10, &demands(&[("a", 0), ("b", 0), ("c", 0)]));
        assert_eq!(budgets["a"], 100);
        assert_eq!(budgets["b"], 100);
        assert_eq!(budgets["c"], 100);
    }

    #[test]
    fn rounding_leftovers_go_to_largest_remainders_deterministically() {
        // spare = 100 - 3 = 97; weights 1,1,1 → 32 each + 1 leftover
        let budgets = fair_budgets(100, 1, &demands(&[("a", 5), ("b", 5), ("c", 5)]));
        assert_eq!(budgets.values().sum::<u64>(), 100);
        let again = fair_budgets(100, 1, &demands(&[("a", 5), ("b", 5), ("c", 5)]));
        assert_eq!(budgets, again, "pure function of inputs");
    }

    #[test]
    fn tight_capacity_clamps_the_floor_but_never_to_zero() {
        let budgets = fair_budgets(4, 50, &demands(&[("a", 1), ("b", 1000)]));
        assert!(budgets.values().all(|&b| b >= 1));
        assert!(budgets.values().sum::<u64>() <= 4, "clamped floors keep the sum within capacity");
        let one = fair_budgets(1, 5, &demands(&[("a", 1), ("b", 1)]));
        assert!(one.values().all(|&b| b >= 1), "even degenerate capacity gives a credit");
        assert!(fair_budgets(100, 10, &BTreeMap::new()).is_empty());
    }
}
