//! The single error surface of the ClickINC service.
//!
//! Every fallible operation on [`ClickIncService`], [`Controller`] and the
//! [`ServiceRequest`] builder reports a [`ClickIncError`], so callers match
//! on one type instead of juggling per-crate enums.  The enum is
//! `#[non_exhaustive]`: downstream matches need a wildcard arm, which lets
//! future subsystems add variants without a breaking change.
//!
//! [`ClickIncService`]: crate::ClickIncService
//! [`Controller`]: crate::Controller
//! [`ServiceRequest`]: crate::ServiceRequest

use crate::request::RequestError;
use clickinc_frontend::FrontendError;
use clickinc_placement::PlacementError;
use clickinc_runtime::EngineError;
use std::fmt;

/// Everything that can go wrong between a [`ServiceRequest`] and a running
/// tenant.
///
/// [`ServiceRequest`]: crate::ServiceRequest
#[derive(Debug)]
#[non_exhaustive]
pub enum ClickIncError {
    /// The user id is already deployed.
    DuplicateUser(String),
    /// The user id is not deployed (for removal).
    UnknownUser(String),
    /// A named server does not exist in the topology.
    UnknownHost(String),
    /// The request failed structural validation (empty ids, mismatched
    /// weights, …) before compilation was even attempted.
    InvalidRequest(RequestError),
    /// Compilation failed.
    Compile(FrontendError),
    /// Placement failed.
    Placement(PlacementError),
    /// A [`DeploymentPlan`] was committed after the controller state it was
    /// solved against changed (another commit or removal happened in
    /// between); re-plan and commit again.
    ///
    /// [`DeploymentPlan`]: crate::DeploymentPlan
    StalePlan {
        /// The user the stale plan belongs to.
        user: String,
        /// Controller epoch the plan was solved against.
        planned_epoch: u64,
        /// Controller epoch at commit time.
        current_epoch: u64,
    },
    /// The serving engine rejected its configuration or failed at runtime.
    Engine(EngineError),
    /// The static verifier pipeline found at least one error-severity
    /// diagnostic in the tenant's (isolation-renamed) program, so nothing was
    /// booked or installed.  The full [`DiagnosticSet`] — including
    /// warnings/infos that alone would not have blocked the deploy — rides
    /// along; `diagnostics.to_json()` exports it for tooling.
    ///
    /// [`DiagnosticSet`]: clickinc_ir::DiagnosticSet
    Verification {
        /// The user whose program failed verification.
        user: String,
        /// Every diagnostic the pass pipeline emitted.
        diagnostics: clickinc_ir::DiagnosticSet,
    },
    /// A device failure left the tenant unplaceable: every re-placement
    /// attempt after the fault failed (no feasible placement avoiding the
    /// failed devices, or admission refused the move).  The tenant is
    /// parked — its ledger bookings are released and it serves no traffic —
    /// and is retried automatically when the device is restored.
    Degraded {
        /// The parked tenant.
        user: String,
        /// The failed device that displaced it.
        device: String,
        /// Why re-placement failed (display of the underlying error).
        reason: String,
    },
    /// An [`AdmissionPolicy`] refused to let the plan commit.  The plan was
    /// feasible — compilation and placement succeeded — but provider policy
    /// (a resource floor, a tenant cap, a device denylist, …) vetoed it, and
    /// nothing was booked or installed.
    ///
    /// [`AdmissionPolicy`]: crate::AdmissionPolicy
    Rejected {
        /// The user whose plan was refused.
        user: String,
        /// Name of the policy that refused it (for a [`crate::PolicyChain`],
        /// the first member that rejected).
        policy: String,
        /// Human-readable grounds for the refusal.
        reason: String,
    },
}

impl fmt::Display for ClickIncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClickIncError::DuplicateUser(u) => {
                write!(f, "user `{u}` already has a deployed program")
            }
            ClickIncError::UnknownUser(u) => write!(f, "user `{u}` has no deployed program"),
            ClickIncError::UnknownHost(h) => {
                write!(f, "host `{h}` does not exist in the topology")
            }
            ClickIncError::InvalidRequest(e) => write!(f, "invalid request: {e}"),
            ClickIncError::Compile(e) => write!(f, "compilation failed: {e}"),
            ClickIncError::Placement(e) => write!(f, "placement failed: {e}"),
            ClickIncError::StalePlan { user, planned_epoch, current_epoch } => write!(
                f,
                "plan for `{user}` is stale: solved at controller epoch {planned_epoch}, \
                 now at {current_epoch} — re-plan and commit again"
            ),
            ClickIncError::Engine(e) => write!(f, "engine failure: {e}"),
            ClickIncError::Verification { user, diagnostics } => {
                use clickinc_ir::Severity;
                let errors = diagnostics.at(Severity::Error).count();
                write!(f, "static verification failed for `{user}`: {errors} error(s)")?;
                for d in diagnostics.at(Severity::Error).take(3) {
                    write!(f, "; [{}] {}", d.pass, d.message)?;
                }
                Ok(())
            }
            ClickIncError::Rejected { user, policy, reason } => {
                write!(f, "admission policy `{policy}` rejected `{user}`: {reason}")
            }
            ClickIncError::Degraded { user, device, reason } => write!(
                f,
                "tenant `{user}` is degraded: displaced by failed device `{device}` and not \
                 re-placeable ({reason}); parked until restore"
            ),
        }
    }
}

impl std::error::Error for ClickIncError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClickIncError::InvalidRequest(e) => Some(e),
            ClickIncError::Compile(e) => Some(e),
            ClickIncError::Placement(e) => Some(e),
            ClickIncError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrontendError> for ClickIncError {
    fn from(e: FrontendError) -> Self {
        ClickIncError::Compile(e)
    }
}

impl From<PlacementError> for ClickIncError {
    fn from(e: PlacementError) -> Self {
        ClickIncError::Placement(e)
    }
}

impl From<RequestError> for ClickIncError {
    fn from(e: RequestError) -> Self {
        ClickIncError::InvalidRequest(e)
    }
}

impl From<EngineError> for ClickIncError {
    fn from(e: EngineError) -> Self {
        ClickIncError::Engine(e)
    }
}

/// Historical name of [`ClickIncError`], kept so pre-facade code that matched
/// on `ControllerError::…` keeps compiling unchanged.
pub type ControllerError = ClickIncError;
