//! Structured verifier diagnostics.
//!
//! Every verifier pass reports findings as [`Diagnostic`] values collected into
//! a [`DiagnosticSet`]. The set is JSON-exportable (the service attaches it to
//! deployment plans and CI archives it), and carries enough structure — pass
//! name, tenant, snippet — for an operator to route a finding without parsing
//! the message text.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// How severe a finding is.
///
/// * `Error` — the program is unsafe to install (isolation violation, store
///   corruption); the service refuses to deploy.
/// * `Warning` — suspicious but installable (over-capacity snippet, dead
///   snippet); rejected only in deny-warnings mode (CI).
/// * `Info` — a classification the passes surface for downstream consumers
///   (e.g. which mutations are non-commutative), never a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Classification output, never a failure.
    Info,
    /// Suspicious but installable; fails deny-warnings mode only.
    Warning,
    /// Unsafe to install; the service refuses to deploy.
    Error,
}

impl Severity {
    /// Stable string form used in JSON exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parse the string form back.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// The vendored derive handles structs only, so the enum (de)serializes by hand
// as its string form.
impl Serialize for Severity {
    fn serialize_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Severity {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => {
                Severity::parse(s).ok_or_else(|| DeError::custom(format!("bad severity `{s}`")))
            }
            _ => Err(DeError::custom("expected severity string")),
        }
    }
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// How severe the finding is.
    pub severity: Severity,
    /// Name of the pass that produced it.
    pub pass: String,
    /// The tenant whose program was analyzed.
    pub tenant: String,
    /// The snippet (program or per-device slice) the finding is anchored in.
    pub snippet: String,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic with the given severity.
    pub fn new(
        severity: Severity,
        pass: impl Into<String>,
        tenant: impl Into<String>,
        snippet: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity,
            pass: pass.into(),
            tenant: tenant.into(),
            snippet: snippet.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}/{}: {}",
            self.severity, self.pass, self.tenant, self.snippet, self.message
        )
    }
}

/// The ordered collection of findings one pipeline run produced.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DiagnosticSet {
    /// The findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl DiagnosticSet {
    /// An empty set.
    pub fn new() -> DiagnosticSet {
        DiagnosticSet::default()
    }

    /// Append one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Append all findings of another set.
    pub fn merge(&mut self, other: DiagnosticSet) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Iterate over the findings.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter()
    }

    /// Findings at exactly the given severity.
    pub fn at(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity == severity)
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Whether any finding is a warning.
    pub fn has_warnings(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Warning)
    }

    /// The most severe finding, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Pretty-printed JSON export (the CI artifact format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("diagnostic set serializes")
    }

    /// Parse a JSON export back.
    pub fn from_json(s: &str) -> Result<DiagnosticSet, serde_json::Error> {
        serde_json::from_str(s)
    }
}

impl fmt::Display for DiagnosticSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiagnosticSet {
        let mut set = DiagnosticSet::new();
        set.push(Diagnostic::new(Severity::Info, "classify", "u0", "p", "commutative count"));
        set.push(Diagnostic::new(Severity::Error, "isolation", "u0", "p", "foreign object"));
        set
    }

    #[test]
    fn severity_orders_info_below_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(sample().worst(), Some(Severity::Error));
    }

    #[test]
    fn error_and_warning_queries() {
        let set = sample();
        assert!(set.has_errors());
        assert!(!set.has_warnings());
        assert_eq!(set.at(Severity::Info).count(), 1);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn json_round_trips() {
        let set = sample();
        let json = set.to_json();
        assert!(json.contains("\"severity\": \"error\""));
        let back = DiagnosticSet::from_json(&json).expect("parses");
        assert_eq!(back, set);
    }

    #[test]
    fn severity_string_forms_round_trip() {
        for s in [Severity::Info, Severity::Warning, Severity::Error] {
            assert_eq!(Severity::parse(s.as_str()), Some(s));
        }
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn display_is_one_line_per_finding() {
        let text = sample().to_string();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("error [isolation]"));
    }
}
