//! The placement dynamic program (paper Algorithm 1 + Eq. 2).
//!
//! The block DAG is linearized in step order; along every source-to-destination
//! path the blocks must appear as contiguous segments in that order (the
//! sequential-execution invariant of §5.1).  The DP therefore decides, for
//! every device of the reduced topology, which contiguous *prefix extension*
//! of the block sequence it hosts:
//!
//! * on the client-side sub-tree, `H[u][k]` is the best gain of placing the
//!   first `k` blocks within the subtree rooted at `u`, where `u` itself hosts
//!   a suffix `[j..k)` of that prefix and every child branch independently
//!   hosts the first `j` blocks (replication across equal-cost branches);
//! * on the server-side chain, `S[i][k]` is the best gain of placing the
//!   remaining blocks `[k..n)` on devices `i..`;
//! * the two are joined at the root, and a plan exists only if some `k` lets
//!   both sides succeed (full coverage — every path executes the whole
//!   program).
//!
//! Pruning (§5.4): device capability and resource violations yield `-∞` and cut
//! the branch; segment feasibility is monotone in segment length, so the inner
//! loop stops at the first infeasible extension.  Disabling pruning (the
//! Fig. 14(b) ablation) evaluates every combination.

use crate::intra::{allocate_stages_with, SegContext, StageAllocation};
use crate::memo::{device_fingerprint, shape_fingerprint, SolveCache};
use crate::network::{PlacementDevice, PlacementNetwork};
use crate::objective::{cut_costs, Weights};
use crate::plan::{Assignment, PlacementError, PlacementPlan};
use clickinc_blockdag::{BlockDag, BlockId};
use clickinc_ir::IrProgram;
use std::time::Instant;

/// Configuration of the DP placement.
#[derive(Debug, Clone)]
pub struct PlacementConfig {
    /// Objective weights (adaptive by default).
    pub weights: Weights,
    /// Whether to apply the §5.4 pruning rules (disabled only for the Fig. 14
    /// ablation).
    pub enable_pruning: bool,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig { weights: Weights::default(), enable_pruning: true }
    }
}

#[derive(Debug, Clone)]
struct Choice {
    gain: f64,
    split: usize,
    alloc: StageAllocation,
}

/// Place `program` (already grouped into `dag`) onto `net`.
///
/// Pure and concurrency-safe: the solver borrows its inputs immutably and
/// keeps every table it builds on its own stack, so any number of solves —
/// for different programs, or the same one — may run concurrently on worker
/// threads against one shared network view.  Given identical inputs the
/// returned plan is bit-identical (modulo the wall-clock `solve_time`,
/// which [`PlacementPlan::fingerprint`](crate::PlacementPlan::fingerprint)
/// deliberately excludes) regardless of how many solves run next to it.
/// Re-exported as `clickinc_placement::solve` — the name the service-layer
/// `Planner` fans out over.
pub fn place(
    program: &IrProgram,
    dag: &BlockDag,
    net: &PlacementNetwork,
    config: &PlacementConfig,
) -> Result<PlacementPlan, PlacementError> {
    place_with_cache(program, dag, net, config, None)
}

/// [`place`] with an optional cross-solve segment memo.
///
/// With `cache` supplied, segment feasibility questions are answered from the
/// [`SolveCache`] when their exact inputs were seen before (same canonical
/// program/DAG shape, same residual device capacities, same bounds) and the
/// stage allocator runs only for genuinely new subproblems — a warm re-solve
/// after one device's ledger moved recomputes only that device's segments.
/// Memo keys carry the exact bits of every input, so the returned plan is
/// bit-identical to a `cache`-less cold solve.
pub fn place_with_cache(
    program: &IrProgram,
    dag: &BlockDag,
    net: &PlacementNetwork,
    config: &PlacementConfig,
    cache: Option<&SolveCache>,
) -> Result<PlacementPlan, PlacementError> {
    let start = Instant::now();
    if program.is_empty() || dag.is_empty() {
        return Err(PlacementError::EmptyProgram);
    }
    if net.is_empty() {
        return Err(PlacementError::EmptyNetwork);
    }
    let order = dag.blocks_by_step();
    let n = order.len();
    let cuts = cut_costs(program, dag, &order);
    let cap_norm = net.total_available().total().max(1.0);
    let w = config.weights;

    // hoisted per-solve facts: capability classes + data deps (SegContext),
    // the canonical shape key, and one device key per candidate device
    let ctx = SegContext::new(program);
    let shape = cache.map(|_| shape_fingerprint(program, dag, &order));
    let client_keys: Vec<u64> = net.client.iter().map(device_fingerprint).collect();
    let server_keys: Vec<u64> = net.server.iter().map(device_fingerprint).collect();

    let seg_instrs = |j: usize, k: usize| -> Vec<usize> {
        let mut v: Vec<usize> =
            order[j..k].iter().flat_map(|b| dag.blocks()[*b].instrs.clone()).collect();
        v.sort_unstable();
        v
    };
    // feasibility is memoizable (pure in shape/device/bounds); the capability
    // pre-check stays inside the compute path because a block's class set is
    // exactly the union of its instructions' classes, so pruning on it returns
    // None precisely when the allocator would — cache entries are identical
    // with pruning on or off
    let seg_alloc = |dev: &PlacementDevice, dev_key: u64, j: usize, k: usize| {
        let compute = || {
            if config.enable_pruning {
                // capability pre-check: −∞ without running the stage allocator
                for b in &order[j..k] {
                    if !dev.supports_all(dag.blocks()[*b].classes.iter()) {
                        return None;
                    }
                }
            }
            let instrs = seg_instrs(j, k);
            allocate_stages_with(dev, &ctx, &instrs)
        };
        match (cache, shape) {
            (Some(memo), Some(shape)) => memo.alloc_or_compute(shape, dev_key, j, k, compute),
            _ => compute(),
        }
    };
    // objective terms stay outside the memo: weights and cap_norm vary per
    // solve while the allocation does not
    let seg_eval = |dev: &PlacementDevice,
                    dev_key: u64,
                    j: usize,
                    k: usize|
     -> Option<(f64, StageAllocation)> {
        if j == k {
            return Some((0.0, StageAllocation::empty()));
        }
        let alloc = seg_alloc(dev, dev_key, j, k)?;
        let rnorm = alloc.demand.scaled(dev.replication() as f64).total() / cap_norm;
        Some((-w.resource * rnorm, alloc))
    };

    // ---- client-side sub-tree DP (bottom-up) ---------------------------------
    let n_client = net.client.len();
    let mut tables: Vec<Vec<Option<Choice>>> = vec![Vec::new(); n_client];
    // post-order: children before parents
    let postorder = postorder_of(net);
    for &u in &postorder {
        let device = &net.client[u];
        let children = &net.client_children[u];
        let mut table: Vec<Option<Choice>> = vec![None; n + 1];
        for (k, slot) in table.iter_mut().enumerate() {
            let mut best: Option<Choice> = None;
            // j runs from k down to 0 so the segment grows monotonically and the
            // pruned loop can stop at the first infeasible extension
            for j in (0..=k).rev() {
                if children.is_empty() && j != 0 {
                    continue;
                }
                let mut child_sum = 0.0;
                let mut children_ok = true;
                for &c in children {
                    match &tables[c][j] {
                        Some(choice) => {
                            child_sum += choice.gain;
                            // charge the child → parent Param transfer
                            child_sum -= w.comm * cuts[j];
                        }
                        None => {
                            children_ok = false;
                            break;
                        }
                    }
                }
                if !children_ok {
                    continue;
                }
                match seg_eval(device, client_keys[u], j, k) {
                    Some((seg_gain, alloc)) => {
                        let gain = child_sum + seg_gain;
                        if best.as_ref().map(|b| gain > b.gain).unwrap_or(true) {
                            best = Some(Choice { gain, split: j, alloc });
                        }
                    }
                    None => {
                        if config.enable_pruning {
                            // a longer segment (smaller j) cannot become feasible
                            break;
                        }
                    }
                }
            }
            *slot = best;
        }
        tables[u] = table;
    }

    // ---- server-side chain DP -------------------------------------------------
    let m = net.server.len();
    // server_tables[i][k]: best gain for blocks [k..n) on devices i.., plus the
    // chosen end of device i's segment.
    let mut server_tables: Vec<Vec<Option<Choice>>> = vec![vec![None; n + 1]; m + 1];
    server_tables[m][n] = Some(Choice { gain: 0.0, split: n, alloc: StageAllocation::empty() });
    for i in (0..m).rev() {
        for k in 0..=n {
            let mut best: Option<Choice> = None;
            for mid in k..=n {
                let tail = match &server_tables[i + 1][mid] {
                    Some(t) => t.gain,
                    None => continue,
                };
                match seg_eval(&net.server[i], server_keys[i], k, mid) {
                    Some((seg_gain, alloc)) => {
                        // boundary between device i and i+1 sits at `mid`
                        let boundary = if mid < n { w.comm * cuts[mid] } else { 0.0 };
                        let gain = seg_gain + tail - boundary;
                        if best.as_ref().map(|b| gain > b.gain).unwrap_or(true) {
                            best = Some(Choice { gain, split: mid, alloc });
                        }
                    }
                    None => {
                        if config.enable_pruning {
                            break;
                        }
                    }
                }
            }
            server_tables[i][k] = best;
        }
    }

    // ---- join at the root -------------------------------------------------------
    let root_table = &tables[net.client_root];
    let mut best_total: Option<(f64, usize)> = None;
    for k in 0..=n {
        let client = match &root_table[k] {
            Some(c) => c.gain,
            None => continue,
        };
        let server = if m == 0 {
            if k == n {
                0.0
            } else {
                continue;
            }
        } else {
            match &server_tables[0][k] {
                Some(s) => s.gain,
                None => continue,
            }
        };
        let boundary = if m > 0 && k < n && k > 0 { w.comm * cuts[k] } else { 0.0 };
        let total = client + server - boundary + w.traffic * 1.0;
        if best_total.map(|(g, _)| total > g).unwrap_or(true) {
            best_total = Some((total, k));
        }
    }
    let (gain, split_k) = best_total.ok_or(PlacementError::NoFeasiblePlacement)?;

    // ---- reconstruct assignments ----------------------------------------------
    let mut assignments: Vec<Assignment> = Vec::new();
    let mut comm_cost = 0.0;
    // client side: walk the tree from the root downwards
    let mut stack = vec![(net.client_root, split_k)];
    while let Some((u, k)) = stack.pop() {
        let choice = tables[u][k].as_ref().expect("reconstruction follows feasible choices");
        let j = choice.split;
        assignments.push(make_assignment(&net.client[u], dag, &order, j, k, &choice.alloc));
        for &c in &net.client_children[u] {
            if j > 0 && j < n {
                comm_cost += cuts[j];
            }
            stack.push((c, j));
        }
    }
    // order client assignments by step range so the plan reads in traffic order
    assignments.sort_by_key(|a| a.step_range.0);
    assignments.reverse();
    assignments.sort_by_key(|a| a.step_range.0);
    // server side
    if m > 0 && split_k < n && split_k > 0 {
        comm_cost += cuts[split_k];
    }
    let mut k = split_k;
    for (i, (server_table, server_node)) in server_tables.iter().zip(net.server.iter()).enumerate()
    {
        let choice = server_table[k].as_ref().expect("feasible server choice");
        let mid = choice.split;
        assignments.push(make_assignment(server_node, dag, &order, k, mid, &choice.alloc));
        if mid < n && i + 1 < m {
            comm_cost += cuts[mid];
        }
        k = mid;
    }

    let resource_cost = assignments
        .iter()
        .map(|a| a.demand.scaled(a.members.len().max(1) as f64).total())
        .sum::<f64>()
        / cap_norm;

    Ok(PlacementPlan {
        program: program.name.clone(),
        assignments,
        gain,
        traffic_served: 1.0,
        resource_cost,
        comm_cost,
        weights: w,
        solve_time: start.elapsed(),
    })
}

fn make_assignment(
    device: &PlacementDevice,
    dag: &BlockDag,
    order: &[usize],
    j: usize,
    k: usize,
    alloc: &StageAllocation,
) -> Assignment {
    let blocks: Vec<BlockId> = order[j..k].iter().map(|b| dag.blocks()[*b].id).collect();
    let mut instrs: Vec<usize> =
        order[j..k].iter().flat_map(|b| dag.blocks()[*b].instrs.clone()).collect();
    instrs.sort_unstable();
    Assignment {
        device: device.name.clone(),
        members: device.members.clone(),
        kind: device.kind,
        blocks,
        instrs,
        stage_of: alloc.stage_of.clone(),
        stages_used: alloc.stages_used,
        demand: alloc.demand,
        step_range: (j, k),
    }
}

fn postorder_of(net: &PlacementNetwork) -> Vec<usize> {
    let mut order = Vec::with_capacity(net.client.len());
    let mut visited = vec![false; net.client.len()];
    fn visit(u: usize, net: &PlacementNetwork, visited: &mut [bool], order: &mut Vec<usize>) {
        if visited[u] {
            return;
        }
        visited[u] = true;
        for &c in &net.client_children[u] {
            visit(c, net, visited, order);
        }
        order.push(u);
    }
    visit(net.client_root, net, &mut visited, &mut order);
    // include any disconnected client nodes defensively
    for u in 0..net.client.len() {
        visit(u, net, &mut visited, &mut order);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ResourceLedger;
    use clickinc_blockdag::{build_block_dag, BlockConfig};
    use clickinc_device::DeviceKind;
    use clickinc_frontend::compile_source;
    use clickinc_lang::templates::{
        dqacc_template, kvs_template, mlagg_template, DqAccParams, KvsParams, MlAggParams,
    };
    use clickinc_topology::{reduce_for_traffic, Topology};

    fn network(topo: &Topology, sources: &[&str], dst: &str) -> PlacementNetwork {
        let src_ids: Vec<_> = sources.iter().map(|s| topo.find(s).unwrap()).collect();
        let dst_id = topo.find(dst).unwrap();
        let reduced = reduce_for_traffic(topo, &src_ids, dst_id, &[]);
        PlacementNetwork::from_reduced(topo, &reduced, &ResourceLedger::new())
    }

    fn chain_network(n: usize, kind: DeviceKind) -> (Topology, PlacementNetwork) {
        let topo = Topology::chain(n, kind);
        let net = network(&topo, &["client"], "server");
        (topo, net)
    }

    fn compile(name: &str, source: &str) -> (IrProgram, BlockDag) {
        let ir = compile_source(name, source).unwrap();
        let dag = build_block_dag(&ir, &BlockConfig::default());
        (ir, dag)
    }

    #[test]
    fn kvs_places_on_a_tofino_chain() {
        let t = kvs_template("kvs", KvsParams::default());
        let (ir, dag) = compile("kvs", &t.source);
        let (_, net) = chain_network(4, DeviceKind::Tofino);
        let plan = place(&ir, &dag, &net, &PlacementConfig::default()).expect("kvs placeable");
        plan.assert_valid(&ir, &dag, &net);
        assert_eq!(plan.traffic_served, 1.0);
        assert!(plan.total_instructions() >= ir.len());
        assert!(!plan.devices_used().is_empty());
        assert!(plan.gain <= 0.5, "gain is bounded by the traffic term");
    }

    #[test]
    fn mlagg_and_dqacc_place_on_chains() {
        for (name, source) in [
            (
                "mlagg",
                mlagg_template("mlagg", MlAggParams { dims: 8, ..Default::default() }).source,
            ),
            ("dqacc", dqacc_template("dqacc", DqAccParams { depth: 2000, ways: 4 }).source),
        ] {
            let (ir, dag) = compile(name, &source);
            let (_, net) = chain_network(4, DeviceKind::Tofino);
            let plan = place(&ir, &dag, &net, &PlacementConfig::default())
                .unwrap_or_else(|e| panic!("{name} should place: {e}"));
            plan.assert_valid(&ir, &dag, &net);
        }
    }

    #[test]
    fn float_mlagg_cannot_place_on_tofino_only() {
        let t = mlagg_template(
            "mlagg_f",
            MlAggParams { dims: 4, is_float: true, ..Default::default() },
        );
        let (ir, dag) = compile("mlagg_f", &t.source);
        let (_, net) = chain_network(4, DeviceKind::Tofino);
        assert_eq!(
            place(&ir, &dag, &net, &PlacementConfig::default()).unwrap_err(),
            PlacementError::NoFeasiblePlacement
        );
        // ... but an FPGA NIC chain can host it
        let (_, fpga_net) = chain_network(2, DeviceKind::FpgaSmartNic);
        assert!(place(&ir, &dag, &net_or(&fpga_net), &PlacementConfig::default()).is_ok());
    }

    fn net_or(net: &PlacementNetwork) -> PlacementNetwork {
        net.clone()
    }

    #[test]
    fn large_programs_split_across_devices() {
        // a KVS with a cache too big for one Tofino must span several switches
        let t = kvs_template("kvs_big", KvsParams { cache_depth: 300_000, ..Default::default() });
        let (ir, dag) = compile("kvs_big", &t.source);
        let (_, net1) = chain_network(1, DeviceKind::Tofino);
        let single = place(&ir, &dag, &net1, &PlacementConfig::default());
        assert!(single.is_err(), "a 300K-entry cache cannot fit one Tofino");
        let (_, net4) = chain_network(4, DeviceKind::Tofino);
        let multi = place(&ir, &dag, &net4, &PlacementConfig::default());
        // the cache is a single stateful block, so it still cannot be split; it
        // must fail on homogeneous small switches too.
        assert!(multi.is_err());
        // on an FPGA accelerator (much more memory) it fits
        let (_, fpga) = chain_network(1, DeviceKind::FpgaAccelerator);
        assert!(place(&ir, &dag, &fpga, &PlacementConfig::default()).is_ok());
    }

    #[test]
    fn multi_path_fat_tree_replicates_blocks_on_branches() {
        let t = mlagg_template(
            "mlagg",
            MlAggParams { dims: 4, num_aggregators: 512, ..Default::default() },
        );
        let (ir, dag) = compile("mlagg", &t.source);
        let topo = Topology::device_equal_fat_tree(4, DeviceKind::Tofino);
        let net = network(&topo, &["pod0_s0", "pod1_s0"], "pod2_s0");
        let plan = place(&ir, &dag, &net, &PlacementConfig::default()).expect("places");
        plan.assert_valid(&ir, &dag, &net);
        // both client branches exist in the network
        assert_eq!(net.client_leaves().len(), 2);
    }

    #[test]
    fn empty_program_and_network_errors() {
        let t = kvs_template("kvs", KvsParams::default());
        let (ir, dag) = compile("kvs", &t.source);
        let (_, net) = chain_network(2, DeviceKind::Tofino);
        let empty = IrProgram::new("empty");
        let empty_dag = build_block_dag(&empty, &BlockConfig::default());
        assert_eq!(
            place(&empty, &empty_dag, &net, &PlacementConfig::default()).unwrap_err(),
            PlacementError::EmptyProgram
        );
        let empty_net = PlacementNetwork {
            client: Vec::new(),
            client_children: Vec::new(),
            client_root: 0,
            server: Vec::new(),
        };
        assert_eq!(
            place(&ir, &dag, &empty_net, &PlacementConfig::default()).unwrap_err(),
            PlacementError::EmptyNetwork
        );
    }

    #[test]
    fn pruning_does_not_change_the_result() {
        let t = dqacc_template("dqacc", DqAccParams { depth: 2000, ways: 4 });
        let (ir, dag) = compile("dqacc", &t.source);
        let (_, net) = chain_network(3, DeviceKind::Tofino);
        let pruned = place(&ir, &dag, &net, &PlacementConfig::default()).unwrap();
        let unpruned = place(
            &ir,
            &dag,
            &net,
            &PlacementConfig { enable_pruning: false, ..Default::default() },
        )
        .unwrap();
        assert!((pruned.gain - unpruned.gain).abs() < 1e-9);
        assert_eq!(pruned.devices_used().len(), unpruned.devices_used().len());
    }

    #[test]
    fn heterogeneous_emulation_topology_hosts_kvs() {
        let t = kvs_template("kvs0", KvsParams::default());
        let (ir, dag) = compile("kvs0", &t.source);
        let topo = Topology::emulation_topology();
        let net = network(&topo, &["pod0a", "pod1a"], "pod2b");
        let plan = place(&ir, &dag, &net, &PlacementConfig::default()).expect("kvs places");
        plan.assert_valid(&ir, &dag, &net);
    }

    #[test]
    fn adaptive_weights_prefer_fewer_devices_under_pressure() {
        let t = dqacc_template("dq", DqAccParams { depth: 1000, ways: 2 });
        let (ir, dag) = compile("dq", &t.source);
        let (_, net) = chain_network(4, DeviceKind::Tofino);
        // plenty of resources: communication dominates, so the plan concentrates
        let relaxed = place(
            &ir,
            &dag,
            &net,
            &PlacementConfig { weights: Weights::adaptive(1.0), ..Default::default() },
        )
        .unwrap();
        // scarce resources: the resource term dominates; the plan should never
        // use more devices than the relaxed one needs
        let pressured = place(
            &ir,
            &dag,
            &net,
            &PlacementConfig { weights: Weights::adaptive(0.05), ..Default::default() },
        )
        .unwrap();
        assert!(pressured.devices_used().len() <= relaxed.devices_used().len() + 1);
    }
}
