//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Provides the criterion 0.5 entry points the workspace uses —
//! `Criterion::bench_function`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!` and `black_box` — with plain wall-clock timing (median
//! of `sample_size` samples) instead of criterion's statistical machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        b.samples.sort();
        let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or_default();
        let (lo, hi) = (
            b.samples.first().copied().unwrap_or_default(),
            b.samples.last().copied().unwrap_or_default(),
        );
        println!("{id:<40} time: [{} {} {}]", fmt_ns(lo), fmt_ns(median), fmt_ns(hi));
        self
    }
}

pub struct Bencher {
    /// Per-iteration time of each sample, in nanoseconds.
    samples: Vec<u64>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // warm-up, and calibrate how many iterations fill ~1ms
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let total = start.elapsed().as_nanos() as u64;
            self.samples.push(total / iters);
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.2} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

/// Bundle benchmark functions into a group runner, mirroring criterion 0.5's
/// two invocation forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64) + black_box(3u64)))
            .bench_function("smoke/count", |b| {
                b.iter(|| {
                    runs += 1;
                    runs
                })
            });
        assert!(runs > 0);
    }
}
